//! Crash a node mid-computation and watch it recover — the paper's
//! §3.2 scenario end to end: logging during the failure-free phase, a
//! fail-stop crash at a barrier, log replay with prefetching, then live
//! resumption, with the final answer identical to a failure-free run.
//!
//! Run with: `cargo run --release --example crash_and_recover`

use ccl_apps::mg::{run, MgConfig};
use ccl_core::{run_program, ClusterSpec, CrashPlan, Protocol};

fn main() {
    let cfg = MgConfig {
        n: 16,
        levels: 2,
        cycles: 3,
    };
    let nodes = 4;
    let pages = cfg.shared_pages(4096) + 4;

    println!("== multigrid solve with a mid-run crash ({nodes} nodes) ==");

    // Reference: failure-free run.
    let clean = {
        let spec = ClusterSpec::new(nodes, pages).with_protocol(Protocol::Ccl);
        run_program(spec, move |dsm| run(dsm, &cfg))
    };
    println!(
        "failure-free : exec {}  digest {:#x}",
        clean.exec_time(),
        clean.nodes[0].result
    );

    // Crash node 1 after its 10th barrier, for each recovery protocol.
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let spec = ClusterSpec::new(nodes, pages)
            .with_protocol(protocol)
            .with_crash(CrashPlan::new(1, 10));
        let out = run_program(spec, move |dsm| run(dsm, &cfg));
        let recovered = &out.nodes[1];
        assert_eq!(
            recovered.result, clean.nodes[0].result,
            "recovered run diverged!"
        );
        println!(
            "{:>13}: exec {}  crash at {}  replay done at {}  recovery took {}",
            format!("{}-recovery", protocol.label()),
            out.exec_time(),
            recovered.crashed_at.unwrap(),
            recovered.recovery_exit.unwrap(),
            out.recovery_time().unwrap(),
        );
    }
    println!("both recoveries reproduced the failure-free digest exactly.");
}
