//! Log anatomy: run one small producer/consumer exchange under every
//! logging protocol and show exactly what reached stable storage — the
//! concrete version of the paper's Table 2 argument.
//!
//! Run with: `cargo run --example log_anatomy`

use ccl_core::{run_program, ClusterSpec, Dsm, Protocol};

fn exchange(dsm: &mut Dsm) -> u64 {
    let a = dsm.alloc_blocked::<u64>(128); // one 4 KB page per node... scaled by spec
    let me = dsm.me();
    // Round 1: node 0 writes a remote page, everyone reads it.
    if me == 0 {
        dsm.write(&a, 96, 7); // page homed at the last node
    }
    dsm.barrier();
    let v = dsm.read(&a, 96);
    dsm.barrier();
    // Round 2: a lock-protected increment chain.
    dsm.acquire(1);
    let c = dsm.read(&a, 0);
    dsm.write(&a, 0, c + v);
    dsm.release(1);
    dsm.barrier();
    let total = dsm.read(&a, 0);
    dsm.barrier();
    total
}

fn main() {
    println!("== what each protocol logs for one tiny exchange (4 nodes) ==");
    println!();
    println!(
        "{:<28} {:>12} {:>10} {:>14} {:>14}",
        "protocol", "log bytes", "flushes", "mean flush B", "exec"
    );
    println!("{:-<84}", "");
    for protocol in [
        Protocol::None,
        Protocol::Ml,
        Protocol::RecordsOnly,
        Protocol::Rsl,
        Protocol::Ccl,
    ] {
        let spec = ClusterSpec::new(4, 8).with_protocol(protocol);
        let out = run_program(spec, exchange);
        assert!(out.nodes.windows(2).all(|w| w[0].result == w[1].result));
        println!(
            "{:<28} {:>12} {:>10} {:>14.0} {:>14}",
            protocol.label(),
            out.total_log_bytes(),
            out.total_log_flushes(),
            out.mean_log_bytes(),
            format!("{}", out.exec_time()),
        );
    }
    println!("{:-<84}", "");
    println!();
    println!("ML's log dwarfs the others because it contains the full 4 KB page");
    println!("copies the readers fetched; CCL keeps only notices, update records");
    println!("and the writers' diffs — and, unlike records-only/RSL, that is still");
    println!("enough to rebuild the home-based memory image after a crash.");
}
