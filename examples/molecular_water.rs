//! Molecular dynamics on the DSM: the SPLASH Water benchmark — the one
//! program in the paper's suite that mixes lock-based and barrier-based
//! synchronization, exercising the lock-grant notice chains.
//!
//! Run with: `cargo run --release --example molecular_water`

use ccl_apps::water::{reference_digest, run, WaterConfig};
use ccl_core::{run_program, ClusterSpec, Protocol};

fn main() {
    let cfg = WaterConfig {
        molecules: 128,
        steps: 3,
    };
    let nodes = 4;
    let pages = cfg.shared_pages(4096) + 4;

    println!(
        "== molecular dynamics: {} molecules, {} steps, {} nodes ==",
        cfg.molecules, cfg.steps, nodes
    );

    let spec = ClusterSpec::new(nodes, pages).with_protocol(Protocol::Ccl);
    let out = run_program(spec, move |dsm| run(dsm, &cfg));

    let expect = reference_digest(&cfg);
    for n in &out.nodes {
        assert_eq!(
            n.result, expect,
            "node {} diverged from the serial MD",
            n.node
        );
    }
    let total = out.total_stats();
    println!("digest matches the serial reference on every node.");
    println!("lock acquires : {}", total.lock_acquires);
    println!("barriers      : {}", total.barriers);
    println!("page fetches  : {}", total.page_fetches);
    println!(
        "diffs flushed : {} ({} bytes)",
        total.diffs_created, total.diff_bytes
    );
    println!(
        "CCL log       : {} bytes in {} flushes",
        total.log_bytes, total.log_flushes
    );
    println!("virtual time  : {}", out.exec_time());
}
