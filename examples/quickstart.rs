//! Quickstart: a tiny recoverable DSM program.
//!
//! Builds a 4-node cluster running coherence-centric logging, shares an
//! array across the nodes, synchronizes with a barrier, and prints what
//! the protocol did under the hood.
//!
//! Run with: `cargo run --example quickstart`

use ccl_core::{run_program, ClusterSpec, Protocol};

fn main() {
    // 4 simulated Ultra-5 workstations, 4 KB pages, CCL fault tolerance.
    let spec = ClusterSpec::new(4, 64).with_protocol(Protocol::Ccl);

    let out = run_program(spec, |dsm| {
        // Every node runs this same program (SPMD), each with its own
        // private memory; sharing happens only through the DSM.
        let xs = dsm.alloc_blocked::<f64>(1024);
        let me = dsm.me();
        let chunk = xs.len() / dsm.nodes();

        // Each node fills its own block-distributed stripe (home pages:
        // no faults, no diffs).
        for i in me * chunk..(me + 1) * chunk {
            dsm.write(&xs, i, (i as f64).sin());
        }
        dsm.barrier();

        // Now everyone sums the whole array — remote stripes are
        // fetched page by page from their home nodes.
        let mut sum = 0.0;
        for i in 0..xs.len() {
            sum += dsm.read(&xs, i);
        }
        dsm.charge_flops(xs.len() as u64);
        dsm.barrier();
        sum
    });

    println!("== quickstart: 4-node recoverable DSM ==");
    for n in &out.nodes {
        println!(
            "node {}: sum = {:.6}  (fetches={}, faults={}, log bytes={})",
            n.node,
            n.result,
            n.stats.page_fetches,
            n.stats.faults(),
            n.stats.log_bytes,
        );
    }
    println!("cluster execution time (virtual): {}", out.exec_time());
    println!(
        "total CCL log: {} bytes in {} flushes",
        out.total_log_bytes(),
        out.total_log_flushes()
    );
    assert!(out.nodes.windows(2).all(|w| w[0].result == w[1].result));
    println!("all nodes agree. done.");
}
