//! Weather prediction on the DSM: the NCAR shallow-water kernel, the
//! workload the paper's intro motivates (long-running scientific codes
//! that cannot afford to restart from scratch on a failure).
//!
//! Runs the same forecast twice — without fault tolerance and with CCL —
//! and reports what the protection costs.
//!
//! Run with: `cargo run --release --example weather_shallow`

use ccl_apps::shallow::{run, ShallowConfig};
use ccl_core::{run_program, ClusterSpec, Protocol};

fn main() {
    let cfg = ShallowConfig { n: 64, steps: 8 };
    let nodes = 4;
    let pages = cfg.shared_pages(4096) + 4;

    println!(
        "== shallow-water forecast: {}x{} grid, {} steps, {} nodes ==",
        cfg.n, cfg.n, cfg.steps, nodes
    );

    let mut baseline = None;
    for protocol in [Protocol::None, Protocol::Ml, Protocol::Ccl] {
        let spec = ClusterSpec::new(nodes, pages).with_protocol(protocol);
        let out = run_program(spec, move |dsm| run(dsm, &cfg));
        let t = out.exec_time();
        let base = *baseline.get_or_insert(t);
        let overhead = 100.0 * (t.as_secs_f64() / base.as_secs_f64() - 1.0);
        println!(
            "{:>14}: exec {:>10}  (+{overhead:5.1}% vs none)  log {:>9} bytes in {:>4} flushes",
            protocol.label(),
            format!("{t}"),
            out.total_log_bytes(),
            out.total_log_flushes(),
        );
        // Physics unaffected by the logging protocol:
        assert!(out.nodes.windows(2).all(|w| w[0].result == w[1].result));
    }
    println!("forecast digests identical under every protocol.");
}
