//! Whole-system property test: random barrier-synchronized write
//! schedules (data-race-free by construction) must leave the shared
//! space in exactly the state a sequential model predicts — on every
//! node, under every logging protocol, and across injected crashes.

use ccl_core::{run_program, ClusterSpec, CrashPlan, Dsm, Protocol};
use proptest::prelude::*;

const NODES: usize = 3;
const CELLS: usize = 96; // 3 x 256-byte pages, block-distributed

/// One round: for each touched cell, which node writes which value.
type Round = Vec<(usize, usize, u64)>; // (cell, writer, value)

fn arb_schedule() -> impl Strategy<Value = Vec<Round>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0usize..CELLS, 0usize..NODES, 1u64..1_000_000),
            0..24,
        )
        .prop_map(|mut round: Round| {
            // One writer per cell per round keeps the schedule DRF.
            round.sort_by_key(|(c, _, _)| *c);
            round.dedup_by_key(|(c, _, _)| *c);
            round
        }),
        1..6,
    )
}

fn model_final(schedule: &[Round]) -> Vec<u64> {
    let mut cells = vec![0u64; CELLS];
    for round in schedule {
        for &(cell, _, value) in round {
            cells[cell] = value;
        }
    }
    cells
}

fn dsm_program(schedule: Vec<Round>) -> impl Fn(&mut Dsm) -> Vec<u64> + Send + Sync {
    move |dsm: &mut Dsm| {
        let a = dsm.alloc_blocked::<u64>(CELLS);
        let me = dsm.me();
        for round in &schedule {
            for &(cell, writer, value) in round {
                if writer == me {
                    dsm.write(&a, cell, value);
                }
            }
            dsm.barrier();
            // Cross-reads keep the coherence machinery honest.
            let probe = (me * 31) % CELLS;
            let _ = dsm.read(&a, probe);
            dsm.barrier();
        }
        (0..CELLS).map(|c| dsm.read(&a, c)).collect()
    }
}

fn check(schedule: Vec<Round>, protocol: Protocol, crash: Option<CrashPlan>) {
    let expect = model_final(&schedule);
    let mut spec = ClusterSpec::new(NODES, 8)
        .with_page_size(256)
        .with_protocol(protocol);
    if let Some(c) = crash {
        spec = spec.with_crash(c);
    }
    let out = run_program(spec, dsm_program(schedule));
    for n in &out.nodes {
        assert_eq!(n.result, expect, "node {} deviates from the model", n.node);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_schedules_match_model_no_logging(schedule in arb_schedule()) {
        check(schedule, Protocol::None, None);
    }

    #[test]
    fn random_schedules_match_model_ccl(schedule in arb_schedule()) {
        check(schedule, Protocol::Ccl, None);
    }

    #[test]
    fn random_schedules_match_model_ml(schedule in arb_schedule()) {
        check(schedule, Protocol::Ml, None);
    }

    #[test]
    fn random_schedules_survive_crashes_ccl(
        schedule in arb_schedule(),
        victim in 1usize..NODES,
        after in 1u64..8,
    ) {
        let rounds = schedule.len() as u64;
        let crash = CrashPlan::new(victim, after.min(rounds * 2));
        check(schedule, Protocol::Ccl, Some(crash));
    }

    #[test]
    fn random_schedules_survive_crashes_ml(
        schedule in arb_schedule(),
        victim in 1usize..NODES,
        after in 1u64..8,
    ) {
        let rounds = schedule.len() as u64;
        let crash = CrashPlan::new(victim, after.min(rounds * 2));
        check(schedule, Protocol::Ml, Some(crash));
    }
}
