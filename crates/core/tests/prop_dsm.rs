//! Whole-system property test: random barrier-synchronized write
//! schedules (data-race-free by construction) must leave the shared
//! space in exactly the state a sequential model predicts — on every
//! node, under every logging protocol, and across injected crashes.

use ccl_core::{run_program, ClusterSpec, CrashPlan, Dsm, Protocol};
use minicheck::{check, Rng};

const NODES: usize = 3;
const CELLS: usize = 96; // 3 x 256-byte pages, block-distributed
const CASES: u64 = 24;

/// One round: for each touched cell, which node writes which value.
type Round = Vec<(usize, usize, u64)>; // (cell, writer, value)

fn arb_schedule(rng: &mut Rng) -> Vec<Round> {
    let rounds = rng.usize_in(1, 6);
    (0..rounds)
        .map(|_| {
            let mut round: Round = (0..rng.usize_in(0, 24))
                .map(|_| {
                    (
                        rng.usize_in(0, CELLS),
                        rng.usize_in(0, NODES),
                        rng.u64_in(1, 1_000_000),
                    )
                })
                .collect();
            // One writer per cell per round keeps the schedule DRF.
            round.sort_by_key(|(c, _, _)| *c);
            round.dedup_by_key(|(c, _, _)| *c);
            round
        })
        .collect()
}

fn model_final(schedule: &[Round]) -> Vec<u64> {
    let mut cells = vec![0u64; CELLS];
    for round in schedule {
        for &(cell, _, value) in round {
            cells[cell] = value;
        }
    }
    cells
}

fn dsm_program(schedule: Vec<Round>) -> impl Fn(&mut Dsm) -> Vec<u64> + Send + Sync {
    move |dsm: &mut Dsm| {
        let a = dsm.alloc_blocked::<u64>(CELLS);
        let me = dsm.me();
        for round in &schedule {
            for &(cell, writer, value) in round {
                if writer == me {
                    dsm.write(&a, cell, value);
                }
            }
            dsm.barrier();
            // Cross-reads keep the coherence machinery honest.
            let probe = (me * 31) % CELLS;
            let _ = dsm.read(&a, probe);
            dsm.barrier();
        }
        (0..CELLS).map(|c| dsm.read(&a, c)).collect()
    }
}

fn run_check(schedule: Vec<Round>, protocol: Protocol, crash: Option<CrashPlan>) {
    let expect = model_final(&schedule);
    let mut spec = ClusterSpec::new(NODES, 8)
        .with_page_size(256)
        .with_protocol(protocol);
    if let Some(c) = crash {
        spec = spec.with_crash(c);
    }
    let out = run_program(spec, dsm_program(schedule));
    for n in &out.nodes {
        assert_eq!(n.result, expect, "node {} deviates from the model", n.node);
    }
}

#[test]
fn random_schedules_match_model_no_logging() {
    check("random_schedules_match_model_no_logging", CASES, |rng| {
        run_check(arb_schedule(rng), Protocol::None, None);
    });
}

#[test]
fn random_schedules_match_model_ccl() {
    check("random_schedules_match_model_ccl", CASES, |rng| {
        run_check(arb_schedule(rng), Protocol::Ccl, None);
    });
}

#[test]
fn random_schedules_match_model_ml() {
    check("random_schedules_match_model_ml", CASES, |rng| {
        run_check(arb_schedule(rng), Protocol::Ml, None);
    });
}

#[test]
fn random_schedules_survive_crashes_ccl() {
    check("random_schedules_survive_crashes_ccl", CASES, |rng| {
        let schedule = arb_schedule(rng);
        let victim = rng.usize_in(1, NODES);
        let after = rng.u64_in(1, 8);
        let rounds = schedule.len() as u64;
        let crash = CrashPlan::new(victim, after.min(rounds * 2));
        run_check(schedule, Protocol::Ccl, Some(crash));
    });
}

#[test]
fn random_schedules_survive_crashes_ml() {
    check("random_schedules_survive_crashes_ml", CASES, |rng| {
        let schedule = arb_schedule(rng);
        let victim = rng.usize_in(1, NODES);
        let after = rng.u64_in(1, 8);
        let rounds = schedule.len() as u64;
        let crash = CrashPlan::new(victim, after.min(rounds * 2));
        run_check(schedule, Protocol::Ml, Some(crash));
    });
}
