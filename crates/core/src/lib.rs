//! # ccl-core — recoverable home-based software DSM
//!
//! The public API of the reproduction of *"Coherence-Centric Logging and
//! Recovery for Home-Based Software Distributed Shared Memory"*
//! (Kongmunvattana & Tzeng, ICPP 1999): a home-based lazy-release-
//! consistency DSM over a simulated cluster, with pluggable fault
//! tolerance — no logging, traditional message logging (ML), or the
//! paper's coherence-centric logging (CCL) with prefetch-based recovery.
//!
//! ```
//! use ccl_core::{run_program, ClusterSpec, Protocol};
//!
//! let spec = ClusterSpec::new(4, 16)
//!     .with_page_size(256)
//!     .with_protocol(Protocol::Ccl);
//! let out = run_program(spec, |dsm| {
//!     let xs = dsm.alloc_blocked::<f64>(64);
//!     if dsm.me() == 0 {
//!         dsm.write(&xs, 0, 3.25);
//!     }
//!     dsm.barrier();
//!     dsm.read(&xs, 0)
//! });
//! assert!(out.nodes.iter().all(|n| n.result == 3.25));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsm;
mod runner;
mod shared;
mod spec;

pub use dsm::Dsm;
pub use runner::{run_program, FaultSummary, NodeOutput, RunOutput};
pub use shared::{ArrayHandle, SharedVal, ELEM_BYTES};
pub use spec::{ClusterSpec, CrashPlan, FailureSpec, Protocol};

// Re-export the protocol-layer types the report pipeline needs.
pub use hlrc::{kind_label, HomePolicy, MSG_KINDS};

// Re-export the substrate types reports and benches need.
pub use simnet::{
    recycle_trace_buffer, CostModel, DiskCounters, DiskFaultPlan, FaultPlan, Histogram, LogObj,
    NodeMetrics, NodeStats, Partition, SimDuration, SimTime, TraceEvent, TraceKind,
};
