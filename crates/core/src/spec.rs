//! Cluster run specification: protocol selection and failure injection.

use hlrc::{DsmConfig, HomePolicy};
use simnet::{CostModel, DiskFaultPlan, FaultPlan, NodeId, SimDuration};

/// Which fault-tolerance protocol a run uses (the paper's three, plus
/// the no-overlap CCL ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// No logging — the paper's "None" baseline (re-execution on crash).
    None,
    /// Traditional message logging (§3.1).
    Ml,
    /// Coherence-centric logging (§3.2).
    Ccl,
    /// CCL with the flush/communication overlap disabled (ablation A1).
    CclNoOverlap,
    /// CCL with recovery prefetching disabled (ablation A2).
    CclNoPrefetch,
    /// Related work (§5): Suri et al.'s records-only logging.
    /// Logging comparison only — cannot recover a home-based DSM.
    RecordsOnly,
    /// Related work (§5): Park & Yeom's reduced-stable logging.
    /// Logging comparison only — cannot recover a home-based DSM.
    Rsl,
}

impl Protocol {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::None => "none",
            Protocol::Ml => "ml",
            Protocol::Ccl => "ccl",
            Protocol::CclNoOverlap => "ccl-no-overlap",
            Protocol::CclNoPrefetch => "ccl-no-prefetch",
            Protocol::RecordsOnly => "records-only",
            Protocol::Rsl => "rsl",
        }
    }

    /// All protocols the paper's tables compare.
    pub const TABLE2: [Protocol; 3] = [Protocol::None, Protocol::Ml, Protocol::Ccl];
}

/// Damage the crashing node's *last flushed log batch* at the moment
/// of the crash, modelling a power cut that lands mid-flush: a seeded
/// prefix of the batch persists intact, the next record is torn
/// (truncated short, or garbled by one bit when `garble` is set), and
/// the rest of the batch is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Garble one bit of the boundary record instead of truncating it.
    pub garble: bool,
    /// Seed choosing how much of the batch survives and where the
    /// damage lands (deterministic per seed).
    pub seed: u64,
}

/// Inject a crash of `node` immediately after it completes its
/// `after_barriers`-th barrier (a point where no locks are in flight,
/// matching the paper's crash-after-flush scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The node that fails.
    pub node: NodeId,
    /// Crash after this many completed barriers at that node (1-based).
    pub after_barriers: u64,
    /// Failure-detection delay before recovery starts.
    pub detection_delay: SimDuration,
    /// When set, the crash lands mid-flush: the last flushed log batch
    /// is torn at a seeded point instead of persisting whole.
    pub torn_tail: Option<TornTail>,
}

impl CrashPlan {
    /// Crash `node` after `after_barriers` barriers, detected instantly.
    pub fn new(node: NodeId, after_barriers: u64) -> CrashPlan {
        CrashPlan {
            node,
            after_barriers,
            detection_delay: SimDuration::ZERO,
            torn_tail: None,
        }
    }

    /// Set the failure-detection delay.
    pub fn with_detection_delay(mut self, d: SimDuration) -> CrashPlan {
        self.detection_delay = d;
        self
    }

    /// Make the crash land mid-flush: truncate the boundary record of
    /// the last flushed batch at a seeded point.
    pub fn with_torn_tail(mut self, seed: u64) -> CrashPlan {
        self.torn_tail = Some(TornTail {
            garble: false,
            seed,
        });
        self
    }

    /// Make the crash land mid-flush and flip one bit of the boundary
    /// record instead of truncating it (a torn sector that still has
    /// the right length).
    pub fn with_garbled_tail(mut self, seed: u64) -> CrashPlan {
        self.torn_tail = Some(TornTail { garble: true, seed });
        self
    }
}

/// Failure schedule for a run: any number of node crashes — including a
/// second crash of the same node after its first recovery, and
/// concurrent crashes of distinct nodes — plus per-node disk write-fault
/// plans. `after_barriers` counts barriers completed in the current
/// program incarnation, so a node that crashed and recovered counts from
/// zero again.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSpec {
    /// Crash events, each fired at its barrier-completion point.
    pub crashes: Vec<CrashPlan>,
    /// Per-node disk write-fault schedules.
    pub disk_faults: Vec<(NodeId, DiskFaultPlan)>,
}

impl FailureSpec {
    /// No failures.
    pub fn none() -> FailureSpec {
        FailureSpec::default()
    }

    /// True when nothing is scheduled to fail.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty() && self.disk_faults.is_empty()
    }

    /// Add a crash event.
    pub fn with_crash(mut self, plan: CrashPlan) -> FailureSpec {
        self.crashes.push(plan);
        self
    }

    /// Add a disk write-fault schedule at `node`.
    pub fn with_disk_fault(mut self, node: NodeId, plan: DiskFaultPlan) -> FailureSpec {
        self.disk_faults.push((node, plan));
        self
    }
}

/// Everything needed to launch one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of DSM processes (the paper uses 8).
    pub nodes: usize,
    /// Coherence granularity in bytes.
    pub page_size: usize,
    /// Size of the shared address space, in pages.
    pub shared_pages: u32,
    /// Number of global locks.
    pub locks: u32,
    /// Fault-tolerance protocol.
    pub protocol: Protocol,
    /// Hardware cost model.
    pub cost: CostModel,
    /// Failure schedule (crashes and disk faults).
    pub failures: FailureSpec,
    /// Message-fault plan applied to every node's transport.
    pub faults: FaultPlan,
    /// Coordinated-checkpoint cadence: every node takes a checkpoint
    /// right after every `n`-th barrier (counted per program
    /// incarnation), truncating its ML/CCL logs and compacting the
    /// checkpoint page stream. `None` means the application checkpoints
    /// explicitly (or never).
    pub checkpoint_every_barriers: Option<u64>,
    /// Initial home-assignment policy for shared pages.
    pub home_policy: HomePolicy,
    /// Maximum extra same-home pages a demand fetch may pull in (0
    /// disables prefetching and restores the single-page fetch path).
    /// `None` resolves per protocol: message logging defaults to 0,
    /// because it must synchronously log the *contents* of every
    /// installed page — speculative copies inflate its stable log far
    /// past what the hidden fetch latency repays (measured: 3D-FFT at
    /// paper scale runs ~40 % slower). Coherence-centric logging keeps
    /// no page contents on the fetch path, so it prefetches at the
    /// full default depth, like the no-logging baseline.
    pub prefetch_depth: Option<u32>,
    /// Profile-guided home migration at checkpoint barriers.
    pub adaptive_migration: bool,
}

impl ClusterSpec {
    /// A paper-like spec: 4 KB pages, no failures, no logging.
    pub fn new(nodes: usize, shared_pages: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            page_size: 4096,
            shared_pages,
            locks: 256,
            protocol: Protocol::None,
            cost: CostModel::ULTRA5_CLUSTER,
            failures: FailureSpec::none(),
            faults: FaultPlan::none(),
            checkpoint_every_barriers: None,
            home_policy: HomePolicy::Block,
            prefetch_depth: None,
            adaptive_migration: true,
        }
    }

    /// Select the fault-tolerance protocol.
    pub fn with_protocol(mut self, p: Protocol) -> ClusterSpec {
        self.protocol = p;
        self
    }

    /// Use a smaller page size (tests).
    pub fn with_page_size(mut self, bytes: usize) -> ClusterSpec {
        self.page_size = bytes;
        self
    }

    /// Add a crash event to the failure schedule.
    pub fn with_crash(mut self, plan: CrashPlan) -> ClusterSpec {
        self.failures.crashes.push(plan);
        self
    }

    /// Replace the whole failure schedule.
    pub fn with_failures(mut self, failures: FailureSpec) -> ClusterSpec {
        self.failures = failures;
        self
    }

    /// Add a disk write-fault schedule at `node`.
    pub fn with_disk_fault(mut self, node: NodeId, plan: DiskFaultPlan) -> ClusterSpec {
        self.failures.disk_faults.push((node, plan));
        self
    }

    /// Set the message-fault plan (drops, duplicates, jitter,
    /// partitions), applied to every node's transport.
    pub fn with_faults(mut self, plan: FaultPlan) -> ClusterSpec {
        self.faults = plan;
        self
    }

    /// Take a coordinated checkpoint after every `n`-th barrier,
    /// truncating logs and compacting superseded checkpoint pages.
    pub fn with_checkpoint_cadence(mut self, n: u64) -> ClusterSpec {
        assert!(n > 0, "checkpoint cadence must be positive");
        self.checkpoint_every_barriers = Some(n);
        self
    }

    /// Select the initial home-assignment policy.
    pub fn with_home_policy(mut self, p: HomePolicy) -> ClusterSpec {
        self.home_policy = p;
        self
    }

    /// Set the prefetch depth explicitly (0 disables batched
    /// prefetching), overriding the per-protocol default.
    pub fn with_prefetch_depth(mut self, depth: u32) -> ClusterSpec {
        self.prefetch_depth = Some(depth);
        self
    }

    /// The prefetch depth this spec runs with: the explicit setting if
    /// any, else the per-protocol default (see
    /// [`ClusterSpec::prefetch_depth`] for why ML resolves to zero).
    pub fn effective_prefetch_depth(&self) -> u32 {
        self.prefetch_depth.unwrap_or(match self.protocol {
            Protocol::Ml => 0,
            _ => DsmConfig::DEFAULT_PREFETCH_DEPTH,
        })
    }

    /// Enable or disable adaptive home migration.
    pub fn with_adaptive_migration(mut self, on: bool) -> ClusterSpec {
        self.adaptive_migration = on;
        self
    }

    /// The derived HLRC configuration.
    pub fn dsm_config(&self) -> DsmConfig {
        DsmConfig::new(self.nodes, self.shared_pages)
            .with_page_size(self.page_size)
            .with_locks(self.locks)
            .with_cost(self.cost)
            .with_home_policy(self.home_policy)
            .with_prefetch_depth(self.effective_prefetch_depth())
            .with_adaptive_migration(self.adaptive_migration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let spec = ClusterSpec::new(8, 64)
            .with_protocol(Protocol::Ccl)
            .with_page_size(512)
            .with_crash(CrashPlan::new(1, 3))
            .with_crash(CrashPlan::new(2, 5).with_detection_delay(SimDuration::from_micros(50)))
            .with_disk_fault(0, DiskFaultPlan::permanent_at(3))
            .with_faults(FaultPlan::lossy(7, 20, 5));
        assert_eq!(spec.protocol.label(), "ccl");
        assert_eq!(spec.page_size, 512);
        assert_eq!(spec.failures.crashes.len(), 2);
        assert_eq!(spec.failures.crashes[0].node, 1);
        assert_eq!(
            spec.failures.crashes[1].detection_delay,
            SimDuration::from_micros(50)
        );
        assert_eq!(spec.failures.disk_faults.len(), 1);
        assert!(!spec.faults.is_none());
        let cfg = spec.dsm_config();
        assert_eq!(cfg.n_nodes, 8);
        assert_eq!(cfg.layout.page_size(), 512);
    }

    #[test]
    fn failure_spec_none_is_empty() {
        assert!(FailureSpec::none().is_none());
        assert!(!FailureSpec::none()
            .with_crash(CrashPlan::new(0, 1))
            .is_none());
        assert!(!FailureSpec::none()
            .with_disk_fault(1, DiskFaultPlan::transient(1, 10))
            .is_none());
    }

    #[test]
    fn torn_tail_and_cadence_builders() {
        let plain = CrashPlan::new(1, 3);
        assert_eq!(plain.torn_tail, None);
        let torn = CrashPlan::new(1, 3).with_torn_tail(7);
        assert_eq!(
            torn.torn_tail,
            Some(TornTail {
                garble: false,
                seed: 7
            })
        );
        let garbled = CrashPlan::new(1, 3).with_garbled_tail(9);
        assert_eq!(
            garbled.torn_tail,
            Some(TornTail {
                garble: true,
                seed: 9
            })
        );
        let spec = ClusterSpec::new(4, 16).with_checkpoint_cadence(2);
        assert_eq!(spec.checkpoint_every_barriers, Some(2));
        assert_eq!(ClusterSpec::new(4, 16).checkpoint_every_barriers, None);
    }

    #[test]
    fn table2_protocols() {
        assert_eq!(Protocol::TABLE2.map(|p| p.label()), ["none", "ml", "ccl"]);
    }
}
