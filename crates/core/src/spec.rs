//! Cluster run specification: protocol selection and failure injection.

use hlrc::{DsmConfig, HomePolicy};
use simnet::{CostModel, NodeId, SimDuration};

/// Which fault-tolerance protocol a run uses (the paper's three, plus
/// the no-overlap CCL ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// No logging — the paper's "None" baseline (re-execution on crash).
    None,
    /// Traditional message logging (§3.1).
    Ml,
    /// Coherence-centric logging (§3.2).
    Ccl,
    /// CCL with the flush/communication overlap disabled (ablation A1).
    CclNoOverlap,
    /// CCL with recovery prefetching disabled (ablation A2).
    CclNoPrefetch,
    /// Related work (§5): Suri et al.'s records-only logging.
    /// Logging comparison only — cannot recover a home-based DSM.
    RecordsOnly,
    /// Related work (§5): Park & Yeom's reduced-stable logging.
    /// Logging comparison only — cannot recover a home-based DSM.
    Rsl,
}

impl Protocol {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::None => "none",
            Protocol::Ml => "ml",
            Protocol::Ccl => "ccl",
            Protocol::CclNoOverlap => "ccl-no-overlap",
            Protocol::CclNoPrefetch => "ccl-no-prefetch",
            Protocol::RecordsOnly => "records-only",
            Protocol::Rsl => "rsl",
        }
    }

    /// All protocols the paper's tables compare.
    pub const TABLE2: [Protocol; 3] = [Protocol::None, Protocol::Ml, Protocol::Ccl];
}

/// Inject a crash of `node` immediately after it completes its
/// `after_barriers`-th barrier (a point where no locks are in flight,
/// matching the paper's crash-after-flush scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The node that fails.
    pub node: NodeId,
    /// Crash after this many completed barriers at that node (1-based).
    pub after_barriers: u64,
    /// Failure-detection delay before recovery starts.
    pub detection_delay: SimDuration,
}

impl CrashPlan {
    /// Crash `node` after `after_barriers` barriers, detected instantly.
    pub fn new(node: NodeId, after_barriers: u64) -> CrashPlan {
        CrashPlan {
            node,
            after_barriers,
            detection_delay: SimDuration::ZERO,
        }
    }
}

/// Everything needed to launch one cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of DSM processes (the paper uses 8).
    pub nodes: usize,
    /// Coherence granularity in bytes.
    pub page_size: usize,
    /// Size of the shared address space, in pages.
    pub shared_pages: u32,
    /// Number of global locks.
    pub locks: u32,
    /// Fault-tolerance protocol.
    pub protocol: Protocol,
    /// Hardware cost model.
    pub cost: CostModel,
    /// Optional failure injection.
    pub crash: Option<CrashPlan>,
}

impl ClusterSpec {
    /// A paper-like spec: 4 KB pages, no crash, no logging.
    pub fn new(nodes: usize, shared_pages: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            page_size: 4096,
            shared_pages,
            locks: 256,
            protocol: Protocol::None,
            cost: CostModel::ULTRA5_CLUSTER,
            crash: None,
        }
    }

    /// Select the fault-tolerance protocol.
    pub fn with_protocol(mut self, p: Protocol) -> ClusterSpec {
        self.protocol = p;
        self
    }

    /// Use a smaller page size (tests).
    pub fn with_page_size(mut self, bytes: usize) -> ClusterSpec {
        self.page_size = bytes;
        self
    }

    /// Inject a crash.
    pub fn with_crash(mut self, plan: CrashPlan) -> ClusterSpec {
        self.crash = Some(plan);
        self
    }

    /// The derived HLRC configuration.
    pub fn dsm_config(&self) -> DsmConfig {
        DsmConfig::new(self.nodes, self.shared_pages)
            .with_page_size(self.page_size)
            .with_locks(self.locks)
            .with_cost(self.cost)
            .with_home_policy(HomePolicy::Block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let spec = ClusterSpec::new(8, 64)
            .with_protocol(Protocol::Ccl)
            .with_page_size(512)
            .with_crash(CrashPlan::new(1, 3));
        assert_eq!(spec.protocol.label(), "ccl");
        assert_eq!(spec.page_size, 512);
        assert_eq!(spec.crash.unwrap().node, 1);
        let cfg = spec.dsm_config();
        assert_eq!(cfg.n_nodes, 8);
        assert_eq!(cfg.layout.page_size(), 512);
    }

    #[test]
    fn table2_protocols() {
        assert_eq!(Protocol::TABLE2.map(|p| p.label()), ["none", "ml", "ccl"]);
    }
}
