//! Typed views over the shared address space.
//!
//! Every element is stored as one 8-byte little-endian word, so elements
//! never straddle a page boundary and the diff granularity (4-byte
//! words) subdivides them exactly.

use std::marker::PhantomData;

/// Values storable in shared memory (8 bytes each).
pub trait SharedVal: Copy + Send + 'static {
    /// Bit representation written to the page frame.
    fn to_bits(self) -> u64;
    /// Recover the value from its bit representation.
    fn from_bits(bits: u64) -> Self;
}

impl SharedVal for u64 {
    fn to_bits(self) -> u64 {
        self
    }
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl SharedVal for i64 {
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl SharedVal for f64 {
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// Size of one shared element in bytes.
pub const ELEM_BYTES: usize = 8;

/// Handle to a shared array of `T`, valid on every node.
///
/// Handles are plain descriptors (base address + length); all access
/// goes through [`crate::Dsm`], which runs the coherence protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle<T: SharedVal> {
    pub(crate) base: usize,
    pub(crate) len: usize,
    pub(crate) _t: PhantomData<T>,
}

impl<T: SharedVal> ArrayHandle<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `i`.
    #[inline]
    pub(crate) fn addr(&self, i: usize) -> usize {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + i * ELEM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrips() {
        assert_eq!(f64::from_bits(SharedVal::to_bits(-2.5f64)), -2.5);
        assert_eq!(i64::from_bits(SharedVal::to_bits(-7i64)), -7);
        assert_eq!(u64::from_bits(SharedVal::to_bits(9u64)), 9);
    }

    #[test]
    fn handle_addressing() {
        let h = ArrayHandle::<f64> {
            base: 4096,
            len: 10,
            _t: PhantomData,
        };
        assert_eq!(h.addr(0), 4096);
        assert_eq!(h.addr(9), 4096 + 72);
        assert_eq!(h.len(), 10);
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn handle_bounds_checked() {
        let h = ArrayHandle::<u64> {
            base: 0,
            len: 2,
            _t: PhantomData,
        };
        h.addr(2);
    }
}
