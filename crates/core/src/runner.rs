//! Program runner: launches a DSM program on the simulated cluster,
//! optionally injecting a crash and driving recovery.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use hlrc::{HlrcNode, Msg, NoLogging};
use simnet::{run_cluster, DiskCounters, NodeId, NodeStats, SimTime};

use crate::dsm::{CrashToken, Dsm};
use crate::spec::{ClusterSpec, Protocol};

/// Per-node outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutput<R> {
    /// The node.
    pub node: NodeId,
    /// What the program returned on this node.
    pub result: R,
    /// Execution counters.
    pub stats: NodeStats,
    /// Stable-storage counters.
    pub disk: DiskCounters,
    /// Virtual time at which this node finished the program.
    pub finish: SimTime,
    /// When the injected crash happened here (if this node failed).
    pub crashed_at: Option<SimTime>,
    /// When log replay ended and the node resumed live operation.
    pub recovery_exit: Option<SimTime>,
}

/// Whole-cluster outcome.
#[derive(Debug, Clone)]
pub struct RunOutput<R> {
    /// Per-node outputs, in node order.
    pub nodes: Vec<NodeOutput<R>>,
}

impl<R> RunOutput<R> {
    /// The run's execution time: the latest finish across nodes.
    pub fn exec_time(&self) -> SimTime {
        self.nodes.iter().map(|n| n.finish).max().unwrap_or(SimTime::ZERO)
    }

    /// Cluster-wide merged statistics.
    pub fn total_stats(&self) -> NodeStats {
        let mut total = NodeStats::default();
        for n in &self.nodes {
            total.merge(&n.stats);
        }
        total
    }

    /// Total log bytes flushed across the cluster.
    pub fn total_log_bytes(&self) -> u64 {
        self.total_stats().log_bytes
    }

    /// Total log flushes across the cluster.
    pub fn total_log_flushes(&self) -> u64 {
        self.total_stats().log_flushes
    }

    /// Mean flushed-log size in bytes across the cluster.
    pub fn mean_log_bytes(&self) -> f64 {
        self.total_stats().mean_log_flush_bytes()
    }

    /// The failed node's measured recovery time, if a crash was injected
    /// and recovery completed.
    pub fn recovery_time(&self) -> Option<simnet::SimDuration> {
        self.nodes.iter().find_map(|n| {
            let start = n.crashed_at?;
            let end = n.recovery_exit?;
            Some(end.saturating_since(start))
        })
    }
}

/// Install (once) a panic hook that keeps the default behaviour for
/// real panics but stays silent for the internal crash-injection token,
/// whose unwind is expected and caught.
fn silence_crash_token_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashToken>().is_none() {
                default(info);
            }
        }));
    });
}

/// Run `program` on every node of the cluster described by `spec`.
///
/// The program is an ordinary function over [`Dsm`]; it must be
/// deterministic between synchronization events (fixed seeds, no wall
/// clock) and must perform the same allocation sequence on every node.
/// A final barrier is appended automatically so that every node stays
/// reachable until all protocol traffic has drained.
///
/// With a [`crate::CrashPlan`], the failed node's program unwinds at the
/// crash point, its volatile state is wiped, and the program re-runs
/// from the start: with ML/CCL the re-run replays from the stable log
/// (fast, no synchronization waits) until the log is exhausted, then
/// resumes live execution; with `Protocol::None` the re-run is a plain
/// re-execution.
pub fn run_program<R, F>(spec: ClusterSpec, program: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Dsm) -> R + Send + Sync,
{
    if spec.crash.is_some() {
        silence_crash_token_panics();
    }
    let cfg = spec.dsm_config();
    let program = &program;
    let results = run_cluster::<Msg, _, _>(spec.nodes, spec.cost, move |ctx| {
        let id = ctx.id();
        let ft: Box<dyn hlrc::FaultTolerance> = match spec.protocol {
            Protocol::None => Box::new(NoLogging),
            Protocol::Ml => Box::new(ftlog::MlLogger::new()),
            Protocol::Ccl => Box::new(ftlog::CclLogger::new()),
            Protocol::CclNoOverlap => Box::new(ftlog::CclLogger::without_overlap()),
            Protocol::CclNoPrefetch => Box::new(ftlog::CclLogger::without_prefetch()),
            Protocol::RecordsOnly => Box::new(ftlog::RecordOnlyLogger::new()),
            Protocol::Rsl => Box::new(ftlog::RslLogger::new()),
        };
        let node = HlrcNode::new(ctx, cfg, ft);
        let mut dsm = Dsm::new(node, spec.crash);
        let crashes_here = spec.crash.is_some_and(|c| c.node == id);
        let result = if crashes_here {
            match catch_unwind(AssertUnwindSafe(|| program(&mut dsm))) {
                Ok(r) => r, // crash point never reached
                Err(payload) => {
                    if payload.downcast_ref::<CrashToken>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    dsm.handle_crash();
                    program(&mut dsm)
                }
            }
        } else {
            program(&mut dsm)
        };
        // Implicit final barrier: keeps managers and homes reachable
        // until every node has finished all its protocol traffic.
        dsm.barrier();
        let inner = &dsm.node.inner;
        NodeOutput {
            node: id,
            result,
            stats: inner.ctx.stats,
            disk: inner.ctx.disk.counters(),
            finish: inner.ctx.now(),
            crashed_at: inner.crashed_at,
            recovery_exit: inner.recovery_exit,
        }
    });
    RunOutput { nodes: results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CrashPlan;

    fn tiny_spec(protocol: Protocol) -> ClusterSpec {
        ClusterSpec::new(3, 12)
            .with_page_size(256)
            .with_protocol(protocol)
    }

    fn counter_program(dsm: &mut Dsm) -> u64 {
        let arr = dsm.alloc::<u64>(8);
        for round in 0..4 {
            if dsm.me() == round % dsm.nodes() {
                let v = dsm.read(&arr, 0);
                dsm.write(&arr, 0, v + 1);
            }
            dsm.barrier();
        }
        dsm.read(&arr, 0)
    }

    #[test]
    fn all_protocols_agree_on_results() {
        for p in [Protocol::None, Protocol::Ml, Protocol::Ccl, Protocol::CclNoOverlap] {
            let out = run_program(tiny_spec(p), counter_program);
            assert!(
                out.nodes.iter().all(|n| n.result == 4),
                "protocol {p:?} broke the program"
            );
        }
    }

    #[test]
    fn logging_protocols_actually_log() {
        let none = run_program(tiny_spec(Protocol::None), counter_program);
        let ml = run_program(tiny_spec(Protocol::Ml), counter_program);
        let ccl = run_program(tiny_spec(Protocol::Ccl), counter_program);
        assert_eq!(none.total_log_bytes(), 0);
        assert!(ml.total_log_bytes() > 0);
        assert!(ccl.total_log_bytes() > 0);
        assert!(
            ccl.total_log_bytes() < ml.total_log_bytes(),
            "CCL log ({}) must be smaller than ML log ({})",
            ccl.total_log_bytes(),
            ml.total_log_bytes()
        );
    }

    #[test]
    fn crash_recovery_preserves_results_ccl() {
        let spec = tiny_spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 2));
        let out = run_program(spec, counter_program);
        assert!(out.nodes.iter().all(|n| n.result == 4), "{:?}",
            out.nodes.iter().map(|n| n.result).collect::<Vec<_>>());
        assert!(out.recovery_time().is_some());
    }

    #[test]
    fn crash_recovery_preserves_results_ml() {
        let spec = tiny_spec(Protocol::Ml).with_crash(CrashPlan::new(1, 2));
        let out = run_program(spec, counter_program);
        assert!(out.nodes.iter().all(|n| n.result == 4));
        assert!(out.recovery_time().is_some());
    }
}
