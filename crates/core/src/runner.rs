//! Program runner: launches a DSM program on the simulated cluster,
//! optionally injecting a crash and driving recovery.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use hlrc::{HlrcNode, Msg, NoLogging};
use simnet::{
    run_cluster, DiskCounters, NodeId, NodeMetrics, NodeStats, PhaseBreakdown, SimTime, TraceEvent,
    TraceKind,
};

use crate::dsm::{CrashToken, Dsm};
use crate::spec::{ClusterSpec, Protocol};

/// Fault-injection knobs of a run, echoed into the output so results
/// are reproducible from the telemetry alone.
#[derive(Debug, Clone, Default)]
pub struct FaultSummary {
    /// Message-fault PRNG seed.
    pub seed: u64,
    /// Per-message drop probability, in permille.
    pub drop_per_mille: u16,
    /// Per-message duplication probability, in permille.
    pub dup_per_mille: u16,
    /// Maximum delivery jitter, in nanoseconds.
    pub jitter_max_ns: u64,
    /// Number of scheduled link partitions.
    pub partitions: usize,
    /// Number of scheduled crash events.
    pub crashes: usize,
    /// Number of nodes with a disk-fault schedule.
    pub disk_fault_nodes: usize,
}

/// Per-node outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutput<R> {
    /// The node.
    pub node: NodeId,
    /// What the program returned on this node.
    pub result: R,
    /// Execution counters.
    pub stats: NodeStats,
    /// Stable-storage counters.
    pub disk: DiskCounters,
    /// Bytes resident in this node's ML/CCL log streams when the run
    /// ended. Unlike the cumulative `stats.log_bytes`, this shrinks at
    /// every checkpoint truncation — a cadence run keeps it bounded.
    pub log_bytes_on_disk: u64,
    /// Virtual time at which this node finished the program.
    pub finish: SimTime,
    /// Where this node's time went; the four components sum to
    /// `finish`.
    pub phases: PhaseBreakdown,
    /// Structured telemetry stream, in nondecreasing virtual-time
    /// order.
    pub trace: Vec<TraceEvent>,
    /// Events dropped after the bounded trace sink filled (0 on every
    /// sized workload; nonzero means `trace` is a prefix).
    pub trace_dropped: u64,
    /// Hot-path distribution metrics (log-binned histograms).
    pub metrics: NodeMetrics,
    /// When the injected crash happened here (if this node failed).
    pub crashed_at: Option<SimTime>,
    /// When log replay ended and the node resumed live operation.
    pub recovery_exit: Option<SimTime>,
}

/// Whole-cluster outcome.
#[derive(Debug, Clone)]
pub struct RunOutput<R> {
    /// Per-node outputs, in node order.
    pub nodes: Vec<NodeOutput<R>>,
    /// The fault-injection knobs this run was launched with.
    pub faults: FaultSummary,
}

impl<R> RunOutput<R> {
    /// The run's execution time: the latest finish across nodes.
    pub fn exec_time(&self) -> SimTime {
        self.nodes
            .iter()
            .map(|n| n.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Cluster-wide merged statistics.
    pub fn total_stats(&self) -> NodeStats {
        let mut total = NodeStats::default();
        for n in &self.nodes {
            total.merge(&n.stats);
        }
        total
    }

    /// Cluster-wide merged histogram metrics.
    pub fn total_metrics(&self) -> NodeMetrics {
        let mut total = NodeMetrics::default();
        for n in &self.nodes {
            total.merge(&n.metrics);
        }
        total
    }

    /// Total log bytes flushed across the cluster.
    pub fn total_log_bytes(&self) -> u64 {
        self.total_stats().log_bytes
    }

    /// Total log flushes across the cluster.
    pub fn total_log_flushes(&self) -> u64 {
        self.total_stats().log_flushes
    }

    /// Mean flushed-log size in bytes across the cluster.
    pub fn mean_log_bytes(&self) -> f64 {
        self.total_stats().mean_log_flush_bytes()
    }

    /// The failed node's measured recovery time, if a crash was injected
    /// and recovery completed.
    pub fn recovery_time(&self) -> Option<simnet::SimDuration> {
        self.nodes.iter().find_map(|n| {
            let start = n.crashed_at?;
            let end = n.recovery_exit?;
            Some(end.saturating_since(start))
        })
    }

    /// Nodes whose log device failed permanently during the run.
    pub fn degraded_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| {
                n.trace
                    .iter()
                    .any(|ev| matches!(ev.kind, TraceKind::LogDeviceFailed))
            })
            .map(|n| n.node)
            .collect()
    }

    /// Machine-readable run telemetry: per-node phase breakdown (all
    /// times in nanoseconds), trace-event counts, and the fault-
    /// injection knobs and counters, as a JSON string. The bench
    /// harness prints this for downstream tooling.
    pub fn phases_json(&self, label: &str) -> String {
        use std::fmt::Write;
        let total = self.total_stats();
        let disk = self.nodes.iter().fold(DiskCounters::default(), |mut d, n| {
            d.write_retries += n.disk.write_retries;
            d.failed_writes += n.disk.failed_writes;
            d.full_writes += n.disk.full_writes;
            d.torn_records += n.disk.torn_records;
            d.corrupted_records += n.disk.corrupted_records;
            d
        });
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"run\":\"{label}\",\"exec_time_ns\":{},",
            self.exec_time().as_nanos()
        );
        let _ = write!(
            s,
            "\"faults\":{{\"seed\":{},\"drop_per_mille\":{},\"dup_per_mille\":{},\
             \"jitter_max_ns\":{},\"partitions\":{},\"crashes\":{},\
             \"disk_fault_nodes\":{},\"timeouts\":{},\"retransmits\":{},\
             \"dups_suppressed\":{},\"sends_to_stopped\":{},\
             \"write_retries\":{},\"failed_writes\":{},\"full_writes\":{},\
             \"torn_records\":{},\"corrupted_records\":{}}},\"nodes\":[",
            self.faults.seed,
            self.faults.drop_per_mille,
            self.faults.dup_per_mille,
            self.faults.jitter_max_ns,
            self.faults.partitions,
            self.faults.crashes,
            self.faults.disk_fault_nodes,
            total.timeouts,
            total.retransmits,
            total.dups_suppressed,
            total.sends_to_stopped,
            disk.write_retries,
            disk.failed_writes,
            disk.full_writes,
            disk.torn_records,
            disk.corrupted_records,
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let p = n.phases;
            let _ = write!(
                s,
                "{{\"node\":{},\"finish_ns\":{},\"compute_ns\":{},\"wait_ns\":{},\
                 \"disk_ns\":{},\"hidden_ns\":{},\"events\":{}}}",
                n.node,
                n.finish.as_nanos(),
                p.compute.as_nanos(),
                p.wait.as_nanos(),
                p.disk.as_nanos(),
                p.hidden.as_nanos(),
                n.trace.len()
            );
        }
        // Cluster-wide per-variant traffic: one entry per wire tag, in
        // tag order, plus the prefetch/migration effectiveness counters.
        s.push_str("],\"traffic\":{");
        for k in 0..hlrc::MSG_KINDS {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"msgs\":{},\"bytes\":{}}}",
                hlrc::kind_label(k),
                total.msgs_by_kind[k],
                total.bytes_by_kind[k],
            );
        }
        let _ = write!(
            s,
            "}},\"prefetch\":{{\"issued\":{},\"hits\":{},\"wasted\":{},\
             \"home_migrations\":{}}},",
            total.prefetch_issued,
            total.prefetch_hits,
            total.prefetch_wasted,
            total.home_migrations,
        );
        s.push_str("\"hist\":{");
        let metrics = self.total_metrics();
        for (i, (name, h)) in metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
        s.push_str("}}");
        s
    }

    /// Physical-layer scheduler telemetry as a JSON string: per-node
    /// watermark-stall counts and park-duration (wall-clock ns)
    /// summaries from the conservative virtual-time scheduler. Kept out
    /// of [`phases_json`](Self::phases_json) on purpose — stalls and
    /// park times depend on real thread interleaving, so two
    /// bit-identical runs may differ here. The bench harness prints
    /// this separately so overhead is recorded without breaking the
    /// byte-for-byte determinism contract on the main telemetry.
    pub fn sched_json(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"run\":\"{label}\",\"sched_stalls_total\":{},\"nodes\":[",
            self.total_stats().sched_stalls
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let park = &n.metrics.park_ns;
            let _ = write!(
                s,
                "{{\"node\":{},\"sched_stalls\":{},\"park_ns\":{{\"count\":{},\
                 \"sum\":{},\"p50\":{},\"p99\":{},\"max\":{}}}}}",
                n.node,
                n.stats.sched_stalls,
                park.count(),
                park.sum(),
                park.quantile(0.5),
                park.quantile(0.99),
                park.max()
            );
        }
        s.push_str("]}");
        s
    }
}

/// Install (once) a panic hook that keeps the default behaviour for
/// real panics but stays silent for the internal crash-injection token,
/// whose unwind is expected and caught.
fn silence_crash_token_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashToken>().is_none() {
                default(info);
            }
        }));
    });
}

/// Run `program` on every node of the cluster described by `spec`.
///
/// The program is an ordinary function over [`Dsm`]; it must be
/// deterministic between synchronization events (fixed seeds, no wall
/// clock) and must perform the same allocation sequence on every node.
/// A final barrier is appended automatically so that every node stays
/// reachable until all protocol traffic has drained.
///
/// With a [`crate::CrashPlan`], the failed node's program unwinds at the
/// crash point, its volatile state is wiped, and the program re-runs
/// from the start: with ML/CCL the re-run replays from the stable log
/// (fast, no synchronization waits) until the log is exhausted, then
/// resumes live execution; with `Protocol::None` the re-run is a plain
/// re-execution.
pub fn run_program<R, F>(spec: ClusterSpec, program: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Dsm) -> R + Send + Sync,
{
    if !spec.failures.crashes.is_empty() {
        silence_crash_token_panics();
    }
    let cfg = spec.dsm_config();
    let program = &program;
    let spec = &spec;
    // Single-failure CCL keeps home-write diffs volatile (a recovering
    // peer implies the writer survived); a multi-crash schedule breaks
    // that assumption, so those runs log home diffs durably too.
    let multi_crash = spec.failures.crashes.len() >= 2;
    let results = run_cluster::<Msg, _, _>(spec.nodes, spec.cost, move |mut ctx| {
        let id = ctx.id();
        if !spec.faults.is_none() {
            ctx.set_fault_plan(spec.faults.clone());
        }
        if let Some((_, plan)) = spec.failures.disk_faults.iter().find(|(n, _)| *n == id) {
            ctx.disk.set_faults(*plan);
        }
        let ft: Box<dyn hlrc::FaultTolerance> = match spec.protocol {
            Protocol::None => Box::new(NoLogging),
            Protocol::Ml => Box::new(ftlog::MlLogger::new()),
            Protocol::Ccl if multi_crash => {
                Box::new(ftlog::CclLogger::new().with_durable_home_diffs())
            }
            Protocol::Ccl => Box::new(ftlog::CclLogger::new()),
            Protocol::CclNoOverlap => Box::new(ftlog::CclLogger::without_overlap()),
            Protocol::CclNoPrefetch => Box::new(ftlog::CclLogger::without_prefetch()),
            Protocol::RecordsOnly => Box::new(ftlog::RecordOnlyLogger::new()),
            Protocol::Rsl => Box::new(ftlog::RslLogger::new()),
        };
        let node = HlrcNode::new(ctx, cfg, ft);
        let mut dsm = Dsm::new(
            node,
            spec.failures.crashes.clone(),
            spec.checkpoint_every_barriers,
        );
        let crashes_here = spec.failures.crashes.iter().any(|c| c.node == id);
        let result = if crashes_here {
            // Each scheduled crash event fires once; re-run the program
            // after every unwind until it completes (multiple events at
            // this node mean multiple recoveries, possibly with another
            // node's recovery in flight).
            loop {
                match catch_unwind(AssertUnwindSafe(|| program(&mut dsm))) {
                    Ok(r) => break r,
                    Err(payload) => {
                        if payload.downcast_ref::<CrashToken>().is_none() {
                            std::panic::resume_unwind(payload);
                        }
                        dsm.handle_crash();
                    }
                }
            }
        } else {
            program(&mut dsm)
        };
        // Implicit final barrier: keeps managers and homes reachable
        // until every node has finished all its protocol traffic.
        dsm.barrier();
        let inner = &mut dsm.node.inner;
        let log_bytes_on_disk = (inner.ctx.disk.stream_bytes(ftlog::ML_STREAM)
            + inner.ctx.disk.stream_bytes(ftlog::CCL_STREAM))
            as u64;
        NodeOutput {
            node: id,
            result,
            stats: inner.ctx.stats,
            disk: inner.ctx.disk.counters(),
            log_bytes_on_disk,
            finish: inner.ctx.now(),
            phases: inner.ctx.stats.phases(),
            trace: inner.ctx.take_trace(),
            trace_dropped: inner.ctx.trace_dropped(),
            metrics: inner.ctx.metrics.clone(),
            crashed_at: inner.ctx.crashed_at,
            recovery_exit: inner.ctx.recovery_exit,
        }
    });
    RunOutput {
        nodes: results,
        faults: FaultSummary {
            seed: spec.faults.seed,
            drop_per_mille: spec.faults.drop_per_mille,
            dup_per_mille: spec.faults.dup_per_mille,
            jitter_max_ns: spec.faults.jitter_max.as_nanos(),
            partitions: spec.faults.partitions.len(),
            crashes: spec.failures.crashes.len(),
            disk_fault_nodes: spec.failures.disk_faults.len(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CrashPlan;

    fn tiny_spec(protocol: Protocol) -> ClusterSpec {
        ClusterSpec::new(3, 12)
            .with_page_size(256)
            .with_protocol(protocol)
    }

    fn counter_program(dsm: &mut Dsm) -> u64 {
        let arr = dsm.alloc::<u64>(8);
        for round in 0..4 {
            if dsm.me() == round % dsm.nodes() {
                let v = dsm.read(&arr, 0);
                dsm.write(&arr, 0, v + 1);
            }
            dsm.barrier();
        }
        dsm.read(&arr, 0)
    }

    #[test]
    fn all_protocols_agree_on_results() {
        for p in [
            Protocol::None,
            Protocol::Ml,
            Protocol::Ccl,
            Protocol::CclNoOverlap,
        ] {
            let out = run_program(tiny_spec(p), counter_program);
            assert!(
                out.nodes.iter().all(|n| n.result == 4),
                "protocol {p:?} broke the program"
            );
        }
    }

    #[test]
    fn logging_protocols_actually_log() {
        let none = run_program(tiny_spec(Protocol::None), counter_program);
        let ml = run_program(tiny_spec(Protocol::Ml), counter_program);
        let ccl = run_program(tiny_spec(Protocol::Ccl), counter_program);
        assert_eq!(none.total_log_bytes(), 0);
        assert!(ml.total_log_bytes() > 0);
        assert!(ccl.total_log_bytes() > 0);
        assert!(
            ccl.total_log_bytes() < ml.total_log_bytes(),
            "CCL log ({}) must be smaller than ML log ({})",
            ccl.total_log_bytes(),
            ml.total_log_bytes()
        );
    }

    #[test]
    fn crash_recovery_preserves_results_ccl() {
        let spec = tiny_spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 2));
        let out = run_program(spec, counter_program);
        assert!(
            out.nodes.iter().all(|n| n.result == 4),
            "{:?}",
            out.nodes.iter().map(|n| n.result).collect::<Vec<_>>()
        );
        assert!(out.recovery_time().is_some());
    }

    #[test]
    fn crash_recovery_preserves_results_ml() {
        let spec = tiny_spec(Protocol::Ml).with_crash(CrashPlan::new(1, 2));
        let out = run_program(spec, counter_program);
        assert!(out.nodes.iter().all(|n| n.result == 4));
        assert!(out.recovery_time().is_some());
    }

    /// The accounting invariant behind the phase breakdown: every clock
    /// advance in the engine is charged to exactly one category, so
    /// compute + wait + disk + hidden equals the node's finish time —
    /// under every protocol, crash or not.
    #[test]
    fn phase_breakdown_sums_to_finish_time() {
        let mut specs = vec![
            tiny_spec(Protocol::None),
            tiny_spec(Protocol::Ml),
            tiny_spec(Protocol::Ccl),
            tiny_spec(Protocol::CclNoOverlap),
            tiny_spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 2)),
            tiny_spec(Protocol::Ml).with_crash(CrashPlan::new(1, 2)),
        ];
        for spec in specs.drain(..) {
            let label = format!(
                "{:?} crash={}",
                spec.protocol,
                !spec.failures.crashes.is_empty()
            );
            let out = run_program(spec, counter_program);
            for n in &out.nodes {
                assert_eq!(
                    n.phases.total().as_nanos(),
                    n.finish.as_nanos(),
                    "node {} phase sum deviates from finish ({label}): {:?}",
                    n.node,
                    n.phases
                );
            }
        }
    }

    /// Telemetry contract: each node's trace is nondecreasing in
    /// virtual time and tagged with the emitting node.
    #[test]
    fn trace_events_are_time_ordered_per_node() {
        let spec = tiny_spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 2));
        let out = run_program(spec, counter_program);
        let mut total = 0;
        for n in &out.nodes {
            let mut last = simnet::SimTime::ZERO;
            for ev in &n.trace {
                assert_eq!(ev.node, n.node, "event from a foreign node in the stream");
                assert!(
                    ev.at >= last,
                    "node {} trace goes backwards: {:?} after {:?}",
                    n.node,
                    ev,
                    last
                );
                last = ev.at;
            }
            total += n.trace.len();
        }
        assert!(total > 0, "a CCL crash run must emit telemetry");
    }
}
