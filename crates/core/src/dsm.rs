//! The application-facing DSM handle.

use std::marker::PhantomData;
use std::panic::panic_any;

use hlrc::HlrcNode;
use pagemem::Access;
use simnet::{NodeId, SimDuration};

use crate::shared::{ArrayHandle, SharedVal, ELEM_BYTES};
use crate::spec::CrashPlan;

/// Panic payload used to unwind out of the application at the injected
/// crash point (caught by the program runner).
pub(crate) struct CrashToken;

/// One node's view of the distributed shared memory: typed array access,
/// synchronization, allocation, checkpointing, and (for experiments)
/// crash injection.
pub struct Dsm {
    pub(crate) node: HlrcNode,
    alloc_cursor: usize,
    /// Crash events scheduled for this node, in schedule order.
    crashes: Vec<CrashPlan>,
    /// Which of `crashes` have already fired (each fires once).
    fired: Vec<bool>,
    /// Detection delay of the crash currently unwinding, consumed by
    /// [`Dsm::handle_crash`].
    pending_detection: SimDuration,
    barriers_done: u64,
    restored: Option<Vec<u8>>,
    /// Coordinated-checkpoint cadence (every `n` barriers), if any.
    checkpoint_every: Option<u64>,
    /// Application blob the next cadence checkpoint will save, set via
    /// [`Dsm::set_checkpoint_state`].
    ckpt_state: Vec<u8>,
}

impl Dsm {
    pub(crate) fn new(
        node: HlrcNode,
        crashes: Vec<CrashPlan>,
        checkpoint_every: Option<u64>,
    ) -> Dsm {
        let fired = vec![false; crashes.len()];
        Dsm {
            node,
            alloc_cursor: 0,
            crashes,
            fired,
            pending_detection: SimDuration::ZERO,
            barriers_done: 0,
            restored: None,
            checkpoint_every,
            ckpt_state: Vec::new(),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.node.inner.me()
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.node.inner.cfg.n_nodes
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.node.inner.cfg.layout.page_size()
    }

    // ------------------------------------------------------------
    // Allocation (run identically on every node, before first use)
    // ------------------------------------------------------------

    /// Allocate a page-aligned shared array of `len` elements with the
    /// cluster's default home assignment.
    pub fn alloc<T: SharedVal>(&mut self, len: usize) -> ArrayHandle<T> {
        self.alloc_inner(len, None)
    }

    /// Allocate with the array's pages block-distributed across nodes —
    /// node `k` homes the `k`-th contiguous chunk, matching how the
    /// paper's applications partition their grids.
    pub fn alloc_blocked<T: SharedVal>(&mut self, len: usize) -> ArrayHandle<T> {
        self.alloc_inner(len, Some(AllocHomes::Blocked))
    }

    /// Allocate with every page homed at one node (private/owner data).
    pub fn alloc_at<T: SharedVal>(&mut self, len: usize, home: NodeId) -> ArrayHandle<T> {
        self.alloc_inner(len, Some(AllocHomes::Fixed(home)))
    }

    fn alloc_inner<T: SharedVal>(
        &mut self,
        len: usize,
        homes: Option<AllocHomes>,
    ) -> ArrayHandle<T> {
        let page_size = self.page_size();
        let bytes = len * ELEM_BYTES;
        let base = self.alloc_cursor;
        debug_assert_eq!(base % page_size, 0);
        let pages = bytes.div_ceil(page_size).max(1);
        self.alloc_cursor = base + pages * page_size;
        let first_page = (base / page_size) as u32;
        let total = self.node.inner.pages.len() as u32;
        assert!(
            first_page + pages as u32 <= total,
            "shared space exhausted: need {} pages, have {}",
            first_page + pages as u32,
            total
        );
        match homes {
            None => {}
            Some(AllocHomes::Fixed(home)) => {
                for p in 0..pages as u32 {
                    self.node.inner.pages.set_home(first_page + p, home);
                }
            }
            Some(AllocHomes::Blocked) => {
                let n = self.nodes();
                let per = pages.div_ceil(n);
                for p in 0..pages {
                    let home = (p / per).min(n - 1);
                    self.node.inner.pages.set_home(first_page + p as u32, home);
                }
            }
        }
        ArrayHandle {
            base,
            len,
            _t: PhantomData,
        }
    }

    // ------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------

    /// Read element `i`.
    #[inline]
    pub fn read<T: SharedVal>(&mut self, h: &ArrayHandle<T>, i: usize) -> T {
        T::from_bits(self.node.read_u64(h.addr(i)))
    }

    /// Write element `i`.
    #[inline]
    pub fn write<T: SharedVal>(&mut self, h: &ArrayHandle<T>, i: usize, v: T) {
        self.node.write_u64(h.addr(i), v.to_bits());
    }

    /// Read `out.len()` elements starting at `start` (page-batched).
    pub fn read_slice<T: SharedVal>(&mut self, h: &ArrayHandle<T>, start: usize, out: &mut [T]) {
        let layout = self.node.inner.cfg.layout;
        let mut i = 0;
        while i < out.len() {
            let addr = h.addr(start + i);
            let page = layout.page_of(addr);
            let off = layout.offset_of(addr);
            let in_page = ((layout.page_size() - off) / ELEM_BYTES).min(out.len() - i);
            self.node.ensure_access(page, Access::Read);
            let frame = self.node.frame(page);
            for k in 0..in_page {
                out[i + k] = T::from_bits(frame.read_u64(off + k * ELEM_BYTES));
            }
            i += in_page;
        }
    }

    /// Write `src.len()` elements starting at `start` (page-batched).
    pub fn write_slice<T: SharedVal>(&mut self, h: &ArrayHandle<T>, start: usize, src: &[T]) {
        let layout = self.node.inner.cfg.layout;
        let mut i = 0;
        while i < src.len() {
            let addr = h.addr(start + i);
            let page = layout.page_of(addr);
            let off = layout.offset_of(addr);
            let in_page = ((layout.page_size() - off) / ELEM_BYTES).min(src.len() - i);
            self.node.ensure_access(page, Access::Write);
            let frame = self.node.frame_mut(page);
            for k in 0..in_page {
                frame.write_u64(off + k * ELEM_BYTES, src[i + k].to_bits());
            }
            i += in_page;
        }
    }

    // ------------------------------------------------------------
    // Synchronization and time
    // ------------------------------------------------------------

    /// Acquire a global lock.
    pub fn acquire(&mut self, lock: u32) {
        self.node.acquire(lock);
    }

    /// Release a global lock.
    pub fn release(&mut self, lock: u32) {
        self.node.release(lock);
    }

    /// Global barrier. Injected crashes fire immediately after their
    /// configured barrier completes. `barriers_done` counts within the
    /// current program incarnation, so a recovered node counts from
    /// zero again and a later crash event of the same node fires at its
    /// own barrier count of the re-run.
    pub fn barrier(&mut self) {
        // Checkpoint barriers double as migration windows: proposals
        // ride the barrier traffic and the migrated mapping is captured
        // by the checkpoint taken right below, keeping migration and
        // checkpoint atomic with respect to crashes (which fire last).
        if let Some(n) = self.checkpoint_every {
            if (self.barriers_done + 1).is_multiple_of(n) && !self.node.ft.in_recovery() {
                self.node.inner.migration_window = true;
            }
        }
        self.node.barrier();
        self.barriers_done += 1;
        // Cadence checkpoint: every node reaches this barrier, so the
        // cut is coordinated. Taken before any crash scheduled at the
        // same barrier fires (the checkpoint completes, then the node
        // dies), and suppressed during log replay — truncating the log
        // being replayed would destroy it.
        if let Some(n) = self.checkpoint_every {
            if self.barriers_done.is_multiple_of(n) && !self.node.ft.in_recovery() {
                let state = std::mem::take(&mut self.ckpt_state);
                self.checkpoint(&state);
                self.ckpt_state = state;
            }
        }
        let me = self.me();
        for (i, plan) in self.crashes.iter().enumerate() {
            if !self.fired[i] && plan.node == me && self.barriers_done == plan.after_barriers {
                self.fired[i] = true;
                self.pending_detection = plan.detection_delay;
                if let Some(tear) = plan.torn_tail {
                    // The crash lands mid-flush: damage the last
                    // flushed log batch before the unwind, so recovery
                    // sees a torn tail instead of a clean log.
                    self.node
                        .inner
                        .ctx
                        .disk
                        .tear_last_flush(tear.seed, tear.garble);
                }
                panic_any(CrashToken);
            }
        }
    }

    /// Charge application compute (arithmetic operations).
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.node.inner.ctx.charge_flops(n);
    }

    /// Current virtual time at this node.
    pub fn now(&self) -> simnet::SimTime {
        self.node.inner.ctx.now()
    }

    // ------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------

    /// Take a coordinated checkpoint (call right after a barrier on
    /// every node, with no locks held). `app_state` is an opaque blob
    /// returned by [`Dsm::restored_state`] after a crash.
    pub fn checkpoint(&mut self, app_state: &[u8]) {
        let d = ftlog::take_checkpoint(&mut self.node.inner, app_state);
        self.node.inner.ctx.charge_disk(d);
        self.node.ft.on_checkpoint(&mut self.node.inner);
    }

    /// The application blob saved by the last checkpoint, present only
    /// when this program invocation is a post-crash restart. Consume it
    /// at program start to fast-forward initialization.
    pub fn restored_state(&mut self) -> Option<Vec<u8>> {
        self.restored.take()
    }

    /// Set the application blob that cadence-driven checkpoints (see
    /// [`crate::ClusterSpec::with_checkpoint_cadence`]) will save.
    /// Update it whenever the program's restart point advances; a
    /// program that never calls this checkpoints an empty blob.
    pub fn set_checkpoint_state(&mut self, blob: &[u8]) {
        self.ckpt_state.clear();
        self.ckpt_state.extend_from_slice(blob);
    }

    // ------------------------------------------------------------
    // Runner plumbing
    // ------------------------------------------------------------

    pub(crate) fn handle_crash(&mut self) {
        let crash_instant = self.node.inner.ctx.now();
        let delay = std::mem::replace(&mut self.pending_detection, SimDuration::ZERO);
        // The cluster sits in the crash-detection timeout: blocked, not
        // computing.
        self.node.inner.ctx.charge_wait(delay);
        self.node.crash_and_reset();
        // The crash happened before the detection delay; recovery time
        // (exit - crashed_at) therefore includes detection.
        self.node.inner.ctx.crashed_at = Some(crash_instant);
        self.restored = self.node.ft.restored_app_state();
        self.alloc_cursor = 0;
        self.barriers_done = 0;
        // The re-run sets its own restart blob; don't let the dead
        // incarnation's blob leak into the next cadence checkpoint.
        self.ckpt_state.clear();
    }
}

enum AllocHomes {
    Fixed(NodeId),
    Blocked,
}
