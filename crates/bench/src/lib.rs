//! # ccl-bench — experiment harness
//!
//! Shared plumbing for the bench targets that regenerate every table and
//! figure of the paper's evaluation section (run `cargo bench`):
//!
//! * `table1` — application characteristics,
//! * `table2` — overhead details per logging protocol,
//! * `fig4`   — normalized failure-free execution time,
//! * `fig5`   — normalized crash-recovery time,
//! * `ablation` — design-choice ablations (overlap, prefetch, page size),
//! * `micro`  — Criterion micro-benchmarks of the substrate operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, CrashPlan, Protocol, RunOutput};

/// The paper's cluster size.
pub const NODES: usize = 8;

/// Build the paper-scale spec for `app` under `protocol`.
pub fn paper_spec(app: App, protocol: Protocol) -> ClusterSpec {
    ClusterSpec::new(NODES, app.paper_pages(4096) + 8).with_protocol(protocol)
}

/// Run the paper-scale workload failure-free.
pub fn run_paper(app: App, protocol: Protocol) -> RunOutput<u64> {
    run_program(paper_spec(app, protocol), move |dsm| app.run_paper(dsm))
}

/// Run the paper-scale workload with a crash of node 1 at roughly
/// `fraction` of its barriers (e.g. 0.75 for the late-crash scenario).
pub fn run_paper_with_crash(app: App, protocol: Protocol, fraction: f64) -> RunOutput<u64> {
    let probe = run_paper(app, Protocol::None);
    let barriers = probe.nodes[1].stats.barriers;
    let at = ((barriers as f64 * fraction) as u64).clamp(1, barriers.saturating_sub(1).max(1));
    let spec = paper_spec(app, protocol).with_crash(CrashPlan::new(1, at));
    run_program(spec, move |dsm| app.run_paper(dsm))
}

/// Median recovery time (seconds) over `trials` crash runs: recovery
/// timing depends on how far the survivors happened to run ahead before
/// blocking, which varies between (real-time) executions.
pub fn median_recovery_secs(app: App, protocol: Protocol, fraction: f64, trials: usize) -> f64 {
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            run_paper_with_crash(app, protocol, fraction)
                .recovery_time()
                .expect("recovery completed")
                .as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Seconds with three decimals.
pub fn secs(t: ccl_core::SimTime) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Kilobytes with one decimal.
pub fn kb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

/// Megabytes with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Render one horizontal bar for the normalized-time figures.
pub fn bar(percent: f64) -> String {
    let ticks = (percent / 2.0).round().max(0.0) as usize;
    "#".repeat(ticks.min(80))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(2048.0), "2.0");
        assert_eq!(mb(3 * 1024 * 1024), "3.00");
        assert_eq!(bar(100.0).len(), 50);
        assert_eq!(bar(0.0), "");
    }
}
