//! Hot-path micro-benchmarks and wall-clock app baseline.
//!
//! Unlike the paper-replication benches (which report *virtual* time),
//! this target measures the **real CPU cost** of the simulator's
//! data-movement hot path — diff create/apply, codec roundtrip,
//! envelope fan-out — plus the wall-clock time of the four applications
//! under each logging protocol. It emits machine-readable JSON
//! (`BENCH_hotpath.json` at the repo root via `scripts/bench.sh`) so
//! later PRs have a perf trajectory to beat.
//!
//! Sizing knobs (env):
//! * `HOTPATH_SMOKE=1` — tiny app instances and few iterations, for the
//!   verify-gate smoke stage;
//! * `HOTPATH_JSON=<path>` — where to write the JSON (default stdout
//!   marker line only).

use std::sync::Arc;
use std::time::Instant;

use ccl_apps::App;
use ccl_bench::{paper_spec, NODES};
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};
use hlrc::{Msg, WriteNotice};
use pagemem::{BufferPool, Decode, Encode, IntervalId, PageDiff, PageFrame, Twin, VClock};
use simnet::WireSized;

/// One measured micro-kernel: name + throughput.
struct Micro {
    name: &'static str,
    mb_per_s: f64,
    ns_per_op: f64,
}

fn smoke() -> bool {
    std::env::var("HOTPATH_SMOKE").is_ok_and(|v| v != "0")
}

#[inline]
fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn base_page(size: usize, seed: u64) -> (PageFrame, u64) {
    let mut base = PageFrame::zeroed(size);
    let mut s = seed;
    for off in (0..size).step_by(8) {
        s = lcg(s);
        base.write_u64(off, s);
    }
    (base, s)
}

/// Deterministic page pair with ~`density_pct`% of 64-byte blocks
/// rewritten — the shape application writes actually take (array rows,
/// structs): contiguous dirty regions, so the diff has few, long runs.
fn page_pair_blocks(size: usize, density_pct: usize, seed: u64) -> (PageFrame, PageFrame) {
    let (base, mut s) = base_page(size, seed);
    let mut modified = base.clone();
    for block in (0..size).step_by(64) {
        s = lcg(s);
        if (s >> 33) % 100 < density_pct as u64 {
            for off in (block..(block + 64).min(size)).step_by(4) {
                s = lcg(s);
                modified.write_u32(off, (s >> 7) as u32);
            }
        }
    }
    (base, modified)
}

/// Deterministic page pair with ~`density_pct`% of single *words*
/// modified in isolation — the fragmentation worst case: every changed
/// word is its own run, so run management (not scanning) dominates.
fn page_pair_scatter(size: usize, density_pct: usize, seed: u64) -> (PageFrame, PageFrame) {
    let (base, mut s) = base_page(size, seed);
    let mut modified = base.clone();
    for off in (0..size).step_by(4) {
        s = lcg(s);
        if (s >> 33) % 100 < density_pct as u64 {
            modified.write_u32(off, (s >> 7) as u32);
        }
    }
    (base, modified)
}

/// How many times each micro measurement is repeated; the fastest
/// repetition is reported. Best-of-N is the standard defense against a
/// noisy/shared machine: competing load can only ever slow a rep down,
/// so the minimum is the closest observation of the true cost.
fn reps() -> usize {
    if smoke() {
        3
    } else {
        9
    }
}

/// Run `body` `reps()` times and return the fastest wall time (secs).
fn timed_best<F: FnMut()>(mut body: F) -> f64 {
    body(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps() {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_diff_create<F: FnMut(&Twin, &PageFrame) -> usize>(
    iters: usize,
    pairs: &[(Twin, PageFrame)],
    mut f: F,
) -> (f64, f64) {
    let mut runs = 0usize;
    let dt = timed_best(|| {
        for _ in 0..iters {
            for (t, m) in pairs {
                runs += std::hint::black_box(f(t, m));
            }
        }
    });
    std::hint::black_box(runs);
    let bytes: usize = pairs.iter().map(|(_, m)| m.len()).sum::<usize>() * iters;
    let ops = (iters * pairs.len()) as f64;
    (bytes as f64 / dt / 1e6, dt * 1e9 / ops)
}

fn micro_suite() -> Vec<Micro> {
    let iters = if smoke() { 20 } else { 2000 };
    let page = 4096;
    // A spread of change densities over block-structured writes —
    // silent (0%), sparse, half, dense — plus one word-scatter page as
    // the run-fragmentation worst case.
    let pairs: Vec<(Twin, PageFrame)> = [0usize, 3, 25, 60, 95]
        .iter()
        .enumerate()
        .map(|(i, &d)| page_pair_blocks(page, d, 0x9E3779B97F4A7C15 ^ (i as u64) << 17))
        .chain(std::iter::once(page_pair_scatter(
            page,
            10,
            0xD1B54A32D192ED03,
        )))
        .map(|(b, m)| (Twin::of(&b), m))
        .collect();

    let mut out = Vec::new();

    let (mbs, nsop) = bench_diff_create(iters, &pairs, |t, m| PageDiff::create(0, t, m).runs.len());
    out.push(Micro {
        name: "diff_create",
        mb_per_s: mbs,
        ns_per_op: nsop,
    });

    // The retained naive kernel, measured live on the same inputs: the
    // chunked/naive ratio in the emitted JSON is the speedup evidence,
    // reproducible on any machine rather than only against the static
    // `pre_pr` block below.
    let (mbs, nsop) = bench_diff_create(iters, &pairs, |t, m| {
        PageDiff::create_reference(0, t, m).runs.len()
    });
    out.push(Micro {
        name: "diff_create_reference",
        mb_per_s: mbs,
        ns_per_op: nsop,
    });

    // Pooled entry point with a warm free list (the steady state inside
    // `end_interval`: every interval's run buffers go back to the pool
    // once the flush is acked).
    {
        let mut pool = BufferPool::new(page);
        let (mbs, nsop) = bench_diff_create(iters, &pairs, move |t, m| {
            let d = PageDiff::create_in(0, t, m, &mut pool);
            let n = d.runs.len();
            pool.recycle_diff(d);
            n
        });
        out.push(Micro {
            name: "diff_create_pooled",
            mb_per_s: mbs,
            ns_per_op: nsop,
        });
    }

    // Apply: rebuild a frame from the diffs of the densest pair.
    let diffs: Vec<PageDiff> = pairs
        .iter()
        .map(|(t, m)| PageDiff::create(0, t, m))
        .collect();
    let mut target = pairs[0].0.frame().clone();
    let payload: usize = diffs.iter().map(|d| d.payload_bytes()).sum();
    let dt = timed_best(|| {
        for _ in 0..iters * 4 {
            for d in &diffs {
                d.apply(&mut target);
            }
        }
        std::hint::black_box(&target);
    });
    out.push(Micro {
        name: "diff_apply",
        mb_per_s: (payload * iters * 4) as f64 / dt / 1e6,
        ns_per_op: dt * 1e9 / (iters * 4 * diffs.len()) as f64,
    });

    // Codec roundtrip: encode + decode the diffs.
    let wire: usize = diffs.iter().map(|d| d.encoded_size()).sum();
    let dt = timed_best(|| {
        for _ in 0..iters * 4 {
            for d in &diffs {
                let buf = d.encode_to_vec();
                let back = PageDiff::decode_from_slice(&buf).expect("roundtrip");
                std::hint::black_box(back);
            }
        }
    });
    out.push(Micro {
        name: "codec_roundtrip",
        mb_per_s: (wire * iters * 4) as f64 / dt / 1e6,
        ns_per_op: dt * 1e9 / (iters * 4 * diffs.len()) as f64,
    });

    // Envelope fan-out: what the barrier manager does at every release —
    // clone one page-sized payload message to N-1 destinations and size
    // each clone for the wire. Shared (`Arc`) payloads make the clone a
    // refcount bump and direct `encoded_size` makes the sizing pure
    // arithmetic; throughput counts the *logical* bytes fanned out.
    {
        let mut vc = VClock::new(NODES);
        let notices: Arc<[WriteNotice]> = (0..256u32)
            .map(|i| {
                let iv = IntervalId {
                    node: i % NODES as u32,
                    seq: i,
                };
                vc.observe(iv);
                WriteNotice {
                    page: i,
                    interval: iv,
                }
            })
            .collect::<Vec<_>>()
            .into();
        let release = Msg::BarrierRelease {
            epoch: 7,
            vc: Arc::new(vc.clone()),
            notices: Arc::clone(&notices),
            migrations: Vec::new().into(),
        };
        let reply = Msg::PageReply {
            page: 3,
            data: vec![0xA5u8; page].into(),
            version: vc,
        };
        let fan = NODES - 1;
        let per_round = (release.wire_size() + reply.wire_size()) * fan;
        let dt = timed_best(|| {
            let mut logical = 0usize;
            for _ in 0..iters * 64 {
                for _ in 0..fan {
                    let r = std::hint::black_box(release.clone());
                    logical += r.wire_size();
                    let p = std::hint::black_box(reply.clone());
                    logical += p.wire_size();
                }
            }
            std::hint::black_box(logical);
        });
        let ops = (iters * 64 * fan * 2) as f64;
        out.push(Micro {
            name: "envelope_fanout",
            mb_per_s: (per_round * iters * 64) as f64 / dt / 1e6,
            ns_per_op: dt * 1e9 / ops,
        });
    }

    out
}

/// The pre-PR numbers for the same suite, captured on this machine at
/// the pre-PR commit (952ad7c) via a worktree build running byte-for-
/// byte the same workloads, iteration counts, and best-of-N policy as
/// this file. All six micro kernels exist at that commit, so every row
/// is a direct before/after pair. Water's `exec_time_ns`/`log_bytes`
/// here differ from the post-PR goldens — and from earlier captures of
/// themselves — because pre-PR lock arrival order followed physical
/// thread scheduling; that nondeterminism is exactly what the
/// conservative virtual-time scheduler (DESIGN.md §12) removes. The
/// other three apps' virtual numbers match post-PR bit for bit:
/// evidence the scheduler pins delivery *order* without changing
/// virtual-time semantics.
const PRE_PR_JSON: &str = "{\"micro\":{\
    \"diff_create\":{\"mb_per_s\":4464.3,\"ns_per_op\":917.5},\
    \"diff_create_reference\":{\"mb_per_s\":3044.7,\"ns_per_op\":1345.3},\
    \"diff_create_pooled\":{\"mb_per_s\":7380.1,\"ns_per_op\":555.0},\
    \"diff_apply\":{\"mb_per_s\":28810.4,\"ns_per_op\":45.3},\
    \"codec_roundtrip\":{\"mb_per_s\":1995.8,\"ns_per_op\":734.2},\
    \"envelope_fanout\":{\"mb_per_s\":103082.8,\"ns_per_op\":35.5}},\
    \"apps\":[\
    {\"app\":\"3D-FFT\",\"protocol\":\"none\",\"wall_ms\":268.4,\"exec_time_ns\":1263526672,\"log_bytes\":0},\
    {\"app\":\"3D-FFT\",\"protocol\":\"ml\",\"wall_ms\":315.0,\"exec_time_ns\":1563877292,\"log_bytes\":41586608},\
    {\"app\":\"3D-FFT\",\"protocol\":\"ccl\",\"wall_ms\":306.7,\"exec_time_ns\":1296801220,\"log_bytes\":694320},\
    {\"app\":\"MG\",\"protocol\":\"none\",\"wall_ms\":458.6,\"exec_time_ns\":416847992,\"log_bytes\":0},\
    {\"app\":\"MG\",\"protocol\":\"ml\",\"wall_ms\":460.9,\"exec_time_ns\":469015462,\"log_bytes\":8222396},\
    {\"app\":\"MG\",\"protocol\":\"ccl\",\"wall_ms\":550.4,\"exec_time_ns\":426190070,\"log_bytes\":604744},\
    {\"app\":\"Shallow\",\"protocol\":\"none\",\"wall_ms\":884.0,\"exec_time_ns\":688383864,\"log_bytes\":0},\
    {\"app\":\"Shallow\",\"protocol\":\"ml\",\"wall_ms\":869.4,\"exec_time_ns\":749263574,\"log_bytes\":10745640},\
    {\"app\":\"Shallow\",\"protocol\":\"ccl\",\"wall_ms\":1026.7,\"exec_time_ns\":698320638,\"log_bytes\":1755240},\
    {\"app\":\"Water\",\"protocol\":\"none\",\"wall_ms\":22.5,\"exec_time_ns\":1629788532,\"log_bytes\":0},\
    {\"app\":\"Water\",\"protocol\":\"ml\",\"wall_ms\":22.1,\"exec_time_ns\":1638640100,\"log_bytes\":1962924},\
    {\"app\":\"Water\",\"protocol\":\"ccl\",\"wall_ms\":22.0,\"exec_time_ns\":1626104646,\"log_bytes\":399612}]}";

/// Wall-clock one app x protocol run; returns (wall_ms, exec_ns, log_bytes).
/// Best-of-3 in full mode (single run in smoke): the virtual outputs are
/// deterministic, so repetition only firms up the wall-clock number.
fn time_app(app: App, protocol: Protocol) -> (f64, u64, u64) {
    let runs = if smoke() { 1 } else { 3 };
    let mut best = f64::INFINITY;
    let mut virt = (0u64, 0u64);
    for _ in 0..runs {
        let t0 = Instant::now();
        let out: RunOutput<u64> = if smoke() {
            let spec = ClusterSpec::new(4, app.tiny_pages(256) + 4)
                .with_page_size(256)
                .with_protocol(protocol);
            run_program(spec, move |dsm| app.run_tiny(dsm))
        } else {
            run_program(paper_spec(app, protocol), move |dsm| app.run_paper(dsm))
        };
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        virt = (out.exec_time().as_nanos(), out.total_log_bytes());
    }
    (best, virt.0, virt.1)
}

fn main() {
    let mut s = String::new();
    s.push_str("{\"bench\":\"hotpath\",");
    s.push_str(&format!(
        "\"smoke\":{},\"nodes\":{NODES},\"micro\":{{",
        smoke()
    ));
    for (i, m) in micro_suite().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\"{}\":{{\"mb_per_s\":{:.1},\"ns_per_op\":{:.1}}}",
            m.name, m.mb_per_s, m.ns_per_op
        ));
    }
    s.push_str("},\"apps\":[");
    let protocols = [
        (Protocol::None, "none"),
        (Protocol::Ml, "ml"),
        (Protocol::Ccl, "ccl"),
    ];
    let mut first = true;
    for app in App::ALL {
        for (p, pname) in protocols {
            let (wall, exec, log) = time_app(app, p);
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"app\":\"{}\",\"protocol\":\"{pname}\",\"wall_ms\":{wall:.1},\
                 \"exec_time_ns\":{exec},\"log_bytes\":{log}}}",
                app.name()
            ));
        }
    }
    s.push_str("],\"pre_pr\":");
    s.push_str(PRE_PR_JSON);
    s.push('}');
    println!("{s}");
    if let Ok(path) = std::env::var("HOTPATH_JSON") {
        std::fs::write(&path, format!("{s}\n")).expect("write HOTPATH_JSON");
        eprintln!("wrote {path}");
    }
}
