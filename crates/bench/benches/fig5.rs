//! Figure 5 — Impacts of Logging Protocols on Crash Recovery Time.
//!
//! Regenerates the paper's Figure 5: the time for the failed node to
//! recover, normalized to re-execution (= 100). Re-execution restarts
//! the whole program from the initial state, so its "recovery time" is
//! the full failure-free execution time. ML-recovery replays logged
//! messages from disk; our (CCL) recovery replays the coherence-centric
//! log with prefetching. The paper reports savings of 43–66 % for
//! ML-recovery and 55–84 % for CCL recovery.
//!
//! Run with: `cargo bench -p ccl-bench --bench fig5`

use ccl_apps::App;
use ccl_bench::{bar, median_recovery_secs, run_paper, NODES};
use ccl_core::Protocol;

/// Crash node 1 at three quarters of its barriers (a late crash, so the
/// replayed prefix dominates — the paper's scenario).
const CRASH_FRACTION: f64 = 0.75;

fn main() {
    println!();
    println!("Figure 5. Impacts of Logging Protocols on Crash Recovery Time");
    println!("(normalized to re-execution = 100; crash of node 1 at ~75% of its barriers; {NODES} nodes)");
    println!("{:-<72}", "");
    for app in App::ALL {
        // Re-execution baseline: the failure-free run time scaled to the
        // crash point (the failed fraction must be redone in full, with
        // all synchronization and communication).
        let clean = run_paper(app, Protocol::None);
        let reexec = clean.exec_time().as_secs_f64() * CRASH_FRACTION;

        let t_ml = median_recovery_secs(app, Protocol::Ml, CRASH_FRACTION, 3);
        let t_ccl = median_recovery_secs(app, Protocol::Ccl, CRASH_FRACTION, 3);

        println!("{}:", app.name());
        for (label, t) in [
            ("re-execution", reexec),
            ("ml-recovery", t_ml),
            ("our (CCL) recovery", t_ccl),
        ] {
            let norm = 100.0 * t / reexec;
            println!("  {:<26} {:>6.1}  |{}", label, norm, bar(norm));
        }
        println!();
    }
    println!("{:-<72}", "");
    println!("(paper: ML-recovery saves 43-66%, CCL recovery saves 55-84% vs re-execution)");
    println!();
}
