//! Fetch-hiding benchmark: what batching + prefetch + adaptive homes
//! actually buy (DESIGN.md §15).
//!
//! Runs the paper-scale 3D-FFT — the most remote-data-bound of the four
//! applications (~57 % of its blame path is page-fetch wait) — once
//! with the fetch-hiding machinery ablated (`prefetch_depth 0`, no
//! migration: the pre-PR stop-and-wait protocol) and once with the
//! defaults, under each Table 2 protocol. ML's *default* resolves to
//! depth 0 (see `ClusterSpec::prefetch_depth`): logging the contents
//! of speculative copies costs it ~40 % at this scale, far more than
//! the hidden latency repays, so its on row equals its off row by
//! design. Reports virtual `exec_ns` (the number
//! the paper's tables are built from), host wall clock, and the
//! prefetch counters, and emits machine-readable JSON
//! (`BENCH_fetch.json` at the repo root via `scripts/bench.sh`) with a
//! static same-machine `pre_pr` block. The digests of the two runs must
//! agree — the machinery is a latency optimization, never a semantic
//! one — and `scripts/bench.sh --compare` gates both the wall cells
//! (>25 % regression) and the virtual-time win itself (on-exec must
//! stay ≥10 % below off-exec for None and CCL).
//!
//! Sizing knobs (env):
//! * `FETCH_SMOKE=1` — tiny sizes for the verify-gate smoke stage;
//! * `FETCH_JSON=<path>` — where to write the JSON.

use std::time::Instant;

use ccl_apps::App;
use ccl_bench::paper_spec;
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};

fn smoke() -> bool {
    std::env::var("FETCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Ablate a spec back to the pre-batching protocol.
fn ablated(spec: ClusterSpec) -> ClusterSpec {
    spec.with_prefetch_depth(0).with_adaptive_migration(false)
}

struct Cell {
    wall_ms: f64,
    exec_ns: u64,
    digest: u64,
    issued: u64,
    hits: u64,
    wasted: u64,
    moves: u64,
}

/// Best-of-N wall time plus the (deterministic) virtual-time outputs.
fn cell(app: App, spec: &ClusterSpec, reps: usize) -> Cell {
    let run = || -> RunOutput<u64> {
        if smoke() {
            run_program(spec.clone(), move |dsm| app.run_tiny(dsm))
        } else {
            run_program(spec.clone(), move |dsm| app.run_paper(dsm))
        }
    };
    let mut out = run(); // warmup; virtual outputs are rep-invariant
    let mut wall = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = run();
        wall = wall.min(t0.elapsed().as_secs_f64());
    }
    let t = out.total_stats();
    Cell {
        wall_ms: wall * 1e3,
        exec_ns: out.exec_time().as_nanos(),
        digest: out.nodes[0].result,
        issued: t.prefetch_issued,
        hits: t.prefetch_hits,
        wasted: t.prefetch_wasted,
        moves: t.home_migrations,
    }
}

/// The reference suite captured on this machine when the fetch-hiding
/// machinery landed, for `scripts/bench.sh --compare`'s host-time gate.
/// The `off` rows ran the ablated configuration — the pre-PR
/// stop-and-wait protocol, whose `exec_ns` values here are the pre-PR
/// goldens (the ablated path today drifts ~12 µs above them because the
/// barrier envelopes grew two length fields for migration proposals).
/// The `on` rows ran the shipped defaults: prefetch simulates tens of
/// thousands of extra envelopes, so its host wall time is *higher* than
/// off even though virtual time drops — the gate pins both against
/// future regressions.
const PRE_PR_JSON: &str = r#"{"bench":"fetch","smoke":false,"apps":[{"app":"3D-FFT","protocol":"none-off","wall_ms":190.0,"exec_ns":1263526672},{"app":"3D-FFT","protocol":"none-on","wall_ms":228.9,"exec_ns":1049035512},{"app":"3D-FFT","protocol":"ml-off","wall_ms":287.9,"exec_ns":1565217572},{"app":"3D-FFT","protocol":"ml-on","wall_ms":290.0,"exec_ns":1565224212},{"app":"3D-FFT","protocol":"ccl-off","wall_ms":172.5,"exec_ns":1296810940},{"app":"3D-FFT","protocol":"ccl-on","wall_ms":270.5,"exec_ns":1082319780}],"scale":[]}"#;

fn main() {
    let smoke = smoke();
    let app = App::Fft3d;
    let reps = if smoke { 1 } else { 2 };
    let protocols = [
        (Protocol::None, "none"),
        (Protocol::Ml, "ml"),
        (Protocol::Ccl, "ccl"),
    ];

    let spec_for = |p: Protocol| -> ClusterSpec {
        if smoke {
            ClusterSpec::new(4, app.tiny_pages(256) + 4)
                .with_page_size(256)
                .with_protocol(p)
        } else {
            paper_spec(app, p)
        }
    };

    let mut s = String::new();
    s.push_str(&format!("{{\"bench\":\"fetch\",\"smoke\":{smoke},"));
    s.push_str("\"apps\":[");
    let mut first = true;
    for (p, pname) in protocols {
        let off = cell(app, &ablated(spec_for(p)), reps);
        let on = cell(app, &spec_for(p), reps);
        assert_eq!(
            on.digest, off.digest,
            "{pname}: fetch hiding changed the application digest"
        );
        let win = 100.0 * (1.0 - on.exec_ns as f64 / off.exec_ns as f64);
        for (mode, c) in [("off", &off), ("on", &on)] {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"app\":\"{}\",\"protocol\":\"{pname}-{mode}\",\
                 \"wall_ms\":{:.1},\"exec_ns\":{},\"prefetch_issued\":{},\
                 \"prefetch_hits\":{},\"prefetch_wasted\":{},\
                 \"home_migrations\":{}}}",
                app.name(),
                c.wall_ms,
                c.exec_ns,
                c.issued,
                c.hits,
                c.wasted,
                c.moves,
            ));
        }
        eprintln!(
            "{} {pname}: exec {:.1} ms -> {:.1} ms ({win:+.1}% win), \
             prefetch {}/{} hit, {} wasted, {} home moves",
            app.name(),
            off.exec_ns as f64 / 1e6,
            on.exec_ns as f64 / 1e6,
            on.hits,
            on.issued,
            on.wasted,
            on.moves,
        );
    }
    s.push_str("],\"scale\":[],\"pre_pr\":");
    s.push_str(PRE_PR_JSON);
    s.push('}');
    println!("{s}");
    if let Ok(path) = std::env::var("FETCH_JSON") {
        std::fs::write(&path, format!("{s}\n")).expect("write FETCH_JSON");
        eprintln!("wrote {path}");
    }
}
