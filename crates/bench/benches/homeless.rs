//! Home-based vs. homeless LRC — the comparison motivating the paper's
//! §2 (and the subject of Cox et al., HPCA-5, cited there).
//!
//! The same barrier-synchronized stencil workload runs on both
//! protocols; the table reports the three structural advantages the
//! paper claims for the home node:
//!
//! 1. a remote copy is brought up to date with **one round trip** to the
//!    home (homeless LRC pays one round trip per concurrent writer);
//! 2. **no garbage collection / diff retention**: homeless writers keep
//!    every interval's diff forever (until a GC pass home-based DSM
//!    never needs);
//! 3. reads/writes at the home take no faults and make no diffs.
//!
//! Run with: `cargo bench -p ccl-bench --bench homeless`

use hlrc::{DsmConfig, HlrcNode, HomelessNode, NoLogging};
use simnet::{run_cluster, NodeStats, SimTime};

const NODES: usize = 8;
const CELLS: usize = 64 * 64; // 8 pages of 4 KB
/// A multi-writer summary region: every node writes its own slice of
/// these pages each round, and every node reads all of it next round —
/// the access pattern where the home's single-round-trip update shines
/// (homeless LRC must chase diffs from all eight writers).
const SUMMARY_BASE: usize = CELLS * 8;
const SUMMARY_CELLS: usize = 1024; // 2 pages, 128 cells per node
const ROUNDS: u64 = 20;

fn cfg() -> DsmConfig {
    DsmConfig::new(NODES, 12)
}

/// The workload: every node updates its own stripe, then reads the two
/// neighbouring stripes (periodic halo), each round.
fn stripe(me: usize) -> (usize, usize) {
    let per = CELLS / NODES;
    (me * per, (me + 1) * per)
}

trait Ops {
    fn read(&mut self, addr: usize) -> u64;
    fn write(&mut self, addr: usize, v: u64);
    fn barrier(&mut self);
    fn me(&self) -> usize;
    fn flops(&mut self, n: u64);
}

impl Ops for HlrcNode {
    fn read(&mut self, addr: usize) -> u64 {
        self.read_u64(addr)
    }
    fn write(&mut self, addr: usize, v: u64) {
        self.write_u64(addr, v)
    }
    fn barrier(&mut self) {
        HlrcNode::barrier(self)
    }
    fn me(&self) -> usize {
        self.inner.me()
    }
    fn flops(&mut self, n: u64) {
        self.inner.ctx.charge_flops(n)
    }
}

impl Ops for HomelessNode {
    fn read(&mut self, addr: usize) -> u64 {
        self.read_u64(addr)
    }
    fn write(&mut self, addr: usize, v: u64) {
        self.write_u64(addr, v)
    }
    fn barrier(&mut self) {
        HomelessNode::barrier(self)
    }
    fn me(&self) -> usize {
        HomelessNode::me(self)
    }
    fn flops(&mut self, n: u64) {
        self.charge_flops(n)
    }
}

fn workload<N: Ops>(node: &mut N) -> u64 {
    let me = node.me();
    let (lo, hi) = stripe(me);
    let mut acc = 0u64;
    for round in 1..=ROUNDS {
        for c in lo..hi {
            node.write(c * 8, round * 1_000 + c as u64);
        }
        node.flops((hi - lo) as u64 * 4);
        node.barrier();
        // halo reads into the neighbours
        let left = stripe((me + NODES - 1) % NODES).0;
        let right = stripe((me + 1) % NODES).0;
        acc = acc
            .wrapping_add(node.read(left * 8))
            .wrapping_add(node.read(right * 8));
        node.flops(8);
        // multi-writer summary region: own slice written...
        let per = SUMMARY_CELLS / NODES;
        for k in 0..per {
            node.write(SUMMARY_BASE + (me * per + k) * 8, round + k as u64);
        }
        node.barrier();
        // ...and the whole region read by everyone.
        for k in (0..SUMMARY_CELLS).step_by(16) {
            acc = acc.wrapping_add(node.read(SUMMARY_BASE + k * 8));
        }
        node.flops(SUMMARY_CELLS as u64 / 16);
        node.barrier();
    }
    acc
}

struct Row {
    exec: SimTime,
    stats: NodeStats,
    retained_bytes: usize,
}

fn run_home_based() -> (Vec<u64>, Row) {
    let c = cfg();
    let outs = run_cluster(NODES, c.cost, move |ctx| {
        let mut node = HlrcNode::new(ctx, c, Box::new(NoLogging));
        let acc = workload(&mut node);
        node.barrier();
        (acc, node.inner.ctx.now(), node.inner.ctx.stats)
    });
    let exec = outs.iter().map(|(_, t, _)| *t).max().unwrap();
    let mut stats = NodeStats::default();
    for (_, _, s) in &outs {
        stats.merge(s);
    }
    (
        outs.iter().map(|(a, _, _)| *a).collect(),
        Row {
            exec,
            stats,
            retained_bytes: 0, // diffs are discarded on home ack
        },
    )
}

fn run_homeless() -> (Vec<u64>, Row) {
    let c = cfg();
    let outs = run_cluster(NODES, c.cost, move |ctx| {
        let mut node = HomelessNode::new(ctx, c);
        let acc = workload(&mut node);
        node.barrier();
        let (_, bytes) = node.archive_footprint();
        (acc, node.ctx.now(), node.ctx.stats, bytes)
    });
    let exec = outs.iter().map(|(_, t, _, _)| *t).max().unwrap();
    let mut stats = NodeStats::default();
    let mut retained = 0;
    for (_, _, s, b) in &outs {
        stats.merge(s);
        retained += b;
    }
    (
        outs.iter().map(|(a, _, _, _)| *a).collect(),
        Row {
            exec,
            stats,
            retained_bytes: retained,
        },
    )
}

fn main() {
    println!();
    println!("Home-based vs homeless LRC ({NODES} nodes, {ROUNDS} rounds of stripe+halo)");
    println!("{:-<86}", "");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>12} {:>20}",
        "Protocol", "exec (s)", "messages", "bytes (KB)", "fetches", "retained diffs (KB)"
    );
    println!("{:-<86}", "");
    let (res_hb, hb) = run_home_based();
    let (res_hl, hl) = run_homeless();
    assert_eq!(res_hb, res_hl, "the protocols disagree on the result!");
    for (name, row) in [("home-based", hb), ("homeless", hl)] {
        println!(
            "{:<12} {:>12.3} {:>10} {:>12.1} {:>12} {:>20.1}",
            name,
            row.exec.as_secs_f64(),
            row.stats.msgs_sent,
            row.stats.bytes_sent as f64 / 1024.0,
            row.stats.page_fetches,
            row.retained_bytes as f64 / 1024.0,
        );
    }
    println!("{:-<86}", "");
    println!("(the home-based protocol discards every diff once the home acks it;");
    println!(" homeless LRC retains them all — the paper's no-GC argument, §2.1)");
    println!();
}
