//! Related work (paper §5): failure-free log volumes of the earlier,
//! home-less-DSM logging protocols if they were dropped into the
//! home-based system, next to ML and CCL.
//!
//! Only ML (full contents) and CCL (coherence-centric reconstruction)
//! can actually recover a home-based DSM; the records-only and RSL logs
//! identify *what* happened but carry no data with which to rebuild
//! home copies advanced by discarded diffs. Their rows here quantify
//! the log-size side of that trade.
//!
//! Run with: `cargo bench -p ccl-bench --bench related_work`

use ccl_apps::App;
use ccl_bench::{kb, mb, run_paper, secs, NODES};
use ccl_core::Protocol;

fn main() {
    println!();
    println!("Related-work logging protocols on the home-based DSM ({NODES} nodes)");
    for app in App::ALL {
        println!();
        println!("{}", app.name());
        println!("{:-<86}", "");
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>10} {:>8}",
            "Protocol", "exec (s)", "mean (KB)", "total (MB)", "flushes", "recovers"
        );
        println!("{:-<86}", "");
        for (p, recovers) in [
            (Protocol::Ml, "yes"),
            (Protocol::RecordsOnly, "no"),
            (Protocol::Rsl, "no"),
            (Protocol::Ccl, "yes"),
        ] {
            let out = run_paper(app, p);
            println!(
                "{:<28} {:>12} {:>12} {:>12} {:>10} {:>8}",
                p.label(),
                secs(out.exec_time()),
                kb(out.mean_log_bytes()),
                mb(out.total_log_bytes()),
                out.total_log_flushes(),
                recovers,
            );
        }
        println!("{:-<86}", "");
    }
    println!();
    println!("(records-only and RSL shrink the log like CCL does, but cannot rebuild");
    println!(" advanced home copies: home-based HLRC discards diffs on home ack — §5)");
    println!();
}
