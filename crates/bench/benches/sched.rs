//! Conservative-scheduler wall-clock benchmarks.
//!
//! The virtual-time fabric buys bit-reproducibility with physical-layer
//! synchronization: admissibility checks, watermark publication, and
//! parked-receiver wakeups. This target measures that physical cost —
//! transport micro-throughput, wakeup fan-out, the lock+barrier scale
//! curve (8 → 64 → 128 nodes), and the app × protocol wall clock with
//! per-cell `sched_stalls` — and emits machine-readable JSON
//! (`BENCH_sched.json` at the repo root via `scripts/bench.sh`) with a
//! static same-machine `pre_pr` block so the sharded-scheduler win
//! stays reviewable.
//!
//! Sizing knobs (env):
//! * `SCHED_SMOKE=1` — tiny sizes for the verify-gate smoke stage;
//! * `SCHED_JSON=<path>` — where to write the JSON.

use std::time::Instant;

use ccl_apps::App;
use ccl_bench::paper_spec;
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};
use simnet::{make_endpoints, Envelope, SimTime, WireSized};

#[derive(Debug, Clone)]
struct Ping(u64);

impl WireSized for Ping {
    fn wire_size(&self) -> usize {
        8
    }
}

fn smoke() -> bool {
    std::env::var("SCHED_SMOKE").is_ok_and(|v| v != "0")
}

/// Best-of-N wall time (secs): competing load can only slow a rep down,
/// so the minimum is the closest observation of the true cost.
fn timed_best<F: FnMut()>(reps: usize, mut body: F) -> f64 {
    body(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn env(src: usize, dst: usize, at: u64, seq: u64) -> Envelope<Ping> {
    Envelope {
        src,
        dst,
        sent_at: SimTime(at.saturating_sub(1)),
        arrive_at: SimTime(at),
        seq,
        payload: Ping(at),
    }
}

/// Ring traffic on a 64-endpoint fabric: every node alternates one send
/// to its successor with one blocking receive. All N nodes hammer the
/// fabric simultaneously, so this measures admissibility-check cost and
/// transport lock contention together. Returns messages per second.
fn ring_throughput(nodes: usize, rounds: u64) -> f64 {
    let dt = timed_best(3, || {
        let eps = make_endpoints::<Ping>(nodes);
        std::thread::scope(|s| {
            for (i, ep) in eps.iter().enumerate() {
                let dst = (i + 1) % nodes;
                s.spawn(move || {
                    for r in 0..rounds {
                        ep.send(env(i, dst, r + 1, r + 1)).unwrap();
                        let got = ep.recv().unwrap();
                        std::hint::black_box(got.payload.0);
                    }
                });
            }
        });
    });
    (nodes as u64 * rounds) as f64 / dt
}

/// Wakeup fan-out: `nodes - 1` receivers sit parked in a blocking
/// receive while node 0 feeds them one message each per round. Every
/// send must wake its destination; how many *other* parked threads it
/// also wakes is pure scheduler overhead. Returns messages per second.
fn fanout_throughput(nodes: usize, rounds: u64) -> f64 {
    let dt = timed_best(3, || {
        let mut eps = make_endpoints::<Ping>(nodes);
        let producer = eps.remove(0);
        std::thread::scope(|s| {
            for (k, ep) in eps.iter().enumerate() {
                s.spawn(move || {
                    for _ in 0..rounds {
                        let got = ep.recv().unwrap();
                        std::hint::black_box(got.payload.0);
                    }
                    let _ = k;
                });
            }
            s.spawn(move || {
                let mut at = 1u64;
                let mut seq = vec![0u64; nodes];
                for _ in 0..rounds {
                    for (dst, sq) in seq.iter_mut().enumerate().skip(1) {
                        *sq += 1;
                        producer.send(env(0, dst, at, *sq)).unwrap();
                        at += 1;
                    }
                }
            });
        });
    });
    ((nodes - 1) as u64 * rounds) as f64 / dt
}

/// The `tests/scale.rs` workload: every node alternates contended lock
/// work with full-cluster barriers — the pattern that maximizes
/// simultaneous watermark waits.
fn scale_run(nodes: usize, rounds: u64, locks: u32) -> RunOutput<u64> {
    let spec = ClusterSpec::new(nodes, 16)
        .with_page_size(256)
        .with_protocol(Protocol::Ccl);
    run_program(spec, move |dsm| {
        let counters = dsm.alloc::<u64>(locks as usize);
        for _ in 0..rounds {
            let me = dsm.me() as u32;
            for k in 0..locks {
                let lock = (me + k) % locks;
                dsm.acquire(lock);
                let v = dsm.read(&counters, lock as usize);
                dsm.write(&counters, lock as usize, v + 1);
                dsm.release(lock);
            }
            dsm.barrier();
        }
        (0..locks as usize).map(|k| dsm.read(&counters, k)).sum()
    })
}

/// One scale cell: (wall_ms best-of-reps, total sched_stalls, exec_ns).
fn scale_cell(nodes: usize, rounds: u64, reps: usize) -> (f64, u64, u64) {
    let mut stalls = 0u64;
    let mut exec = 0u64;
    let wall = timed_best(reps, || {
        let out = scale_run(nodes, rounds, 8);
        stalls = out.total_stats().sched_stalls;
        exec = out.exec_time().as_nanos();
    });
    (wall * 1e3, stalls, exec)
}

/// One app × protocol cell: (wall_ms, sched_stalls, exec_ns).
fn app_cell(app: App, protocol: Protocol) -> (f64, u64, u64) {
    let mut stalls = 0u64;
    let mut exec = 0u64;
    let reps = if smoke() { 1 } else { 2 };
    let wall = timed_best(reps, || {
        let out: RunOutput<u64> = if smoke() {
            let spec = ClusterSpec::new(4, app.tiny_pages(256) + 4)
                .with_page_size(256)
                .with_protocol(protocol);
            run_program(spec, move |dsm| app.run_tiny(dsm))
        } else {
            run_program(paper_spec(app, protocol), move |dsm| app.run_paper(dsm))
        };
        stalls = out.total_stats().sched_stalls;
        exec = out.exec_time().as_nanos();
    });
    (wall * 1e3, stalls, exec)
}

/// The pre-PR numbers for the same suite, captured on this machine at
/// the pre-PR commit (ba6a48e: one global fabric mutex, O(N) `clears()`
/// rescan, `notify_all` wakeups) via this same bench file compiled
/// against that tree — byte-for-byte the same workloads, iteration
/// counts, and best-of-N policy. The `exec_ns` columns are virtual time
/// and must match the post-PR run exactly: the sharded scheduler is a
/// physical-layer change only.
const PRE_PR_JSON: &str = r#"{"bench":"sched","smoke":false,"micro":{"ring_64n":{"msgs_per_s":367066},"fanout_64n":{"msgs_per_s":1362393}},"scale":[{"nodes":8,"wall_ms":6.9,"sched_stalls":994,"exec_ns":32527214},{"nodes":64,"wall_ms":1141.2,"sched_stalls":10479,"exec_ns":277433790},{"nodes":128,"wall_ms":7602.5,"sched_stalls":22151,"exec_ns":614195134}],"apps":[{"app":"3D-FFT","protocol":"none","wall_ms":215.6,"sched_stalls":11000,"exec_ns":1263526672},{"app":"3D-FFT","protocol":"ml","wall_ms":393.6,"sched_stalls":11192,"exec_ns":1565217572},{"app":"3D-FFT","protocol":"ccl","wall_ms":254.1,"sched_stalls":10944,"exec_ns":1296810940},{"app":"MG","protocol":"none","wall_ms":164.5,"sched_stalls":3500,"exec_ns":416847992},{"app":"MG","protocol":"ml","wall_ms":205.8,"sched_stalls":3553,"exec_ns":469295722},{"app":"MG","protocol":"ccl","wall_ms":199.8,"sched_stalls":3580,"exec_ns":426208970},{"app":"Shallow","protocol":"none","wall_ms":338.6,"sched_stalls":3492,"exec_ns":688383864},{"app":"Shallow","protocol":"ml","wall_ms":394.8,"sched_stalls":3510,"exec_ns":749517914},{"app":"Shallow","protocol":"ccl","wall_ms":437.4,"sched_stalls":3449,"exec_ns":698341698},{"app":"Water","protocol":"none","wall_ms":37.9,"sched_stalls":1595,"exec_ns":1620170440},{"app":"Water","protocol":"ml","wall_ms":47.1,"sched_stalls":1613,"exec_ns":1633811756},{"app":"Water","protocol":"ccl","wall_ms":45.8,"sched_stalls":1597,"exec_ns":1622985572}]}"#;

fn main() {
    let smoke = smoke();
    let (ring_nodes, ring_rounds) = if smoke { (16, 200) } else { (64, 2000) };
    let (fan_nodes, fan_rounds) = if smoke { (16, 100) } else { (64, 1000) };
    let scale_cells: &[(usize, u64, usize)] = if smoke {
        &[(8, 2, 1), (16, 2, 1)]
    } else {
        &[(8, 4, 3), (64, 4, 3), (128, 4, 2)]
    };

    let mut s = String::new();
    s.push_str(&format!("{{\"bench\":\"sched\",\"smoke\":{smoke},"));
    s.push_str("\"micro\":{");
    s.push_str(&format!(
        "\"ring_{ring_nodes}n\":{{\"msgs_per_s\":{:.0}}},",
        ring_throughput(ring_nodes, ring_rounds)
    ));
    s.push_str(&format!(
        "\"fanout_{fan_nodes}n\":{{\"msgs_per_s\":{:.0}}}",
        fanout_throughput(fan_nodes, fan_rounds)
    ));
    s.push_str("},\"scale\":[");
    for (i, &(n, rounds, reps)) in scale_cells.iter().enumerate() {
        let (wall, stalls, exec) = scale_cell(n, rounds, reps);
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"nodes\":{n},\"wall_ms\":{wall:.1},\"sched_stalls\":{stalls},\
             \"exec_ns\":{exec}}}"
        ));
        eprintln!("scale {n}n: {wall:.1} ms, {stalls} stalls");
    }
    s.push_str("],\"apps\":[");
    let protocols = [
        (Protocol::None, "none"),
        (Protocol::Ml, "ml"),
        (Protocol::Ccl, "ccl"),
    ];
    let mut first = true;
    for app in App::ALL {
        for (p, pname) in protocols {
            let (wall, stalls, exec) = app_cell(app, p);
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"app\":\"{}\",\"protocol\":\"{pname}\",\"wall_ms\":{wall:.1},\
                 \"sched_stalls\":{stalls},\"exec_ns\":{exec}}}",
                app.name()
            ));
            eprintln!("{} {pname}: {wall:.1} ms, {stalls} stalls", app.name());
        }
    }
    s.push_str("],\"pre_pr\":");
    s.push_str(PRE_PR_JSON);
    s.push('}');
    println!("{s}");
    if let Ok(path) = std::env::var("SCHED_JSON") {
        std::fs::write(&path, format!("{s}\n")).expect("write SCHED_JSON");
        eprintln!("wrote {path}");
    }
}
