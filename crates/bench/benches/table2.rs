//! Table 2 — Overhead Details under Different Logging Protocols.
//!
//! Regenerates the paper's Table 2 (a)–(d): for every application and
//! each of {None, ML, CCL}, the total execution time, the mean log size
//! per flush (KB), the total log size (MB), and the number of
//! volatile-log flushes.
//!
//! Run with: `cargo bench -p ccl-bench --bench table2`

use ccl_apps::App;
use ccl_bench::{kb, mb, run_paper, secs, NODES};
use ccl_core::Protocol;

fn main() {
    println!();
    println!("Table 2. Overhead Details under Different Logging Protocols ({NODES} nodes)");
    for (idx, app) in App::ALL.iter().enumerate() {
        let letter = char::from(b'a' + idx as u8);
        println!();
        println!("({letter}) {}", app.name());
        println!("{:-<76}", "");
        println!(
            "{:<10} {:>16} {:>15} {:>15} {:>12}",
            "Logging", "Execution", "Mean Log", "Total Log", "# of"
        );
        println!(
            "{:<10} {:>16} {:>15} {:>15} {:>12}",
            "Protocol", "Time (sec.)", "Size (KB)", "Size (MB)", "Flushes"
        );
        println!("{:-<76}", "");
        let mut digests = Vec::new();
        for protocol in Protocol::TABLE2 {
            let out = run_paper(*app, protocol);
            digests.push(out.nodes[0].result);
            println!(
                "{:<10} {:>16} {:>15} {:>15} {:>12}",
                match protocol {
                    Protocol::None => "None",
                    Protocol::Ml => "ML",
                    Protocol::Ccl => "CCL",
                    _ => unreachable!(),
                },
                secs(out.exec_time()),
                kb(out.mean_log_bytes()),
                mb(out.total_log_bytes()),
                out.total_log_flushes(),
            );
        }
        println!("{:-<76}", "");
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{}: protocols disagree on the result!",
            app.name()
        );
    }
    println!();
}
