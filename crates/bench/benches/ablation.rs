//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **A1** — CCL without the flush/communication overlap: identical log
//!   contents, but the disk access is charged serially like ML's.
//! * **A2** — CCL recovery without prefetching: pages are reconstructed
//!   only when faulted on, reintroducing the memory-miss idle time.
//! * **A3** — log size vs. coherence granularity: the page-size sweep
//!   that shows why ML's full-page logging explodes with the page size
//!   while CCL's diff-based log barely moves.
//!
//! Run with: `cargo bench -p ccl-bench --bench ablation`

use ccl_apps::App;
use ccl_bench::{mb, median_recovery_secs, run_paper, secs, NODES};
use ccl_core::{run_program, ClusterSpec, Protocol};

fn a1_overlap() {
    println!();
    println!("A1. CCL flush/communication overlap ({NODES} nodes)");
    println!("{:-<78}", "");
    println!(
        "{:<10} {:>18} {:>20} {:>22}",
        "Program", "CCL exec (s)", "no-overlap exec (s)", "overlap benefit (%)"
    );
    println!("{:-<78}", "");
    for app in App::ALL {
        let with = run_paper(app, Protocol::Ccl);
        let without = run_paper(app, Protocol::CclNoOverlap);
        let t_with = with.exec_time().as_secs_f64();
        let t_without = without.exec_time().as_secs_f64();
        println!(
            "{:<10} {:>18} {:>20} {:>22.2}",
            app.name(),
            secs(with.exec_time()),
            secs(without.exec_time()),
            100.0 * (t_without - t_with) / t_without,
        );
    }
    println!("{:-<78}", "");
}

fn a2_prefetch() {
    println!();
    println!("A2. CCL recovery prefetching (crash at ~75% of barriers)");
    println!("{:-<78}", "");
    println!(
        "{:<10} {:>20} {:>24} {:>18}",
        "Program", "recovery w/ prefetch", "recovery w/o prefetch", "prefetch gain (%)"
    );
    println!("{:-<78}", "");
    for app in App::ALL {
        let t_with = median_recovery_secs(app, Protocol::Ccl, 0.75, 3);
        let t_without = median_recovery_secs(app, Protocol::CclNoPrefetch, 0.75, 3);
        println!(
            "{:<10} {:>19.3}s {:>23.3}s {:>18.2}",
            app.name(),
            t_with,
            t_without,
            100.0 * (t_without - t_with) / t_without,
        );
    }
    println!("{:-<78}", "");
}

fn a3_page_size() {
    println!();
    println!("A3. Log size vs. coherence granularity (3D-FFT, {NODES} nodes)");
    println!("{:-<66}", "");
    println!(
        "{:<12} {:>16} {:>16} {:>16}",
        "Page size", "ML log (MB)", "CCL log (MB)", "CCL/ML (%)"
    );
    println!("{:-<66}", "");
    let app = App::Fft3d;
    for page_size in [1024usize, 2048, 4096, 8192] {
        let pages = app.paper_pages(page_size) + 8;
        let mut logs = Vec::new();
        for protocol in [Protocol::Ml, Protocol::Ccl] {
            let spec = ClusterSpec::new(NODES, pages)
                .with_page_size(page_size)
                .with_protocol(protocol);
            let out = run_program(spec, move |dsm| app.run_paper(dsm));
            logs.push(out.total_log_bytes());
        }
        println!(
            "{:<12} {:>16} {:>16} {:>16.1}",
            page_size,
            mb(logs[0]),
            mb(logs[1]),
            100.0 * logs[1] as f64 / logs[0] as f64,
        );
    }
    println!("{:-<66}", "");
}

fn main() {
    a1_overlap();
    a2_prefetch();
    a3_page_size();
    println!();
}
