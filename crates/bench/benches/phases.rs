//! Machine-readable run telemetry: per-node phase breakdowns as JSON.
//!
//! Runs each application under {None, ML, CCL} at small scale and
//! prints one JSON object per run (see `RunOutput::phases_json`): the
//! run label, total execution time, and for every node where its time
//! went — compute, synchronization wait, critical-path disk, and the
//! disk time hidden behind communication. The four components sum to
//! the node's finish time by construction.
//!
//! Run with: `cargo bench -p ccl-bench --bench phases`
//! Pipe through `python3 -m json.tool --json-lines` (or jq) to pretty-
//! print.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, Protocol};

fn main() {
    let page = 256;
    for app in App::ALL {
        for protocol in [Protocol::None, Protocol::Ml, Protocol::Ccl] {
            let spec = ClusterSpec::new(4, app.tiny_pages(page) + 4)
                .with_page_size(page)
                .with_protocol(protocol);
            let out = run_program(spec, move |dsm| app.run_tiny(dsm));
            let label = format!("{}/{:?}", app.name(), protocol);
            println!("{}", out.phases_json(&label));
        }
    }
}
