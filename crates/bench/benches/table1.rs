//! Table 1 — Applications Characteristics.
//!
//! Regenerates the paper's Table 1: program, data set, size, and
//! synchronization type, plus measured sync counts from an actual run.
//!
//! Run with: `cargo bench -p ccl-bench --bench table1`

use ccl_apps::App;
use ccl_bench::{run_paper, NODES};
use ccl_core::Protocol;

fn main() {
    println!();
    println!("Table 1. Applications Characteristics ({NODES} nodes)");
    println!("{:-<98}", "");
    println!(
        "{:<10} {:<34} {:<22} {:>12} {:>14}",
        "Program", "Data Set Size", "Synchronization", "Barriers", "Lock Acquires"
    );
    println!("{:-<98}", "");
    for app in App::ALL {
        let out = run_paper(app, Protocol::None);
        let total = out.total_stats();
        println!(
            "{:<10} {:<34} {:<22} {:>12} {:>14}",
            app.name(),
            app.data_set(),
            app.sync_kind(),
            total.barriers / NODES as u64,
            total.lock_acquires,
        );
    }
    println!("{:-<98}", "");
    println!("(data sets are harness-scaled; structure and sync types match the paper — see EXPERIMENTS.md)");
    println!();
}
