//! Criterion micro-benchmarks of the substrate operations the protocols
//! are built from: twin/diff creation and application, the wire codec,
//! vector-clock operations, and stable-storage log appends.
//!
//! Run with: `cargo bench -p ccl-bench --bench micro`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pagemem::{Decode, Encode, IntervalId, PageDiff, PageFrame, Twin, VClock};
use simnet::{DiskModel, SimDisk};

const PAGE: usize = 4096;

fn dirty_page(words: usize) -> (Twin, PageFrame) {
    let base = PageFrame::zeroed(PAGE);
    let twin = Twin::of(&base);
    let mut cur = base.clone();
    let stride = PAGE / 8 / words.max(1);
    for w in 0..words {
        cur.write_u64(((w * stride * 8) % (PAGE - 8)) & !7, w as u64 + 1);
    }
    (twin, cur)
}

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    g.throughput(Throughput::Bytes(PAGE as u64));
    for words in [1usize, 16, 128] {
        let (twin, cur) = dirty_page(words);
        g.bench_function(format!("create/{words}w"), |b| {
            b.iter(|| PageDiff::create(0, &twin, &cur))
        });
        let diff = PageDiff::create(0, &twin, &cur);
        g.bench_function(format!("apply/{words}w"), |b| {
            b.iter_batched(
                || twin.frame().clone(),
                |mut frame| diff.apply(&mut frame),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let (twin, cur) = dirty_page(64);
    let diff = PageDiff::create(7, &twin, &cur);
    let bytes = diff.encode_to_vec();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("diff_encode", |b| b.iter(|| diff.encode_to_vec()));
    g.bench_function("diff_decode", |b| {
        b.iter(|| PageDiff::decode_from_slice(&bytes).unwrap())
    });
    g.finish();
}

fn bench_vclock(c: &mut Criterion) {
    let mut g = c.benchmark_group("vclock");
    let mut a = VClock::new(8);
    let mut b8 = VClock::new(8);
    for i in 0..8 {
        a.set(i, i * 7);
        b8.set(i, 50 - i * 3);
    }
    g.bench_function("join", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| x.join(&b8),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("compare", |b| b.iter(|| a.compare(&b8)));
    g.bench_function("observe", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| x.observe(IntervalId { node: 3, seq: 99 }),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_disk_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("stable_log");
    for record_size in [64usize, 1024, 4096] {
        g.throughput(Throughput::Bytes(record_size as u64 * 16));
        g.bench_function(format!("flush16x{record_size}"), |b| {
            b.iter_batched(
                || SimDisk::new(DiskModel::ULTRA5_LOCAL),
                |mut disk| {
                    disk.flush_records("log", (0..16).map(|i| vec![i as u8; record_size]))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_diff, bench_codec, bench_vclock, bench_disk_log);
criterion_main!(benches);
