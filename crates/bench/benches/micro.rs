//! Micro-benchmarks of the substrate operations the protocols are built
//! from: twin/diff creation and application, the wire codec,
//! vector-clock operations, and stable-storage log appends.
//!
//! Self-contained timing harness (median of repeated batches over
//! `std::time::Instant`) — no external benchmarking framework.
//!
//! Run with: `cargo bench -p ccl-bench --bench micro`

use std::hint::black_box;
use std::time::Instant;

use pagemem::{Decode, Encode, IntervalId, PageDiff, PageFrame, Twin, VClock};
use simnet::{DiskModel, SimDisk};

const PAGE: usize = 4096;

/// Time `f` over `iters` iterations, repeated in `batches` batches, and
/// report the best per-iteration time in nanoseconds (least-noise
/// estimator for short deterministic kernels).
fn bench<F: FnMut()>(name: &str, mut f: F) {
    const BATCHES: usize = 7;
    const WARMUP: usize = 3;
    // Calibrate the iteration count to ~10ms per batch.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 10 || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    let mut best = f64::INFINITY;
    for batch in 0..WARMUP + BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = t.elapsed().as_nanos() as f64 / iters as f64;
        if batch >= WARMUP && per_iter < best {
            best = per_iter;
        }
    }
    println!("{name:<28} {best:>10.1} ns/iter  ({iters} iters/batch)");
}

fn dirty_page(words: usize) -> (Twin, PageFrame) {
    let base = PageFrame::zeroed(PAGE);
    let twin = Twin::of(&base);
    let mut cur = base.clone();
    let stride = PAGE / 8 / words.max(1);
    for w in 0..words {
        cur.write_u64(((w * stride * 8) % (PAGE - 8)) & !7, w as u64 + 1);
    }
    (twin, cur)
}

fn bench_diff() {
    for words in [1usize, 16, 128] {
        let (twin, cur) = dirty_page(words);
        bench(&format!("diff/create/{words}w"), || {
            black_box(PageDiff::create(0, black_box(&twin), black_box(&cur)));
        });
        let diff = PageDiff::create(0, &twin, &cur);
        let mut frame = twin.frame().clone();
        bench(&format!("diff/apply/{words}w"), || {
            diff.apply(black_box(&mut frame));
        });
    }
}

fn bench_codec() {
    let (twin, cur) = dirty_page(64);
    let diff = PageDiff::create(7, &twin, &cur);
    let bytes = diff.encode_to_vec();
    bench("codec/diff_encode", || {
        black_box(black_box(&diff).encode_to_vec());
    });
    bench("codec/diff_decode", || {
        black_box(PageDiff::decode_from_slice(black_box(&bytes)).unwrap());
    });
}

fn bench_vclock() {
    let mut a = VClock::new(8);
    let mut b8 = VClock::new(8);
    for i in 0..8 {
        a.set(i, i * 7);
        b8.set(i, 50 - i * 3);
    }
    bench("vclock/join", || {
        let mut x = black_box(a.clone());
        x.join(black_box(&b8));
        black_box(x);
    });
    bench("vclock/compare", || {
        black_box(black_box(&a).compare(black_box(&b8)));
    });
    bench("vclock/observe", || {
        let mut x = black_box(a.clone());
        x.observe(IntervalId { node: 3, seq: 99 });
        black_box(x);
    });
}

fn bench_disk_log() {
    for record_size in [64usize, 1024, 4096] {
        bench(&format!("stable_log/flush16x{record_size}"), || {
            let mut disk = SimDisk::new(DiskModel::ULTRA5_LOCAL);
            black_box(disk.flush_records("log", (0..16).map(|i| vec![i as u8; record_size])));
        });
    }
}

fn main() {
    println!("micro-benchmarks (best-of-batches, ns/iter)");
    bench_diff();
    bench_codec();
    bench_vclock();
    bench_disk_log();
}
