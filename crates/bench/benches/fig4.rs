//! Figure 4 — Impacts of Logging Protocols on Execution Time.
//!
//! Regenerates the paper's Figure 4: failure-free execution time of ML
//! and CCL normalized to the no-logging baseline (= 100) for every
//! application. The paper reports CCL at 101–106 and ML at 109–124.
//!
//! Run with: `cargo bench -p ccl-bench --bench fig4`

use ccl_apps::App;
use ccl_bench::{bar, run_paper, NODES};
use ccl_core::Protocol;

fn main() {
    println!();
    println!("Figure 4. Impacts of Logging Protocols on Execution Time");
    println!("(normalized to the no-logging run = 100; {NODES} nodes)");
    println!("{:-<72}", "");
    for app in App::ALL {
        let base = run_paper(app, Protocol::None).exec_time().as_secs_f64();
        println!("{}:", app.name());
        for protocol in [Protocol::None, Protocol::Ml, Protocol::Ccl] {
            let t = run_paper(app, protocol).exec_time().as_secs_f64();
            let norm = 100.0 * t / base;
            println!("  {:<26} {:>6.1}  |{}", protocol.label(), norm, bar(norm));
        }
        println!();
    }
    println!("{:-<72}", "");
    println!("(paper: CCL adds 1-6%, ML adds 9-24% over None)");
    println!();
}
