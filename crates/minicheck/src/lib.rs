//! # minicheck — a minimal, deterministic property-testing harness
//!
//! A tiny stand-in for `proptest`/`quickcheck` with zero external
//! dependencies: a [`Rng`] (SplitMix64) for generating random inputs and
//! a [`check`] runner that executes a property over many deterministic
//! cases, reporting the failing case's seed before propagating the
//! panic. Re-running a failing property with [`check_seed`] and the
//! reported seed reproduces the exact failing input.
//!
//! Properties are ordinary closures over `&mut Rng`; generators are
//! ordinary functions. There is no shrinking — seeds are deterministic,
//! so a failure is always reproducible and can be minimized by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic pseudo-random generator (SplitMix64).
///
/// Small, fast, and statistically solid for test-input generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`. The same seed always yields the
    /// same sequence.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for test-input sizes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len())]
    }
}

/// Derive the deterministic seed of case `i` of property `name`.
fn case_seed(name: &str, i: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index, so distinct
    // properties and distinct cases get unrelated streams.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `property` over `cases` deterministic random cases.
///
/// On failure, prints the case index and seed (reproducible with
/// [`check_seed`]) and re-raises the panic.
pub fn check<F>(name: &str, cases: u64, property: F)
where
    F: Fn(&mut Rng),
{
    for i in 0..cases {
        let seed = case_seed(name, i);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            property(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "minicheck: property `{name}` failed on case {i}/{cases} \
                 (reproduce with check_seed(\"{name}\", {seed:#018x}, ..))"
            );
            resume_unwind(payload);
        }
    }
}

/// Re-run `property` once with an explicit seed (reproducing a failure
/// reported by [`check`]).
pub fn check_seed<F>(name: &str, seed: u64, property: F)
where
    F: Fn(&mut Rng),
{
    let _ = name;
    let mut rng = Rng::new(seed);
    property(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.usize_in(3, 8);
            assert!((3..8).contains(&v));
        }
    }

    #[test]
    fn distinct_cases_get_distinct_seeds() {
        assert_ne!(case_seed("p", 0), case_seed("p", 1));
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
    }

    #[test]
    fn check_runs_all_cases() {
        use std::cell::Cell;
        let count = Cell::new(0u64);
        check("counter", 17, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn failing_case_panics_through() {
        let result = std::panic::catch_unwind(|| {
            check("always_fails", 3, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn bytes_and_pick() {
        let mut r = Rng::new(1);
        assert_eq!(r.bytes(16).len(), 16);
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items)));
    }
}
