//! Coherence-centric logging (CCL) and prefetch-based recovery — the
//! paper's contribution (§3.2).
//!
//! Failure-free logging records only what recovery cannot re-derive:
//!
//! * incoming write-invalidation notices (with the piggybacked clock),
//! * *records* of incoming updates applied at this home (writer + pages,
//!   never the diff contents),
//! * the diffs this node itself produced at the end of each interval.
//!
//! Fetched page copies are **not** logged — they are reconstructible.
//! The log flush is issued right after the diffs are sent to their home
//! nodes, so the disk access overlaps the diff round-trips; only the
//! residual (if the disk is slower than the network) lands on the
//! critical path.
//!
//! Recovery replays sync events from the (small) local log: at the
//! beginning of each interval it re-applies the recorded incoming
//! updates to its home copies (fetching the diffs from the writers'
//! stable logs) and *prefetches* every remote copy named by the logged
//! notices — reconstructing from the home's checkpoint base plus logged
//! diffs whenever the live home copy has already advanced past the
//! interval being replayed. Page faults during replay are thereby
//! (almost entirely) eliminated.

use std::collections::HashMap;

use hlrc::{FaultTolerance, Msg, NodeInner, RecoveryStep, SyncKind, WriteNotice};
use pagemem::{Decode, Encode, IntervalId, PageDiff, PageId, PageState, VClock};
use simnet::{Envelope, SimDuration, SimTime, TraceKind};

use crate::log_record::{CclRecord, SyncTag};

/// Stable-storage stream holding the coherence-centric log.
pub const CCL_STREAM: &str = "ccl.log";

/// In-memory replay state (rebuilt from the stable log after a crash).
struct CclReplay {
    /// Decoded records with their encoded sizes (for per-interval read
    /// charging).
    records: Vec<(CclRecord, usize)>,
    cursor: usize,
    /// Every write notice encountered so far, in replay order — received
    /// ones from `Sync` records and this node's own (derived from its
    /// `Diffs` records). Reconstruction applies diffs in this order.
    notices_seen: Vec<WriteNotice>,
    /// Own logged diffs passed by the cursor: (page, interval seq) → diff.
    own_diffs: HashMap<(PageId, u32), PageDiff>,
}

/// Coherence-centric logging.
pub struct CclLogger {
    /// Overlap the log flush with the diff round-trip (the paper's
    /// latency-tolerance technique). `false` gives the ablation variant.
    overlap: bool,
    /// Prefetch noticed pages at each replayed interval (the paper's
    /// recovery optimization). `false` leaves faults to reconstruct
    /// on demand (ablation A2).
    prefetch: bool,
    /// When the disk finishes the most recently issued asynchronous
    /// flush. CCL issues flushes and lets them drain in the background
    /// (the paper's latency-tolerance technique); a later flush queues
    /// behind an unfinished one.
    disk_free_at: SimTime,
    staged: Vec<CclRecord>,
    staged_bytes: usize,
    /// (page, own interval seq) → record index in the stable log, used
    /// to serve recovering peers' `LoggedDiffRequest`s.
    diff_index: HashMap<(PageId, u32), usize>,
    /// Volatile cache of this node's home-write diffs, keyed by
    /// (page, own interval seq). Served to recovering peers; never
    /// flushed (a peer's recovery implies this node survived).
    home_diff_cache: HashMap<(PageId, u32), PageDiff>,
    replay: Option<CclReplay>,
    restored_app: Option<Vec<u8>>,
    /// Survivor-side in-memory image of the logged diffs, loaded with a
    /// single sequential log read the first time a recovering peer asks
    /// for one; later requests are served at memory speed.
    serve_cache: Option<HashMap<(PageId, u32), PageDiff>>,
    /// Also log home-write diffs (as ordinary `Diffs` records). Single-
    /// failure CCL keeps them volatile — a peer's recovery implies this
    /// node survived — but under a multi-failure spec that assumption
    /// breaks, so the runner enables this mode when more than one crash
    /// is scheduled.
    durable_home_diffs: bool,
    /// The log device failed permanently: logging has stopped and a
    /// later crash replays only the persisted prefix, re-executing the
    /// rest live (degraded recovery).
    degraded: bool,
}

impl CclLogger {
    /// CCL as published (flush overlapped with communication).
    pub fn new() -> CclLogger {
        CclLogger {
            overlap: true,
            prefetch: true,
            disk_free_at: SimTime::ZERO,
            staged: Vec::new(),
            staged_bytes: 0,
            diff_index: HashMap::new(),
            home_diff_cache: HashMap::new(),
            replay: None,
            restored_app: None,
            serve_cache: None,
            durable_home_diffs: false,
            degraded: false,
        }
    }

    /// Ablation variant: identical log contents, but the flush is
    /// charged serially like ML's.
    pub fn without_overlap() -> CclLogger {
        CclLogger {
            overlap: false,
            ..CclLogger::new()
        }
    }

    /// Ablation variant: recovery reconstructs pages only on faults,
    /// without the per-interval prefetch.
    pub fn without_prefetch() -> CclLogger {
        CclLogger {
            prefetch: false,
            ..CclLogger::new()
        }
    }

    /// Multi-failure variant: home-write diffs go to the stable log too
    /// (see [`durable_home_diffs`](field@CclLogger::durable_home_diffs)).
    pub fn with_durable_home_diffs(mut self) -> CclLogger {
        self.durable_home_diffs = true;
        self
    }

    /// True once the log device has failed permanently.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn stage(&mut self, inner: &mut NodeInner, rec: CclRecord) {
        if self.degraded {
            return;
        }
        let bytes = rec.encoded_size();
        inner.ctx.trace(TraceKind::LogAppend {
            bytes: bytes as u64,
        });
        self.staged_bytes += bytes;
        self.staged.push(rec);
    }

    /// Encode and write the staged records through the OS cache,
    /// returning `(cpu_copy_cost, device_drain_time)`.
    fn flush_staged(&mut self, inner: &mut NodeInner) -> (SimDuration, SimDuration) {
        if self.degraded {
            // The device is gone; drop anything staged since then.
            self.staged.clear();
            self.staged_bytes = 0;
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        if self.staged.is_empty() {
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        let bytes = self.staged_bytes;
        let base_pos = inner.ctx.disk.record_count(CCL_STREAM);
        let mut encoded = Vec::with_capacity(self.staged.len());
        let mut indexed: Vec<((PageId, u32), usize, PageDiff)> = Vec::new();
        for (pos, rec) in (base_pos..).zip(self.staged.drain(..)) {
            if let CclRecord::Diffs { interval, diffs } = &rec {
                for d in diffs {
                    // Indexed only once the write is known durable.
                    indexed.push(((d.page, interval.seq), pos, d.clone()));
                }
            }
            encoded.push(rec.encode_to_sized_vec());
        }
        self.staged_bytes = 0;
        let retries_before = inner.ctx.disk.counters().write_retries;
        let _ = inner.ctx.disk.flush_records(CCL_STREAM, encoded);
        if inner.ctx.disk.has_failed() {
            // Permanent device failure: the batch (and its would-be
            // index entries) is lost and logging stops for good. The
            // futile access that discovered the failure is charged
            // here; callers account only for successful flushes.
            self.degraded = true;
            inner.ctx.trace(TraceKind::LogDeviceFailed);
            let futile = inner.ctx.disk.model().write_time(0);
            inner.ctx.charge_disk(futile);
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        for (key, pos, d) in indexed {
            self.diff_index.insert(key, pos);
            // Keep the survivor-side serve cache coherent incrementally
            // instead of rebuilding it from disk.
            if let Some(cache) = self.serve_cache.as_mut() {
                cache.insert(key, d);
            }
        }
        let mut drain = inner.ctx.disk.model().drain_time(bytes);
        if inner.ctx.disk.counters().write_retries > retries_before {
            // A transient write fault: the device wrote the batch twice.
            drain = drain + drain;
        }
        inner.ctx.stats.log_flushes += 1;
        inner.ctx.stats.log_bytes += bytes as u64;
        inner.ctx.metrics.flush_bytes.record(bytes as u64);
        inner.ctx.trace(TraceKind::LogFlush {
            bytes: bytes as u64,
            overlapped: self.overlap,
        });
        (inner.ctx.disk.model().buffered_write_cost(bytes), drain)
    }

    /// Block until a message matching `pred` arrives, deferring other
    /// traffic — except recovery-class requests from peers, which are
    /// answered on the spot from stable state. Two nodes recovering
    /// concurrently block in each other's fetch waves; deferring each
    /// other's requests here would deadlock the pair.
    fn recovery_wait<F: Fn(&Msg) -> bool>(
        &mut self,
        inner: &mut NodeInner,
        pred: F,
    ) -> Envelope<Msg> {
        loop {
            let env = inner.ctx.recv().expect("cluster channel closed");
            if pred(&env.payload) {
                inner.ctx.absorb(&env);
                return env;
            }
            match &env.payload {
                Msg::LoggedDiffRequest { .. } => self.serve_logged_diffs(inner, &env),
                Msg::RecoveryPageRequest { .. } => {
                    let done = inner.ctx.service_time(&env);
                    inner.serve_recovery_page(&env, done, true, true, self.durable_home_diffs);
                }
                _ => inner.ctx.defer(env),
            }
        }
    }

    /// Fetch logged diffs for every `(page, intervals)` entry — from the
    /// writers' stable logs over the network and from this node's own
    /// log locally — with all remote requests issued in parallel.
    fn fetch_logged_diffs(
        &mut self,
        inner: &mut NodeInner,
        wants: &HashMap<PageId, Vec<IntervalId>>,
    ) -> HashMap<(PageId, IntervalId), PageDiff> {
        let me = inner.me() as u32;
        let replay = self.replay.as_ref().expect("fetch outside recovery");
        let mut found: HashMap<(PageId, IntervalId), PageDiff> = HashMap::new();
        let mut outstanding = 0usize;
        // Request in (page, writer) order: these iterations feed sends,
        // so they must not inherit HashMap iteration order.
        let mut pages: Vec<_> = wants.iter().collect();
        pages.sort_unstable_by_key(|(page, _)| **page);
        for (page, ivs) in pages {
            let mut per_writer: HashMap<u32, Vec<u32>> = HashMap::new();
            for iv in ivs {
                if iv.node == me {
                    // Own diffs come from the local log (already read
                    // while the replay cursor passed them).
                    if let Some(d) = replay.own_diffs.get(&(*page, iv.seq)) {
                        found.insert((*page, *iv), d.clone());
                    }
                } else {
                    per_writer.entry(iv.node).or_default().push(iv.seq);
                }
            }
            let mut per_writer: Vec<_> = per_writer.into_iter().collect();
            per_writer.sort_unstable_by_key(|(writer, _)| *writer);
            for (writer, seqs) in per_writer {
                inner
                    .ctx
                    .send(
                        writer as usize,
                        Msg::LoggedDiffRequest { page: *page, seqs },
                    )
                    .expect("send logged diff request");
                outstanding += 1;
            }
        }
        for _ in 0..outstanding {
            let env = self.recovery_wait(inner, |m| matches!(m, Msg::LoggedDiffReply { .. }));
            if let Msg::LoggedDiffReply { page, diffs } = env.payload {
                for (iv, d) in diffs {
                    inner.ctx.charge_copy(d.encoded_size());
                    found.insert((page, iv), d);
                }
            }
        }
        found
    }

    /// Reconstruct remote copies of `pages` (paper: "prefetching data
    /// according to the future shared memory access patterns"): one
    /// recovery-page round trip per page, issued in parallel, plus
    /// logged-diff fetches for the copies whose home has advanced.
    fn prefetch_pages(&mut self, inner: &mut NodeInner, pages: &[PageId]) {
        if pages.is_empty() {
            return;
        }
        let required = inner.vc.clone();
        for &p in pages {
            let home = inner.pages.entry(p).home;
            inner
                .ctx
                .send(
                    home,
                    Msg::RecoveryPageRequest {
                        page: p,
                        required: required.clone(),
                    },
                )
                .expect("send recovery page request");
        }
        let mut advanced: Vec<(PageId, pagemem::SharedBytes, VClock)> = Vec::new();
        for _ in 0..pages.len() {
            let env = self.recovery_wait(
                inner,
                |m| matches!(m, Msg::RecoveryPageReply { page, .. } if pages.contains(page)),
            );
            if let Msg::RecoveryPageReply {
                page,
                advanced: adv,
                data,
                version,
            } = env.payload
            {
                inner.ctx.charge_copy(data.len());
                if adv {
                    advanced.push((page, data, version));
                } else {
                    inner
                        .pages
                        .install_copy(page, &data, PageState::ReadOnly, &mut inner.pool);
                }
            }
        }
        // Homes that ran ahead: patch their checkpoint base with the
        // logged diffs named by the notices replayed so far — one
        // parallel fetch wave for all of them.
        if advanced.is_empty() {
            return;
        }
        let mut wants: HashMap<PageId, Vec<IntervalId>> = HashMap::new();
        {
            let replay = self.replay.as_ref().expect("reconstruct outside recovery");
            for (page, _, base_version) in &advanced {
                let ivs: Vec<IntervalId> = replay
                    .notices_seen
                    .iter()
                    .filter(|n| n.page == *page && !base_version.covers(n.interval))
                    .map(|n| n.interval)
                    .collect();
                wants.insert(*page, ivs);
            }
        }
        let diffs = self.fetch_logged_diffs(inner, &wants);
        for (page, base, _) in advanced {
            let mut frame = pagemem::PageFrame::from_bytes(&base);
            for iv in &wants[&page] {
                if let Some(d) = diffs.get(&(page, *iv)) {
                    inner.ctx.charge_copy(d.payload_bytes());
                    d.apply(&mut frame);
                }
            }
            inner
                .pages
                .install_copy(page, frame.bytes(), PageState::ReadOnly, &mut inner.pool);
        }
    }

    /// Walk the log to the next `Sync` record, applying update records
    /// and indexing own diffs along the way; then apply the sync's
    /// notices and prefetch the named pages.
    fn advance_to_sync(&mut self, inner: &mut NodeInner, expected: SyncTag) -> RecoveryStep {
        // Phase 1: scan records for this step (one sequential disk read).
        let start = self.replay.as_ref().map_or(0, |r| r.cursor);
        let mut batch_bytes = 0usize;
        let mut updates: Vec<(IntervalId, Vec<PageId>)> = Vec::new();
        let mut sync: Option<(Vec<WriteNotice>, VClock)> = None;
        {
            let replay = self.replay.as_mut().expect("not in recovery");
            let me = inner.me() as u32;
            while let Some((rec, size)) = replay.records.get(replay.cursor) {
                batch_bytes += size;
                replay.cursor += 1;
                match rec {
                    CclRecord::Updates { writer, pages } => {
                        updates.push((*writer, pages.clone()));
                    }
                    CclRecord::Diffs { interval, diffs } => {
                        debug_assert_eq!(interval.node, me, "foreign diffs in own log");
                        for d in diffs {
                            replay.notices_seen.push(WriteNotice {
                                page: d.page,
                                interval: *interval,
                            });
                            replay.own_diffs.insert((d.page, interval.seq), d.clone());
                        }
                    }
                    CclRecord::Sync { tag, notices, vc } => {
                        assert_eq!(*tag, expected, "CCL replay drift at {expected:?}");
                        sync = Some((notices.clone(), vc.clone()));
                        break;
                    }
                }
            }
        }
        if batch_bytes > 0 {
            // One sequential log read per replayed interval (bandwidth
            // plus a syscall, no seek: the log is scanned in order).
            let _ = inner.ctx.disk.read_cost(batch_bytes); // counters
            let cost =
                inner.ctx.disk.model().drain_time(batch_bytes) + SimDuration::from_micros(20);
            inner.ctx.charge_disk(cost);
        }
        let Some((notices, vc)) = sync else {
            // Log exhausted: pre-crash state reached. (The cursor can
            // only run out at a step boundary because flushes cover
            // whole intervals.)
            let _ = start;
            self.replay = None;
            return RecoveryStep::LogExhausted;
        };

        // Phase 2: collect the recorded home-copy updates for this
        // interval; they are fetched together with the remote-copy
        // patches below, in a single parallel wave.
        let mut home_wants: HashMap<PageId, Vec<IntervalId>> = HashMap::new();
        for (writer, pages) in &updates {
            for p in pages {
                home_wants.entry(*p).or_default().push(*writer);
            }
        }

        // Phase 3: close the re-executed interval and apply the logged
        // notices. During recovery no copy is invalidated (the paper:
        // the scheme "obviates the need of memory invalidation"):
        // instead, every *cached* copy named by a notice is patched in
        // place with that interval's logged diff, fetched from the
        // writer's log — incremental and issued in parallel, so each
        // diff crosses the network exactly once over the whole replay.
        inner.replay_close_interval();
        let me = inner.me() as u32;
        let vc_before = inner.vc.clone();
        let mut fresh: Vec<hlrc::WriteNotice> = Vec::new();
        for n in &notices {
            if vc_before.covers(n.interval) || fresh.contains(n) {
                continue;
            }
            fresh.push(*n);
            inner.vc.observe(n.interval);
            inner.history.push(*n);
        }
        inner.vc.join(&vc);
        {
            let replay = self.replay.as_mut().expect("not in recovery");
            replay.notices_seen.extend(fresh.iter().copied());
        }
        if let SyncTag::Barrier(_) = expected {
            inner.last_barrier_vc = inner.vc.clone();
            let lb = inner.last_barrier_vc.clone();
            inner.history.retain(|n| !lb.covers(n.interval));
        }
        if self.prefetch {
            // One combined fetch wave: this interval's home-copy updates
            // plus the patches for every resident remote copy.
            let mut wants: HashMap<PageId, Vec<IntervalId>> = HashMap::new();
            let mut first_touch: Vec<PageId> = Vec::new();
            for n in &fresh {
                if n.interval.node == me || inner.pages.is_home(n.page) {
                    continue;
                }
                if inner.pages.entry(n.page).frame.is_some() {
                    wants.entry(n.page).or_default().push(n.interval);
                } else {
                    first_touch.push(n.page);
                }
            }
            let mut combined = home_wants.clone();
            for (p, ivs) in &wants {
                combined.entry(*p).or_default().extend(ivs.iter().copied());
            }
            let diffs = self.fetch_logged_diffs(inner, &combined);
            for (page, writers) in &home_wants {
                for iv in writers {
                    if let Some(d) = diffs.get(&(*page, *iv)) {
                        inner.ctx.charge_copy(d.payload_bytes());
                        inner.pages.apply_home_diff(d, *iv);
                    }
                }
            }
            for (page, ivs) in &wants {
                for iv in ivs {
                    if let Some(d) = diffs.get(&(*page, *iv)) {
                        inner.ctx.charge_copy(d.payload_bytes());
                        let frame = inner
                            .pages
                            .entry_mut(*page)
                            .frame
                            .as_mut()
                            .expect("patched page lost its frame");
                        d.apply(frame);
                    }
                }
            }
            // Pages named by notices but not yet resident are
            // reconstructed now, in parallel — the paper's prefetch
            // "according to the future shared memory access patterns".
            first_touch.sort_unstable();
            first_touch.dedup();
            first_touch.retain(|p| inner.pages.entry(*p).frame.is_none());
            self.prefetch_pages(inner, &first_touch);
        } else {
            // Ablation A2: apply the home updates, then fall back to
            // invalidation + on-demand reconstruction at the next fault.
            if !home_wants.is_empty() {
                let diffs = self.fetch_logged_diffs(inner, &home_wants);
                for (page, writers) in &home_wants {
                    for iv in writers {
                        if let Some(d) = diffs.get(&(*page, *iv)) {
                            inner.ctx.charge_copy(d.payload_bytes());
                            inner.pages.apply_home_diff(d, *iv);
                        }
                    }
                }
            }
            for n in &fresh {
                if n.interval.node != me && !inner.pages.is_home(n.page) {
                    inner.pages.invalidate(n.page, &mut inner.pool);
                }
            }
        }

        inner.ctx.trace(TraceKind::RecoveryReplay {
            notices: fresh.len() as u32,
        });
        // Eagerly leave recovery when the log is fully consumed.
        if self
            .replay
            .as_ref()
            .is_some_and(|r| r.cursor >= r.records.len())
        {
            self.replay = None;
        }
        RecoveryStep::Replayed
    }
}

impl Default for CclLogger {
    fn default() -> Self {
        CclLogger::new()
    }
}

impl FaultTolerance for CclLogger {
    fn name(&self) -> &'static str {
        match (self.overlap, self.prefetch) {
            (true, true) => "ccl",
            (false, _) => "ccl-no-overlap",
            (true, false) => "ccl-no-prefetch",
        }
    }

    fn needs_home_write_twins(&self) -> bool {
        true
    }

    fn logs_home_diffs_durably(&self) -> bool {
        self.durable_home_diffs
    }

    fn on_notices(
        &mut self,
        inner: &mut NodeInner,
        kind: SyncKind,
        notices: &[WriteNotice],
        vc: &VClock,
    ) {
        let tag = match kind {
            SyncKind::Acquire(l) => SyncTag::Acquire(l),
            SyncKind::Barrier(e) => SyncTag::Barrier(e),
            SyncKind::Release(_) => unreachable!("notices never arrive at a release"),
        };
        self.stage(
            inner,
            CclRecord::Sync {
                tag,
                notices: notices.to_vec(),
                vc: vc.clone(),
            },
        );
        // Flush at barrier completion so a barrier-aligned crash finds
        // the episode's notices on disk (lock-acquire notices keep the
        // paper's schedule: flushed at the subsequent release). The
        // access is asynchronous: the disk drains it while the node
        // computes; it is durable long before the next barrier.
        if matches!(kind, SyncKind::Barrier(_)) {
            let (cpu, drain) = self.flush_staged(inner);
            if drain > SimDuration::ZERO {
                if self.overlap {
                    inner.ctx.charge_disk(cpu);
                    let start = inner.ctx.now().max(self.disk_free_at);
                    self.disk_free_at = start + drain;
                    inner.ctx.stats.disk_time_overlapped += drain;
                } else {
                    // Ablation A1: no latency tolerance anywhere —
                    // write-through with the full access cost.
                    let d = cpu + inner.ctx.disk.model().access_latency + drain;
                    inner.ctx.charge_disk(d);
                }
            }
        }
    }

    fn on_updates_applied(&mut self, inner: &mut NodeInner, writer: IntervalId, pages: &[PageId]) {
        self.stage(
            inner,
            CclRecord::Updates {
                writer,
                pages: pages.to_vec(),
            },
        );
    }

    fn on_diffs_created(
        &mut self,
        inner: &mut NodeInner,
        interval: IntervalId,
        diffs: &[PageDiff],
    ) {
        if !diffs.is_empty() {
            self.stage(
                inner,
                CclRecord::Diffs {
                    interval,
                    diffs: diffs.to_vec(),
                },
            );
        }
    }

    fn on_home_diffs(&mut self, inner: &mut NodeInner, interval: IntervalId, diffs: &[PageDiff]) {
        for d in diffs {
            self.home_diff_cache
                .insert((d.page, interval.seq), d.clone());
        }
        if self.durable_home_diffs && !diffs.is_empty() {
            // Multi-failure mode: a recovering peer can no longer
            // assume this writer survived, so its home-write diffs must
            // reach stable storage like remote-write diffs do.
            self.stage(
                inner,
                CclRecord::Diffs {
                    interval,
                    diffs: diffs.to_vec(),
                },
            );
        }
    }

    fn flush_after_send(&mut self, inner: &mut NodeInner) -> (SimDuration, bool) {
        let (cpu, drain) = self.flush_staged(inner);
        if drain == SimDuration::ZERO {
            return (SimDuration::ZERO, self.overlap);
        }
        let now = inner.ctx.now();
        if self.overlap {
            // Asynchronous write-behind: the device drains the flush
            // while the node waits for its diff acks and computes on
            // (the paper's latency-tolerance technique). The visible
            // cost is the write() copy plus backpressure when the
            // previous flush has not finished draining.
            let backpressure = self.disk_free_at.saturating_since(now);
            let start = now.max(self.disk_free_at);
            self.disk_free_at = start + drain;
            inner.ctx.stats.disk_time_overlapped += drain;
            (cpu + backpressure, false)
        } else {
            // Ablation A1: write-through — the flush seeks and drains
            // synchronously on the critical path before the node may
            // proceed (no write-behind, no overlap).
            (cpu + inner.ctx.disk.model().access_latency + drain, false)
        }
    }

    fn begin_recovery(&mut self, inner: &mut NodeInner) {
        inner.ctx.trace(TraceKind::RecoveryBegin);
        self.staged.clear();
        self.staged_bytes = 0;
        self.diff_index.clear();
        self.home_diff_cache.clear();
        if self.degraded || inner.ctx.disk.has_failed() {
            // The log device died before the crash. Replay whatever
            // prefix made it to stable storage; the tail of the
            // pre-crash execution is simply re-executed live.
            self.degraded = true;
            inner.ctx.trace(TraceKind::RecoveryDegraded);
        }
        self.restored_app = crate::checkpoint::restore_meta(inner);
        let raw = inner.ctx.disk.peek_stream(CCL_STREAM).to_vec();
        let mut records = Vec::with_capacity(raw.len());
        for (pos, bytes) in raw.iter().enumerate() {
            let rec = CclRecord::decode_from_slice(bytes).expect("corrupt CCL log record");
            // Rebuild the survivor-service index as a side effect.
            if let CclRecord::Diffs { interval, diffs } = &rec {
                for d in diffs {
                    self.diff_index.insert((d.page, interval.seq), pos);
                }
            }
            records.push((rec, bytes.len()));
        }
        self.replay = Some(CclReplay {
            records,
            cursor: 0,
            notices_seen: Vec::new(),
            own_diffs: HashMap::new(),
        });
        if self.replay.as_ref().is_some_and(|r| r.records.is_empty()) {
            // Nothing was ever logged (crash before the first flush).
            self.replay = None;
        }
    }

    fn restored_app_state(&mut self) -> Option<Vec<u8>> {
        self.restored_app.take()
    }

    fn on_checkpoint(&mut self, inner: &mut NodeInner) {
        if inner.ctx.disk.has_failed() {
            // The checkpoint could not be persisted: the existing log
            // prefix is still the only recovery data and must be kept.
            return;
        }
        self.staged.clear();
        self.staged_bytes = 0;
        self.diff_index.clear();
        self.home_diff_cache.clear();
        self.serve_cache = None;
        inner.ctx.disk.truncate(CCL_STREAM);
    }

    fn in_recovery(&self) -> bool {
        self.replay.is_some()
    }

    fn recovery_acquire(&mut self, inner: &mut NodeInner, lock: u32) -> RecoveryStep {
        self.advance_to_sync(inner, SyncTag::Acquire(lock))
    }

    fn recovery_barrier(&mut self, inner: &mut NodeInner, epoch: u32) -> RecoveryStep {
        self.advance_to_sync(inner, SyncTag::Barrier(epoch))
    }

    fn recovery_fault(
        &mut self,
        inner: &mut NodeInner,
        page: PageId,
        _write: bool,
    ) -> RecoveryStep {
        // First-touch pages have no notice and therefore were not
        // prefetched; reconstruct on demand.
        self.prefetch_pages(inner, &[page]);
        RecoveryStep::Replayed
    }

    fn serve_logged_diffs(&mut self, inner: &mut NodeInner, env: &Envelope<Msg>) {
        let Msg::LoggedDiffRequest { page, seqs } = &env.payload else {
            return;
        };
        let me = inner.me() as u32;
        // First request from a recovering peer: read the whole log back
        // into memory with one sequential scan; everything after that is
        // served at memory speed.
        let mut disk_cost = SimDuration::ZERO;
        if self.serve_cache.is_none() {
            let mut cache: HashMap<(PageId, u32), PageDiff> = HashMap::new();
            let mut total = 0usize;
            let raw = inner.ctx.disk.peek_stream(CCL_STREAM).to_vec();
            for bytes in &raw {
                total += bytes.len();
                let rec = CclRecord::decode_from_slice(bytes).expect("corrupt CCL log record");
                if let CclRecord::Diffs { interval, diffs } = rec {
                    for d in diffs {
                        cache.insert((d.page, interval.seq), d);
                    }
                }
            }
            disk_cost =
                inner.ctx.disk.model().access_latency + inner.ctx.disk.model().drain_time(total);
            let _ = inner.ctx.disk.read_cost(total); // counters
            self.serve_cache = Some(cache);
        }
        let cache = self.serve_cache.as_ref().expect("just built");
        let mut out: Vec<(IntervalId, PageDiff)> = Vec::new();
        for &seq in seqs {
            // Remote-write diffs come from the (cached) stable log;
            // home-write diffs from the volatile home cache. A miss in
            // both means a silent write whose diff was empty.
            if let Some(d) = cache.get(&(*page, seq)) {
                out.push((IntervalId { node: me, seq }, d.clone()));
            } else if let Some(d) = self.home_diff_cache.get(&(*page, seq)) {
                out.push((IntervalId { node: me, seq }, d.clone()));
            }
        }
        let payload: usize = out.iter().map(|(_, d)| d.encoded_size()).sum();
        let done = inner.ctx.service_time(env) + disk_cost + inner.ctx.cost.cpu.copy(payload);
        inner
            .ctx
            .send_from(
                done,
                env.src,
                Msg::LoggedDiffReply {
                    page: *page,
                    diffs: out,
                },
            )
            .expect("send logged diff reply");
    }
}
