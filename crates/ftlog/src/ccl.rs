//! Coherence-centric logging (CCL) and prefetch-based recovery — the
//! paper's contribution (§3.2).
//!
//! Failure-free logging records only what recovery cannot re-derive:
//!
//! * incoming write-invalidation notices (with the piggybacked clock),
//! * *records* of incoming updates applied at this home (writer + pages,
//!   never the diff contents),
//! * the diffs this node itself produced at the end of each interval.
//!
//! Fetched page copies are **not** logged — they are reconstructible.
//! The log flush is issued right after the diffs are sent to their home
//! nodes, so the disk access overlaps the diff round-trips; only the
//! residual (if the disk is slower than the network) lands on the
//! critical path.
//!
//! Recovery replays sync events from the (small) local log: at the
//! beginning of each interval it re-applies the recorded incoming
//! updates to its home copies (fetching the diffs from the writers'
//! stable logs) and *prefetches* every remote copy named by the logged
//! notices — reconstructing from the home's checkpoint base plus logged
//! diffs whenever the live home copy has already advanced past the
//! interval being replayed. Page faults during replay are thereby
//! (almost entirely) eliminated.

use std::collections::HashMap;

use hlrc::{FaultTolerance, Msg, NodeInner, RecoveryStep, SyncKind, WriteNotice};
use pagemem::{Decode, Encode, IntervalId, PageDiff, PageId, PageState, VClock};
use simnet::{Envelope, LogObj, SimDuration, SimTime, TraceKind};

use crate::frame;
use crate::log_record::{CclRecord, SyncTag};

/// Stable-storage stream holding the coherence-centric log.
pub const CCL_STREAM: &str = "ccl.log";

/// In-memory replay state (rebuilt from the stable log after a crash).
struct CclReplay {
    /// Decoded records with their encoded sizes (for per-interval read
    /// charging).
    records: Vec<(CclRecord, usize)>,
    cursor: usize,
    /// Every write notice encountered so far, in replay order — received
    /// ones from `Sync` records and this node's own (derived from its
    /// `Diffs` records). Reconstruction applies diffs in this order.
    notices_seen: Vec<WriteNotice>,
    /// Own logged diffs passed by the cursor: (page, interval seq) → diff.
    own_diffs: HashMap<(PageId, u32), PageDiff>,
}

/// Coherence-centric logging.
pub struct CclLogger {
    /// Overlap the log flush with the diff round-trip (the paper's
    /// latency-tolerance technique). `false` gives the ablation variant.
    overlap: bool,
    /// Prefetch noticed pages at each replayed interval (the paper's
    /// recovery optimization). `false` leaves faults to reconstruct
    /// on demand (ablation A2).
    prefetch: bool,
    /// When the disk finishes the most recently issued asynchronous
    /// flush. CCL issues flushes and lets them drain in the background
    /// (the paper's latency-tolerance technique); a later flush queues
    /// behind an unfinished one.
    disk_free_at: SimTime,
    staged: Vec<CclRecord>,
    staged_bytes: usize,
    /// (page, own interval seq) → record index in the stable log, used
    /// to serve recovering peers' `LoggedDiffRequest`s.
    diff_index: HashMap<(PageId, u32), usize>,
    /// Volatile cache of this node's home-write diffs, keyed by
    /// (page, own interval seq). Served to recovering peers; never
    /// flushed (a peer's recovery implies this node survived).
    home_diff_cache: HashMap<(PageId, u32), PageDiff>,
    replay: Option<CclReplay>,
    restored_app: Option<Vec<u8>>,
    /// Survivor-side in-memory image of the logged diffs, loaded with a
    /// single sequential log read the first time a recovering peer asks
    /// for one; later requests are served at memory speed.
    serve_cache: Option<HashMap<(PageId, u32), PageDiff>>,
    /// Also log home-write diffs (as ordinary `Diffs` records). Single-
    /// failure CCL keeps them volatile — a peer's recovery implies this
    /// node survived — but under a multi-failure spec that assumption
    /// breaks, so the runner enables this mode when more than one crash
    /// is scheduled.
    durable_home_diffs: bool,
    /// The log device failed permanently: logging has stopped and a
    /// later crash replays only the persisted prefix, re-executing the
    /// rest live (degraded recovery).
    degraded: bool,
    /// Stream epoch stamped into every frame; bumped at each log
    /// truncation so stale records can never join the new log.
    epoch: u32,
    /// The device is at capacity: the last flush was refused and
    /// logging is paused until a checkpoint truncates the log. A crash
    /// meanwhile replays the persisted prefix, then re-executes live.
    paused_full: bool,
    /// Set by [`CclLogger::begin_recovery`] when the salvage scan found
    /// the log damaged (or gone): replay could not reconstruct every
    /// update the cluster saw this node apply, so
    /// [`FaultTolerance::finish_recovery`] must repair the home copies
    /// before any deferred peer request is served.
    needs_repair: bool,
    /// Release history fetched once from the barrier manager at
    /// [`CclLogger::begin_recovery`] (to synthesize lost barrier `Sync`
    /// records) and reused by the home-repair wave at recovery exit, so
    /// a damaged-log recovery costs a single history round trip.
    saved_releases: Option<Vec<hlrc::EpochRelease>>,
}

impl CclLogger {
    /// CCL as published (flush overlapped with communication).
    pub fn new() -> CclLogger {
        CclLogger {
            overlap: true,
            prefetch: true,
            disk_free_at: SimTime::ZERO,
            staged: Vec::new(),
            staged_bytes: 0,
            diff_index: HashMap::new(),
            home_diff_cache: HashMap::new(),
            replay: None,
            restored_app: None,
            serve_cache: None,
            durable_home_diffs: false,
            degraded: false,
            epoch: 0,
            paused_full: false,
            needs_repair: false,
            saved_releases: None,
        }
    }

    /// Ablation variant: identical log contents, but the flush is
    /// charged serially like ML's.
    pub fn without_overlap() -> CclLogger {
        CclLogger {
            overlap: false,
            ..CclLogger::new()
        }
    }

    /// Ablation variant: recovery reconstructs pages only on faults,
    /// without the per-interval prefetch.
    pub fn without_prefetch() -> CclLogger {
        CclLogger {
            prefetch: false,
            ..CclLogger::new()
        }
    }

    /// Multi-failure variant: home-write diffs go to the stable log too
    /// (see [`durable_home_diffs`](field@CclLogger::durable_home_diffs)).
    pub fn with_durable_home_diffs(mut self) -> CclLogger {
        self.durable_home_diffs = true;
        self
    }

    /// True once the log device has failed permanently.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn stage(&mut self, inner: &mut NodeInner, rec: CclRecord) {
        if self.degraded || self.paused_full {
            return;
        }
        // Staged-byte accounting uses the exact framed size mirror so
        // Table 2 log bytes include the on-disk header overhead without
        // a second encode pass.
        let bytes = frame::framed_size(rec.encoded_size());
        trace_ccl_append(inner, &rec, bytes as u64);
        self.staged_bytes += bytes;
        self.staged.push(rec);
    }

    /// Encode and write the staged records through the OS cache,
    /// returning `(cpu_copy_cost, device_drain_time)`.
    fn flush_staged(&mut self, inner: &mut NodeInner) -> (SimDuration, SimDuration) {
        if self.degraded || self.paused_full {
            // The device is gone (or full); drop anything staged.
            self.staged.clear();
            self.staged_bytes = 0;
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        if self.staged.is_empty() {
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        let bytes = self.staged_bytes;
        let base_pos = inner.ctx.disk.record_count(CCL_STREAM);
        let mut encoded = Vec::with_capacity(self.staged.len());
        let mut indexed: Vec<((PageId, u32), usize, PageDiff)> = Vec::new();
        for (pos, rec) in (base_pos..).zip(self.staged.drain(..)) {
            if let CclRecord::Diffs { interval, diffs } = &rec {
                for d in diffs {
                    // Indexed only once the write is known durable.
                    indexed.push(((d.page, interval.seq), pos, d.clone()));
                }
            }
            let payload = rec.encode_to_sized_vec();
            encoded.push(frame::frame_record(self.epoch, pos as u32, &payload));
        }
        self.staged_bytes = 0;
        let retries_before = inner.ctx.disk.counters().write_retries;
        let _ = inner.ctx.disk.flush_records(CCL_STREAM, encoded);
        if inner.ctx.disk.has_failed() {
            // Permanent device failure: the batch (and its would-be
            // index entries) is lost and logging stops for good. The
            // futile access that discovered the failure is charged
            // here; callers account only for successful flushes.
            self.degraded = true;
            inner.ctx.trace(TraceKind::LogDeviceFailed);
            let futile = inner.ctx.disk.model().write_time(0);
            inner.ctx.charge_disk(futile);
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        if inner.ctx.disk.is_full() {
            // ENOSPC: the batch (and its would-be index entries) was
            // refused whole. Logging pauses — appending a later batch
            // over the gap would poison replay — until a coordinated
            // checkpoint truncates the log. A crash meanwhile degrades
            // gracefully to prefix replay + live re-execution.
            self.paused_full = true;
            inner.ctx.trace(TraceKind::LogDeviceFull);
            let futile = inner.ctx.disk.model().write_time(0);
            inner.ctx.charge_disk(futile);
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        for (key, pos, d) in indexed {
            self.diff_index.insert(key, pos);
            // Keep the survivor-side serve cache coherent incrementally
            // instead of rebuilding it from disk.
            if let Some(cache) = self.serve_cache.as_mut() {
                cache.insert(key, d);
            }
        }
        let mut drain = inner.ctx.disk.model().drain_time(bytes);
        if inner.ctx.disk.counters().write_retries > retries_before {
            // A transient write fault: the device wrote the batch twice.
            drain = drain + drain;
        }
        inner.ctx.stats.log_flushes += 1;
        inner.ctx.stats.log_bytes += bytes as u64;
        inner.ctx.metrics.flush_bytes.record(bytes as u64);
        inner.ctx.trace(TraceKind::LogFlush {
            bytes: bytes as u64,
            overlapped: self.overlap,
        });
        (inner.ctx.disk.model().buffered_write_cost(bytes), drain)
    }

    /// Block until a message matching `pred` arrives, deferring other
    /// traffic — except recovery-class requests from peers, which are
    /// answered on the spot from stable state. Two nodes recovering
    /// concurrently block in each other's fetch waves; deferring each
    /// other's requests here would deadlock the pair.
    fn recovery_wait<F: Fn(&Msg) -> bool>(
        &mut self,
        inner: &mut NodeInner,
        pred: F,
    ) -> Envelope<Msg> {
        loop {
            let env = inner.ctx.recv().expect("cluster channel closed");
            if pred(&env.payload) {
                inner.ctx.absorb(&env);
                return env;
            }
            match &env.payload {
                Msg::LoggedDiffRequest { .. } => self.serve_logged_diffs(inner, &env),
                Msg::RecoveryPageRequest { .. } => {
                    let done = inner.ctx.service_time(&env);
                    inner.serve_recovery_page(&env, done, true, true, self.durable_home_diffs);
                }
                Msg::ReleaseHistoryRequest => {
                    let done = inner.ctx.service_time(&env);
                    inner.serve_release_history(&env, done);
                }
                _ => inner.ctx.defer(env),
            }
        }
    }

    /// Fetch logged diffs for every `(page, intervals)` entry — from the
    /// writers' stable logs over the network and from this node's own
    /// log locally — with all remote requests issued in parallel.
    fn fetch_logged_diffs(
        &mut self,
        inner: &mut NodeInner,
        wants: &HashMap<PageId, Vec<IntervalId>>,
    ) -> HashMap<(PageId, IntervalId), PageDiff> {
        let me = inner.me() as u32;
        let replay = self.replay.as_ref().expect("fetch outside recovery");
        let mut found: HashMap<(PageId, IntervalId), PageDiff> = HashMap::new();
        let mut outstanding = 0usize;
        // Request in (page, writer) order: these iterations feed sends,
        // so they must not inherit HashMap iteration order.
        let mut pages: Vec<_> = wants.iter().collect();
        pages.sort_unstable_by_key(|(page, _)| **page);
        for (page, ivs) in pages {
            let mut per_writer: HashMap<u32, Vec<u32>> = HashMap::new();
            for iv in ivs {
                if iv.node == me {
                    // Own diffs come from the local log (already read
                    // while the replay cursor passed them).
                    if let Some(d) = replay.own_diffs.get(&(*page, iv.seq)) {
                        found.insert((*page, *iv), d.clone());
                    }
                } else {
                    per_writer.entry(iv.node).or_default().push(iv.seq);
                }
            }
            let mut per_writer: Vec<_> = per_writer.into_iter().collect();
            per_writer.sort_unstable_by_key(|(writer, _)| *writer);
            for (writer, seqs) in per_writer {
                inner
                    .ctx
                    .send(
                        writer as usize,
                        Msg::LoggedDiffRequest { page: *page, seqs },
                    )
                    .expect("send logged diff request");
                outstanding += 1;
            }
        }
        for _ in 0..outstanding {
            let env = self.recovery_wait(inner, |m| matches!(m, Msg::LoggedDiffReply { .. }));
            if let Msg::LoggedDiffReply { page, diffs } = env.payload {
                for (iv, d) in diffs {
                    inner.ctx.charge_copy(d.encoded_size());
                    found.insert((page, iv), d);
                }
            }
        }
        found
    }

    /// The barrier manager's retained release history: read locally when
    /// this node *is* the manager, fetched over the network otherwise —
    /// but at most once per recovery ([`CclLogger::begin_recovery`]
    /// caches it in `saved_releases` for the repair wave to take). A
    /// crashed manager lost its history and answers with an empty list;
    /// every consumer degrades gracefully on that.
    fn fetch_release_history(&mut self, inner: &mut NodeInner) -> Vec<hlrc::EpochRelease> {
        if let Some(releases) = self.saved_releases.take() {
            return releases;
        }
        let mgr = inner.cfg.barrier_manager();
        if mgr == inner.me() {
            inner
                .barrier_mgr
                .as_ref()
                .map(|m| m.release_history())
                .unwrap_or_default()
        } else {
            inner
                .ctx
                .send(mgr, Msg::ReleaseHistoryRequest)
                .expect("send release history request");
            let env = self.recovery_wait(inner, |m| matches!(m, Msg::ReleaseHistoryReply { .. }));
            let Msg::ReleaseHistoryReply { releases } = env.payload else {
                unreachable!("waited for a release history reply");
            };
            releases
        }
    }

    /// Home-repair wave, run once at recovery exit when the salvage
    /// scan found the log damaged. A torn or rotten tail may have taken
    /// `Updates` records with it — updates this home *applied and
    /// acked* before the crash, which replay therefore could not
    /// reconstruct, leaving the home copies stale. The writers' own
    /// stable logs still hold those diffs (a CCL ack never releases
    /// them), so the lost updates are recoverable: replay the barrier
    /// manager's retained release history against the restored home
    /// versions, refetch every uncovered foreign interval from its
    /// writer's log, and re-apply in history order (each writer's
    /// notices are causally ordered there, and concurrent writers touch
    /// disjoint words under DRF, so that order is a valid
    /// linearization). A crashed manager answers with an empty history
    /// and the wave degrades to a no-op — single-failure best effort,
    /// like the rest of the recovery path.
    fn repair_home_pages(&mut self, inner: &mut NodeInner) {
        let me = inner.me();
        let releases = self.fetch_release_history(inner);
        // Foreign-interval notices naming pages homed here that the
        // restored home version does not cover: exactly the updates the
        // damaged log lost.
        let mut missing: Vec<WriteNotice> = Vec::new();
        for (_epoch, _vc, notices, _migrations) in &releases {
            for n in notices {
                if n.interval.node as usize == me
                    || !inner.pages.is_home(n.page)
                    || missing.contains(n)
                {
                    continue;
                }
                let covered = inner
                    .pages
                    .entry(n.page)
                    .version
                    .as_ref()
                    .expect("home version")
                    .covers(n.interval);
                if !covered {
                    missing.push(*n);
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        // Refetch from the writers' stable logs, all requests in
        // parallel, in deterministic (page, writer) order.
        let mut per_writer: HashMap<(PageId, u32), Vec<u32>> = HashMap::new();
        for n in &missing {
            per_writer
                .entry((n.page, n.interval.node))
                .or_default()
                .push(n.interval.seq);
        }
        let mut per_writer: Vec<_> = per_writer.into_iter().collect();
        per_writer.sort_unstable_by_key(|((page, writer), _)| (*page, *writer));
        let outstanding = per_writer.len();
        for ((page, writer), seqs) in per_writer {
            inner
                .ctx
                .send(writer as usize, Msg::LoggedDiffRequest { page, seqs })
                .expect("send logged diff request");
        }
        let mut fetched: HashMap<(PageId, IntervalId), PageDiff> = HashMap::new();
        for _ in 0..outstanding {
            let env = self.recovery_wait(inner, |m| matches!(m, Msg::LoggedDiffReply { .. }));
            if let Msg::LoggedDiffReply { page, diffs } = env.payload {
                for (iv, d) in diffs {
                    inner.ctx.charge_copy(d.encoded_size());
                    fetched.insert((page, iv), d);
                }
            }
        }
        let mut applied = 0u32;
        for n in &missing {
            if let Some(d) = fetched.get(&(n.page, n.interval)) {
                inner.ctx.charge_copy(d.payload_bytes());
                inner.pages.apply_home_diff(d, n.interval);
                applied += 1;
            } else {
                // A miss in the writer's log means the interval's diff
                // for this page was silently empty: observe it so the
                // version honestly names what the copy contains.
                inner
                    .pages
                    .entry_mut(n.page)
                    .version
                    .as_mut()
                    .expect("home version")
                    .observe(n.interval);
            }
        }
        inner.ctx.trace(TraceKind::HomeRepair {
            notices: missing.len() as u32,
            diffs: applied,
        });
    }

    /// Reconstruct remote copies of `pages` (paper: "prefetching data
    /// according to the future shared memory access patterns"): one
    /// recovery-page round trip per page, issued in parallel, plus
    /// logged-diff fetches for the copies whose home has advanced.
    fn prefetch_pages(&mut self, inner: &mut NodeInner, pages: &[PageId]) {
        if pages.is_empty() {
            return;
        }
        let required = inner.vc.clone();
        for &p in pages {
            let home = inner.pages.entry(p).home;
            inner
                .ctx
                .send(
                    home,
                    Msg::RecoveryPageRequest {
                        page: p,
                        required: required.clone(),
                    },
                )
                .expect("send recovery page request");
        }
        let mut advanced: Vec<(PageId, pagemem::SharedBytes, VClock)> = Vec::new();
        for _ in 0..pages.len() {
            let env = self.recovery_wait(
                inner,
                |m| matches!(m, Msg::RecoveryPageReply { page, .. } if pages.contains(page)),
            );
            if let Msg::RecoveryPageReply {
                page,
                advanced: adv,
                data,
                version,
            } = env.payload
            {
                inner.ctx.charge_copy(data.len());
                if adv {
                    advanced.push((page, data, version));
                } else {
                    inner
                        .pages
                        .install_copy(page, &data, PageState::ReadOnly, &mut inner.pool);
                }
            }
        }
        // Homes that ran ahead: patch their checkpoint base with the
        // logged diffs named by the notices replayed so far — one
        // parallel fetch wave for all of them.
        if advanced.is_empty() {
            return;
        }
        let mut wants: HashMap<PageId, Vec<IntervalId>> = HashMap::new();
        {
            let replay = self.replay.as_ref().expect("reconstruct outside recovery");
            for (page, _, base_version) in &advanced {
                let ivs: Vec<IntervalId> = replay
                    .notices_seen
                    .iter()
                    .filter(|n| n.page == *page && !base_version.covers(n.interval))
                    .map(|n| n.interval)
                    .collect();
                wants.insert(*page, ivs);
            }
        }
        let diffs = self.fetch_logged_diffs(inner, &wants);
        for (page, base, _) in advanced {
            let mut frame = pagemem::PageFrame::from_bytes(&base);
            for iv in &wants[&page] {
                if let Some(d) = diffs.get(&(page, *iv)) {
                    inner.ctx.charge_copy(d.payload_bytes());
                    d.apply(&mut frame);
                }
            }
            inner
                .pages
                .install_copy(page, frame.bytes(), PageState::ReadOnly, &mut inner.pool);
        }
    }

    /// Walk the log to the next `Sync` record, applying update records
    /// and indexing own diffs along the way; then apply the sync's
    /// notices and prefetch the named pages.
    fn advance_to_sync(&mut self, inner: &mut NodeInner, expected: SyncTag) -> RecoveryStep {
        // Phase 1: scan records for this step (one sequential disk read).
        let start = self.replay.as_ref().map_or(0, |r| r.cursor);
        let mut batch_bytes = 0usize;
        let mut updates: Vec<(IntervalId, Vec<PageId>)> = Vec::new();
        let mut sync: Option<(Vec<WriteNotice>, VClock)> = None;
        let mut drift = false;
        {
            let replay = self.replay.as_mut().expect("not in recovery");
            let me = inner.me() as u32;
            while let Some((rec, size)) = replay.records.get(replay.cursor) {
                batch_bytes += size;
                replay.cursor += 1;
                match rec {
                    CclRecord::Updates { writer, pages } => {
                        updates.push((*writer, pages.clone()));
                    }
                    CclRecord::Diffs { interval, diffs } => {
                        debug_assert_eq!(interval.node, me, "foreign diffs in own log");
                        for d in diffs {
                            replay.notices_seen.push(WriteNotice {
                                page: d.page,
                                interval: *interval,
                            });
                            replay.own_diffs.insert((d.page, interval.seq), d.clone());
                        }
                    }
                    CclRecord::Sync { tag, notices, vc } => {
                        if *tag != expected {
                            // A real log record disagreeing with the
                            // re-executed sync sequence is a logic bug —
                            // but a *synthesized* barrier record (size 0)
                            // can land here legitimately: mid-log damage
                            // may have discarded acquire records below
                            // the synthesized horizon. Abandon the rest
                            // of the replay and re-execute live; the
                            // home-repair wave still runs at exit.
                            assert_eq!(*size, 0, "CCL replay drift at {expected:?}");
                            drift = true;
                            break;
                        }
                        sync = Some((notices.clone(), vc.clone()));
                        break;
                    }
                }
            }
        }
        if drift {
            self.replay = None;
            return RecoveryStep::LogExhausted;
        }
        if batch_bytes > 0 {
            // One sequential log read per replayed interval (bandwidth
            // plus a syscall, no seek: the log is scanned in order).
            let _ = inner.ctx.disk.read_cost(batch_bytes); // counters
            let cost =
                inner.ctx.disk.model().drain_time(batch_bytes) + SimDuration::from_micros(20);
            inner.ctx.charge_disk(cost);
        }
        let Some((notices, vc)) = sync else {
            // Log exhausted: pre-crash state reached. (The cursor can
            // only run out at a step boundary because flushes cover
            // whole intervals.)
            let _ = start;
            self.replay = None;
            return RecoveryStep::LogExhausted;
        };

        // Phase 2: collect the recorded home-copy updates for this
        // interval; they are fetched together with the remote-copy
        // patches below, in a single parallel wave.
        let mut home_wants: HashMap<PageId, Vec<IntervalId>> = HashMap::new();
        for (writer, pages) in &updates {
            for p in pages {
                home_wants.entry(*p).or_default().push(*writer);
            }
        }

        // Phase 3: close the re-executed interval and apply the logged
        // notices. During recovery no copy is invalidated (the paper:
        // the scheme "obviates the need of memory invalidation"):
        // instead, every *cached* copy named by a notice is patched in
        // place with that interval's logged diff, fetched from the
        // writer's log — incremental and issued in parallel, so each
        // diff crosses the network exactly once over the whole replay.
        inner.replay_close_interval();
        let me = inner.me() as u32;
        let vc_before = inner.vc.clone();
        let mut fresh: Vec<hlrc::WriteNotice> = Vec::new();
        for n in &notices {
            if vc_before.covers(n.interval) || fresh.contains(n) {
                continue;
            }
            fresh.push(*n);
            inner.vc.observe(n.interval);
            inner.history.push(*n);
        }
        inner.vc.join(&vc);
        {
            let replay = self.replay.as_mut().expect("not in recovery");
            replay.notices_seen.extend(fresh.iter().copied());
        }
        if let SyncTag::Barrier(_) = expected {
            inner.last_barrier_vc = inner.vc.clone();
            let lb = inner.last_barrier_vc.clone();
            inner.history.retain(|n| !lb.covers(n.interval));
        }
        if self.prefetch {
            // One combined fetch wave: this interval's home-copy updates
            // plus the patches for every resident remote copy.
            let mut wants: HashMap<PageId, Vec<IntervalId>> = HashMap::new();
            let mut first_touch: Vec<PageId> = Vec::new();
            for n in &fresh {
                if n.interval.node == me || inner.pages.is_home(n.page) {
                    continue;
                }
                if inner.pages.entry(n.page).frame.is_some() {
                    wants.entry(n.page).or_default().push(n.interval);
                } else {
                    first_touch.push(n.page);
                }
            }
            let mut combined = home_wants.clone();
            for (p, ivs) in &wants {
                combined.entry(*p).or_default().extend(ivs.iter().copied());
            }
            let diffs = self.fetch_logged_diffs(inner, &combined);
            for (page, writers) in &home_wants {
                for iv in writers {
                    if let Some(d) = diffs.get(&(*page, *iv)) {
                        inner.ctx.charge_copy(d.payload_bytes());
                        inner.pages.apply_home_diff(d, *iv);
                    }
                }
            }
            for (page, ivs) in &wants {
                for iv in ivs {
                    if let Some(d) = diffs.get(&(*page, *iv)) {
                        inner.ctx.charge_copy(d.payload_bytes());
                        let frame = inner
                            .pages
                            .entry_mut(*page)
                            .frame
                            .as_mut()
                            .expect("patched page lost its frame");
                        d.apply(frame);
                    }
                }
            }
            // Pages named by notices but not yet resident are
            // reconstructed now, in parallel — the paper's prefetch
            // "according to the future shared memory access patterns".
            first_touch.sort_unstable();
            first_touch.dedup();
            first_touch.retain(|p| inner.pages.entry(*p).frame.is_none());
            self.prefetch_pages(inner, &first_touch);
        } else {
            // Ablation A2: apply the home updates, then fall back to
            // invalidation + on-demand reconstruction at the next fault.
            if !home_wants.is_empty() {
                let diffs = self.fetch_logged_diffs(inner, &home_wants);
                for (page, writers) in &home_wants {
                    for iv in writers {
                        if let Some(d) = diffs.get(&(*page, *iv)) {
                            inner.ctx.charge_copy(d.payload_bytes());
                            inner.pages.apply_home_diff(d, *iv);
                        }
                    }
                }
            }
            for n in &fresh {
                if n.interval.node != me && !inner.pages.is_home(n.page) {
                    inner.pages.invalidate(n.page, &mut inner.pool);
                }
            }
        }

        inner.ctx.trace(TraceKind::RecoveryReplay {
            notices: fresh.len() as u32,
        });
        // Eagerly leave recovery when the log is fully consumed.
        if self
            .replay
            .as_ref()
            .is_some_and(|r| r.cursor >= r.records.len())
        {
            self.replay = None;
        }
        RecoveryStep::Replayed
    }
}

/// Emit the `LogAppend` telemetry for one staged CCL record, tagged
/// with the coherence object(s) it is about. Multi-page records
/// (`Updates`, `Diffs`) emit one event per page, bytes split by each
/// page's encoded share with the frame/record overhead assigned to the
/// first, so the events sum exactly to the record's framed size (the
/// blame engine's per-object attribution leans on that exactness).
fn trace_ccl_append(inner: &mut NodeInner, rec: &CclRecord, record_bytes: u64) {
    let mut emit = |bytes: u64, obj: LogObj| inner.ctx.trace(TraceKind::LogAppend { bytes, obj });
    match rec {
        CclRecord::Sync {
            tag: SyncTag::Acquire(lock),
            ..
        } => emit(record_bytes, LogObj::Lock { lock: *lock }),
        CclRecord::Sync {
            tag: SyncTag::Barrier(epoch),
            ..
        } => emit(record_bytes, LogObj::Barrier { epoch: *epoch }),
        CclRecord::Updates { pages, .. } if !pages.is_empty() => {
            // 4 encoded bytes per page id; the rest is record framing.
            let overhead = record_bytes - 4 * pages.len() as u64;
            for (i, &page) in pages.iter().enumerate() {
                let bytes = 4 + if i == 0 { overhead } else { 0 };
                emit(bytes, LogObj::Page { page });
            }
        }
        CclRecord::Diffs { diffs, .. } if !diffs.is_empty() => {
            let shares: Vec<u64> = diffs.iter().map(|d| d.encoded_size() as u64).collect();
            let overhead = record_bytes - shares.iter().sum::<u64>();
            for (i, d) in diffs.iter().enumerate() {
                let bytes = shares[i] + if i == 0 { overhead } else { 0 };
                emit(bytes, LogObj::Page { page: d.page });
            }
        }
        CclRecord::Updates { .. } | CclRecord::Diffs { .. } => emit(record_bytes, LogObj::Meta),
    }
}

impl Default for CclLogger {
    fn default() -> Self {
        CclLogger::new()
    }
}

impl FaultTolerance for CclLogger {
    fn name(&self) -> &'static str {
        match (self.overlap, self.prefetch) {
            (true, true) => "ccl",
            (false, _) => "ccl-no-overlap",
            (true, false) => "ccl-no-prefetch",
        }
    }

    fn needs_home_write_twins(&self) -> bool {
        true
    }

    fn logs_home_diffs_durably(&self) -> bool {
        self.durable_home_diffs
    }

    fn on_notices(
        &mut self,
        inner: &mut NodeInner,
        kind: SyncKind,
        notices: &[WriteNotice],
        vc: &VClock,
    ) {
        let tag = match kind {
            SyncKind::Acquire(l) => SyncTag::Acquire(l),
            SyncKind::Barrier(e) => SyncTag::Barrier(e),
            SyncKind::Release(_) => unreachable!("notices never arrive at a release"),
        };
        self.stage(
            inner,
            CclRecord::Sync {
                tag,
                notices: notices.to_vec(),
                vc: vc.clone(),
            },
        );
        // Flush at barrier completion so a barrier-aligned crash finds
        // the episode's notices on disk (lock-acquire notices keep the
        // paper's schedule: flushed at the subsequent release). The
        // access is asynchronous: the disk drains it while the node
        // computes; it is durable long before the next barrier.
        if matches!(kind, SyncKind::Barrier(_)) {
            let (cpu, drain) = self.flush_staged(inner);
            if drain > SimDuration::ZERO {
                if self.overlap {
                    inner.ctx.charge_disk(cpu);
                    let start = inner.ctx.now().max(self.disk_free_at);
                    self.disk_free_at = start + drain;
                    inner.ctx.stats.disk_time_overlapped += drain;
                } else {
                    // Ablation A1: no latency tolerance anywhere —
                    // write-through with the full access cost.
                    let d = cpu + inner.ctx.disk.model().access_latency + drain;
                    inner.ctx.charge_disk(d);
                }
            }
        }
    }

    fn on_updates_applied(&mut self, inner: &mut NodeInner, writer: IntervalId, pages: &[PageId]) {
        self.stage(
            inner,
            CclRecord::Updates {
                writer,
                pages: pages.to_vec(),
            },
        );
    }

    fn on_diffs_created(
        &mut self,
        inner: &mut NodeInner,
        interval: IntervalId,
        diffs: &[PageDiff],
    ) {
        if !diffs.is_empty() {
            self.stage(
                inner,
                CclRecord::Diffs {
                    interval,
                    diffs: diffs.to_vec(),
                },
            );
        }
    }

    fn on_home_diffs(&mut self, inner: &mut NodeInner, interval: IntervalId, diffs: &[PageDiff]) {
        for d in diffs {
            self.home_diff_cache
                .insert((d.page, interval.seq), d.clone());
        }
        if self.durable_home_diffs && !diffs.is_empty() {
            // Multi-failure mode: a recovering peer can no longer
            // assume this writer survived, so its home-write diffs must
            // reach stable storage like remote-write diffs do.
            self.stage(
                inner,
                CclRecord::Diffs {
                    interval,
                    diffs: diffs.to_vec(),
                },
            );
        }
    }

    fn flush_after_send(&mut self, inner: &mut NodeInner) -> (SimDuration, bool) {
        let (cpu, drain) = self.flush_staged(inner);
        if drain == SimDuration::ZERO {
            return (SimDuration::ZERO, self.overlap);
        }
        let now = inner.ctx.now();
        if self.overlap {
            // Asynchronous write-behind: the device drains the flush
            // while the node waits for its diff acks and computes on
            // (the paper's latency-tolerance technique). The visible
            // cost is the write() copy plus backpressure when the
            // previous flush has not finished draining.
            let backpressure = self.disk_free_at.saturating_since(now);
            let start = now.max(self.disk_free_at);
            self.disk_free_at = start + drain;
            inner.ctx.stats.disk_time_overlapped += drain;
            (cpu + backpressure, false)
        } else {
            // Ablation A1: write-through — the flush seeks and drains
            // synchronously on the critical path before the node may
            // proceed (no write-behind, no overlap).
            (cpu + inner.ctx.disk.model().access_latency + drain, false)
        }
    }

    fn begin_recovery(&mut self, inner: &mut NodeInner) {
        inner.ctx.trace(TraceKind::RecoveryBegin);
        self.staged.clear();
        self.staged_bytes = 0;
        self.diff_index.clear();
        self.home_diff_cache.clear();
        if self.degraded || inner.ctx.disk.has_failed() || self.paused_full {
            // The log device died (or filled) before the crash. Replay
            // whatever prefix made it to stable storage; the tail of
            // the pre-crash execution is simply re-executed live.
            self.degraded = self.degraded || inner.ctx.disk.has_failed();
            inner.ctx.trace(TraceKind::RecoveryDegraded);
        }
        // Salvage scan: verify every frame, adopt the longest valid
        // prefix, and cut the torn/corrupt tail off the stable stream
        // so later appends stay contiguous.
        let s = frame::salvage(inner.ctx.disk.peek_stream(CCL_STREAM));
        let damaged = !s.is_clean();
        // Any lost record may be an `Updates` the cluster already saw
        // this home apply (the writer's ack released nothing — its own
        // stable log still has the diff). Schedule the home-repair wave
        // that refetches those updates before going live.
        self.needs_repair = damaged || self.degraded || self.paused_full;
        let mut payloads = s.payloads;
        if damaged {
            if s.crc_mismatches > 0 {
                inner
                    .ctx
                    .trace(TraceKind::CrcMismatch { stream: CCL_STREAM });
            }
            inner.ctx.trace(TraceKind::TornTailDetected {
                stream: CCL_STREAM,
                salvaged: payloads.len() as u32,
                discarded: s.discarded,
            });
            inner.ctx.disk.truncate_records(CCL_STREAM, payloads.len());
            inner.ctx.trace(TraceKind::LogTruncated {
                stream: CCL_STREAM,
                records: payloads.len() as u32,
            });
        }
        self.epoch = s.epoch;
        let mut meta_rot = false;
        match crate::checkpoint::restore_meta(inner) {
            Ok(app) => self.restored_app = app,
            Err(_) => {
                // The persisted checkpoint metadata is rotten. The log
                // begins at a checkpoint whose protocol state we cannot
                // restore, so neither is usable: discard both and
                // re-execute from scratch instead of panicking.
                inner.ctx.trace(TraceKind::CrcMismatch {
                    stream: crate::checkpoint::CKPT_META,
                });
                inner.ctx.trace(TraceKind::RecoveryDegraded);
                inner.ctx.disk.truncate(crate::checkpoint::CKPT_META);
                inner.ctx.disk.truncate(CCL_STREAM);
                payloads.clear();
                self.epoch += 1;
                self.restored_app = None;
                self.needs_repair = true;
                meta_rot = true;
            }
        }
        let mut records = Vec::with_capacity(payloads.len());
        for (pos, payload) in payloads.iter().enumerate() {
            // The salvage scan CRC-verified every surviving payload, so
            // a decode failure here would be a logic bug, not damage.
            let rec = CclRecord::decode_from_slice(payload).expect("verified CCL log record");
            // Rebuild the survivor-service index as a side effect.
            if let CclRecord::Diffs { interval, diffs } = &rec {
                for d in diffs {
                    self.diff_index.insert((d.page, interval.seq), pos);
                }
            }
            // Replay read charging covers what the device transfers:
            // the framed record, header included.
            records.push((rec, frame::framed_size(payload.len())));
        }
        // A damaged log may have lost the final barrier `Sync` records
        // with its tail. Replaying only the salvaged prefix would end
        // recovery *before* the cluster-visible horizon: deferred peer
        // requests would then be served from home copies the live
        // re-execution has not rewritten yet — and those writes are this
        // node's own, refetchable from nobody. The barrier manager's
        // retained release history holds exactly the lost records'
        // content (epoch, merged clock, merged notices — the very
        // snapshot `on_notices` logged), so synthesize the missing
        // barrier records and replay to the true horizon. Synthesized
        // records carry size 0: nothing is read from disk for them. A
        // crashed manager answers with an empty history and synthesis
        // degrades to a no-op (single-failure best effort).
        self.saved_releases = None;
        if self.needs_repair && !meta_rot {
            let releases = self.fetch_release_history(inner);
            let last_logged = records
                .iter()
                .filter_map(|(rec, _)| match rec {
                    CclRecord::Sync {
                        tag: SyncTag::Barrier(e),
                        ..
                    } => Some(*e),
                    _ => None,
                })
                .max();
            let mut synthesized = 0u32;
            // Migrations in the history are deliberately dropped here:
            // the home mapping is checkpoint state (restored by
            // `restore_meta`, never replayed from the log), so the
            // synthesized records — like real `Sync` records — carry
            // only notices and the clock.
            for (epoch, vc, notices, _migrations) in &releases {
                // Skip epochs the restored checkpoint already covers and
                // epochs the salvaged prefix still has real records for.
                if *epoch < inner.barrier_epoch || last_logged.is_some_and(|e| *epoch <= e) {
                    continue;
                }
                records.push((
                    CclRecord::Sync {
                        tag: SyncTag::Barrier(*epoch),
                        notices: notices.clone(),
                        vc: vc.clone(),
                    },
                    0,
                ));
                synthesized += 1;
            }
            if synthesized > 0 {
                inner.ctx.trace(TraceKind::SyncSynthesized {
                    records: synthesized,
                });
            }
            self.saved_releases = Some(releases);
        }
        self.replay = Some(CclReplay {
            records,
            cursor: 0,
            notices_seen: Vec::new(),
            own_diffs: HashMap::new(),
        });
        if self.replay.as_ref().is_some_and(|r| r.records.is_empty()) {
            // Nothing was ever logged (crash before the first flush).
            self.replay = None;
        }
    }

    fn restored_app_state(&mut self) -> Option<Vec<u8>> {
        self.restored_app.take()
    }

    fn on_checkpoint(&mut self, inner: &mut NodeInner) {
        if inner.ctx.disk.has_failed() {
            // The checkpoint could not be persisted: the existing log
            // prefix is still the only recovery data and must be kept.
            return;
        }
        self.staged.clear();
        self.staged_bytes = 0;
        self.diff_index.clear();
        self.home_diff_cache.clear();
        self.serve_cache = None;
        inner.ctx.disk.truncate(CCL_STREAM);
        // New epoch: stale records from before the truncation can never
        // be mistaken for the new log's.
        self.epoch += 1;
        if self.paused_full && !inner.ctx.disk.is_full() {
            // The truncation freed space: logging resumes cleanly from
            // this checkpoint.
            self.paused_full = false;
        }
    }

    fn in_recovery(&self) -> bool {
        self.replay.is_some()
    }

    fn recovery_acquire(&mut self, inner: &mut NodeInner, lock: u32) -> RecoveryStep {
        self.advance_to_sync(inner, SyncTag::Acquire(lock))
    }

    fn recovery_barrier(&mut self, inner: &mut NodeInner, epoch: u32) -> RecoveryStep {
        self.advance_to_sync(inner, SyncTag::Barrier(epoch))
    }

    fn recovery_fault(
        &mut self,
        inner: &mut NodeInner,
        page: PageId,
        _write: bool,
    ) -> RecoveryStep {
        // First-touch pages have no notice and therefore were not
        // prefetched; reconstruct on demand.
        self.prefetch_pages(inner, &[page]);
        RecoveryStep::Replayed
    }

    fn finish_recovery(&mut self, inner: &mut NodeInner) {
        if std::mem::take(&mut self.needs_repair) {
            self.repair_home_pages(inner);
        }
    }

    fn serve_logged_diffs(&mut self, inner: &mut NodeInner, env: &Envelope<Msg>) {
        let Msg::LoggedDiffRequest { page, seqs } = &env.payload else {
            return;
        };
        let me = inner.me() as u32;
        // First request from a recovering peer: read the whole log back
        // into memory with one sequential scan; everything after that is
        // served at memory speed.
        let mut disk_cost = SimDuration::ZERO;
        if self.serve_cache.is_none() {
            let mut cache: HashMap<(PageId, u32), PageDiff> = HashMap::new();
            let mut total = 0usize;
            // The survivor's own log can carry latent bit rot too: the
            // scan serves only the verified prefix — a miss falls back
            // to the volatile caches, and a diff lost to rot is treated
            // like a silently empty one (the recovering peer's digest
            // check remains the arbiter).
            let s = frame::salvage(inner.ctx.disk.peek_stream(CCL_STREAM));
            if !s.is_clean() {
                inner
                    .ctx
                    .trace(TraceKind::CrcMismatch { stream: CCL_STREAM });
            }
            for payload in &s.payloads {
                total += frame::framed_size(payload.len());
                let rec = CclRecord::decode_from_slice(payload).expect("verified CCL log record");
                if let CclRecord::Diffs { interval, diffs } = rec {
                    for d in diffs {
                        cache.insert((d.page, interval.seq), d);
                    }
                }
            }
            disk_cost =
                inner.ctx.disk.model().access_latency + inner.ctx.disk.model().drain_time(total);
            let _ = inner.ctx.disk.read_cost(total); // counters
            self.serve_cache = Some(cache);
        }
        let cache = self.serve_cache.as_ref().expect("just built");
        let mut out: Vec<(IntervalId, PageDiff)> = Vec::new();
        for &seq in seqs {
            // Remote-write diffs come from the (cached) stable log;
            // home-write diffs from the volatile home cache. A miss in
            // both means a silent write whose diff was empty.
            if let Some(d) = cache.get(&(*page, seq)) {
                out.push((IntervalId { node: me, seq }, d.clone()));
            } else if let Some(d) = self.home_diff_cache.get(&(*page, seq)) {
                out.push((IntervalId { node: me, seq }, d.clone()));
            }
        }
        let payload: usize = out.iter().map(|(_, d)| d.encoded_size()).sum();
        let done = inner.ctx.service_time(env) + disk_cost + inner.ctx.cost.cpu.copy(payload);
        inner
            .ctx
            .send_from(
                done,
                env.src,
                Msg::LoggedDiffReply {
                    page: *page,
                    diffs: out,
                },
            )
            .expect("send logged diff reply");
    }
}
