//! Related-work logging protocols (paper §5), for comparison only.
//!
//! The paper positions CCL against the earlier logging protocols that
//! were designed for *home-less* DSM:
//!
//! * Suri, Janssens & Fuchs (FTCS-25): log the **records** of all
//!   coherence messages rather than their contents —
//!   [`RecordOnlyLogger`] here;
//! * Park & Yeom (IPPS'98), *reduced-stable logging* (RSL): log only
//!   the content of lock-grant messages (the dirty-page lists) —
//!   [`RslLogger`] here.
//!
//! Both are implemented as they would behave if dropped into a
//! home-based system: they log what their papers say and flush at
//! synchronization points. Crucially, **neither can actually drive a
//! home-based recovery** — the paper's §5 point. A home copy advanced
//! by other writers' diffs cannot be rebuilt from message *records* or
//! dirty-page lists: the diff contents are gone, because home-based
//! HLRC discards diffs once the home acks them. Their `begin_recovery`
//! therefore reports the gap loudly rather than silently producing a
//! wrong memory image. They exist so the log-volume comparison of the
//! related-work discussion is measurable (`--bench related_work`).

use hlrc::{FaultTolerance, Msg, NodeInner, SyncKind, WriteNotice};
use pagemem::{ByteWriter, Encode, VClock};
use simnet::{SimDuration, TraceKind};

/// Flush staging shared by the two record-style loggers.
#[derive(Default)]
struct Staged {
    records: Vec<Vec<u8>>,
    bytes: usize,
}

impl Staged {
    fn push(&mut self, rec: Vec<u8>) {
        self.bytes += rec.len();
        self.records.push(rec);
    }

    fn flush(&mut self, inner: &mut NodeInner, stream: &str) -> SimDuration {
        if self.records.is_empty() {
            return SimDuration::ZERO;
        }
        let bytes = self.bytes;
        let _ = inner
            .ctx
            .disk
            .flush_records(stream, std::mem::take(&mut self.records));
        self.bytes = 0;
        inner.ctx.stats.log_flushes += 1;
        inner.ctx.stats.log_bytes += bytes as u64;
        inner.ctx.metrics.flush_bytes.record(bytes as u64);
        inner.ctx.trace(TraceKind::LogFlush {
            bytes: bytes as u64,
            overlapped: false,
        });
        inner.ctx.disk.model().buffered_write_cost(bytes)
            + inner
                .ctx
                .disk
                .model()
                .drain_time(bytes)
                .saturating_sub(SimDuration::ZERO) // drained synchronously: these protocols predate write-behind tricks
    }
}

/// Suri-style logging: a fixed-size record per incoming coherence
/// message (kind tag, page/lock id, interval), never the contents.
pub struct RecordOnlyLogger {
    staged: Staged,
}

/// Stream name for the record-only log.
pub const RECORDS_STREAM: &str = "records.log";

impl RecordOnlyLogger {
    /// Fresh instance.
    pub fn new() -> RecordOnlyLogger {
        RecordOnlyLogger {
            staged: Staged::default(),
        }
    }

    fn record_of(msg: &Msg) -> Option<Vec<u8>> {
        let mut w = ByteWriter::with_capacity(16);
        match msg {
            Msg::PageReply { page, .. } => {
                w.put_u8(1);
                w.put_u32(*page);
            }
            Msg::DiffFlush { writer, diffs } => {
                w.put_u8(2);
                writer.encode(&mut w);
                w.put_u16(diffs.len() as u16);
            }
            Msg::LockGrant { lock, .. } => {
                w.put_u8(3);
                w.put_u32(*lock);
            }
            Msg::BarrierRelease { epoch, .. } => {
                w.put_u8(4);
                w.put_u32(*epoch);
            }
            Msg::PageReplyBatch { pages, .. } => {
                // One fixed-size record per batch: page ids only, never
                // the contents — same economy as the single-reply case.
                w.put_u8(5);
                w.put_u16(pages.len() as u16);
                for (page, _, _) in pages {
                    w.put_u32(*page);
                }
            }
            _ => return None,
        }
        Some(w.into_bytes())
    }
}

impl Default for RecordOnlyLogger {
    fn default() -> Self {
        RecordOnlyLogger::new()
    }
}

impl FaultTolerance for RecordOnlyLogger {
    fn name(&self) -> &'static str {
        "records-only (Suri et al.)"
    }

    fn on_incoming(&mut self, _inner: &mut NodeInner, msg: &Msg) {
        if let Some(rec) = Self::record_of(msg) {
            self.staged.push(rec);
        }
    }

    fn flush_before_send(&mut self, inner: &mut NodeInner) -> SimDuration {
        // "Flushing them to stable storage before communicating with
        // another process" — fully synchronous, like ML.
        self.staged.flush(inner, RECORDS_STREAM)
    }

    fn begin_recovery(&mut self, _inner: &mut NodeInner) {
        unimplemented!(
            "records-only logging cannot recover a home-based DSM: home \
             copies advanced by other writers' diffs are unreconstructible \
             from message records alone (the diff contents were discarded \
             when the home acked them) — the paper's §5 argument"
        );
    }
}

/// Park & Yeom's reduced-stable logging: only the contents of lock
/// grants and barrier releases (the dirty-page lists) reach the log.
pub struct RslLogger {
    staged: Staged,
}

/// Stream name for the RSL log.
pub const RSL_STREAM: &str = "rsl.log";

impl RslLogger {
    /// Fresh instance.
    pub fn new() -> RslLogger {
        RslLogger {
            staged: Staged::default(),
        }
    }
}

impl Default for RslLogger {
    fn default() -> Self {
        RslLogger::new()
    }
}

impl FaultTolerance for RslLogger {
    fn name(&self) -> &'static str {
        "rsl (Park & Yeom)"
    }

    fn on_notices(
        &mut self,
        _inner: &mut NodeInner,
        kind: SyncKind,
        notices: &[WriteNotice],
        vc: &VClock,
    ) {
        let mut w = ByteWriter::new();
        match kind {
            SyncKind::Acquire(l) => {
                w.put_u8(0);
                w.put_u32(l);
            }
            SyncKind::Barrier(e) => {
                w.put_u8(1);
                w.put_u32(e);
            }
            SyncKind::Release(_) => return,
        }
        w.put_u32(notices.len() as u32);
        for n in notices {
            n.encode(&mut w);
        }
        vc.encode(&mut w);
        self.staged.push(w.into_bytes());
    }

    fn flush_before_send(&mut self, inner: &mut NodeInner) -> SimDuration {
        self.staged.flush(inner, RSL_STREAM)
    }

    fn begin_recovery(&mut self, _inner: &mut NodeInner) {
        unimplemented!(
            "RSL cannot recover a home-based DSM: dirty-page lists identify \
             what to invalidate but carry no data with which to rebuild \
             advanced home copies — the paper's §5 argument"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagemem::IntervalId;

    #[test]
    fn record_of_covers_replay_relevant_messages() {
        let iv = IntervalId { node: 1, seq: 2 };
        let vc = VClock::new(2);
        assert!(RecordOnlyLogger::record_of(&Msg::PageReply {
            page: 3,
            data: vec![0; 4096].into(),
            version: vc.clone(),
        })
        .is_some());
        assert!(RecordOnlyLogger::record_of(&Msg::DiffAck { writer: iv }).is_none());
        // The record for a full 4 KB page reply is a handful of bytes —
        // the protocols' whole point.
        let rec = RecordOnlyLogger::record_of(&Msg::PageReply {
            page: 3,
            data: vec![0; 4096].into(),
            version: vc,
        })
        .unwrap();
        assert!(rec.len() < 16);
        // A batched reply carrying two full pages still logs only ids.
        let batch = RecordOnlyLogger::record_of(&Msg::PageReplyBatch {
            after: 2,
            pages: vec![
                (3, vec![0; 4096].into(), VClock::new(2)),
                (4, vec![0; 4096].into(), VClock::new(2)),
            ],
        })
        .unwrap();
        assert!(batch.len() < 16);
    }

    #[test]
    fn names() {
        assert!(RecordOnlyLogger::new().name().contains("Suri"));
        assert!(RslLogger::new().name().contains("Park"));
        assert!(!RecordOnlyLogger::new().in_recovery());
        assert!(!RslLogger::new().in_recovery());
    }
}
