//! Checkpointing (§3.2 of the paper).
//!
//! A checkpoint consists of the shared-memory home copies, the protocol
//! state (vector clock, interval counter, barrier epoch), and an opaque
//! application-state blob. The first checkpoint writes every home page;
//! subsequent checkpoints are incremental — only pages whose version
//! advanced since the last checkpoint are written.
//!
//! Checkpoints must be **coordinated at a barrier** (all nodes
//! checkpoint at the same episode, holding no locks): that is what makes
//! each home's checkpoint base usable during any peer's recovery and
//! lets the logs be truncated safely. The paper's experiments take no
//! checkpoints (recovery replays from the initial state, which this
//! module models as the implicit epoch-zero checkpoint).

use hlrc::NodeInner;
use pagemem::{ByteReader, ByteWriter, CodecError, Decode, Encode, VClock};
use simnet::{SimDuration, TraceKind};

/// Stream holding the latest checkpoint's metadata record.
pub const CKPT_META: &str = "ckpt.meta";
/// Stream accumulating checkpointed page images (incremental).
pub const CKPT_PAGES: &str = "ckpt.pages";

/// Protocol/application state saved with a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Vector clock at the checkpoint.
    pub vc: VClock,
    /// Next interval sequence number.
    pub next_interval: u32,
    /// Next barrier epoch.
    pub barrier_epoch: u32,
    /// Clock of the last completed barrier.
    pub last_barrier_vc: VClock,
    /// Opaque application state (iteration counters etc.).
    pub app_state: Vec<u8>,
}

impl Encode for CheckpointMeta {
    fn encode(&self, w: &mut ByteWriter) {
        self.vc.encode(w);
        w.put_u32(self.next_interval);
        w.put_u32(self.barrier_epoch);
        self.last_barrier_vc.encode(w);
        w.put_bytes(&self.app_state);
    }
}

impl Decode for CheckpointMeta {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(CheckpointMeta {
            vc: VClock::decode(r)?,
            next_interval: r.get_u32()?,
            barrier_epoch: r.get_u32()?,
            last_barrier_vc: VClock::decode(r)?,
            app_state: r.get_bytes()?,
        })
    }
}

/// Take a checkpoint of `inner` (call right after a barrier, with no
/// locks held). Returns the stable-storage write time; the caller
/// decides how to charge it.
pub fn take_checkpoint(inner: &mut NodeInner, app_state: &[u8]) -> SimDuration {
    // A permanently failed device cannot persist a checkpoint; taking
    // one anyway would desynchronize the in-memory base image from
    // stable storage. The node pays one futile access discovering it.
    if inner.ctx.disk.has_failed() {
        return inner.ctx.disk.model().write_time(0);
    }
    let me = inner.me();
    // Incremental page set: anything whose version moved past the base.
    let mut page_records: Vec<Vec<u8>> = Vec::new();
    for (p, e) in inner.pages.iter() {
        if e.home != me {
            continue;
        }
        let version = e.version.as_ref().expect("home version");
        let base_version = e.base_version.as_ref().expect("base version");
        if version == base_version && inner.ctx.disk.record_count(CKPT_PAGES) > 0 {
            continue; // unchanged since last checkpoint (and not the first)
        }
        let mut w = ByteWriter::new();
        w.put_u32(p);
        version.encode(&mut w);
        w.put_bytes(e.frame.as_ref().expect("home frame").bytes());
        page_records.push(w.into_bytes());
    }
    let meta = CheckpointMeta {
        vc: inner.vc.clone(),
        next_interval: inner.next_interval,
        barrier_epoch: inner.barrier_epoch,
        last_barrier_vc: inner.last_barrier_vc.clone(),
        app_state: app_state.to_vec(),
    };
    inner.ctx.disk.truncate(CKPT_META);
    let meta_bytes = meta.encode_to_vec();
    let total = meta_bytes.len() + page_records.iter().map(Vec::len).sum::<usize>();
    inner.ctx.trace(TraceKind::Checkpoint {
        bytes: total as u64,
    });
    let d1 = inner.ctx.disk.flush_records(CKPT_META, vec![meta_bytes]);
    let d2 = inner.ctx.disk.flush_records(CKPT_PAGES, page_records);
    // The in-memory base copies become the stable checkpoint image the
    // recovery path restores from.
    inner.pages.promote_base();
    d1 + d2
}

/// Restore checkpointed protocol state into `inner` (after a crash and
/// `reset_to_base`). Returns the saved application blob, or `None` if no
/// checkpoint was ever taken.
pub fn restore_meta(inner: &mut NodeInner) -> Option<Vec<u8>> {
    let bytes = inner.ctx.disk.peek_stream(CKPT_META).first()?.clone();
    let cost = inner.ctx.disk.read_cost(bytes.len());
    inner.ctx.charge_disk(cost);
    let meta = CheckpointMeta::decode_from_slice(&bytes).expect("corrupt checkpoint meta");
    inner.vc = meta.vc;
    inner.next_interval = meta.next_interval;
    inner.barrier_epoch = meta.barrier_epoch;
    inner.last_barrier_vc = meta.last_barrier_vc;
    Some(meta.app_state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlrc::DsmConfig;
    use pagemem::IntervalId;
    use simnet::{run_cluster, CostModel};

    #[test]
    fn meta_codec_roundtrip() {
        let mut vc = VClock::new(3);
        vc.observe(IntervalId { node: 1, seq: 4 });
        let meta = CheckpointMeta {
            vc: vc.clone(),
            next_interval: 7,
            barrier_epoch: 3,
            last_barrier_vc: vc,
            app_state: vec![1, 2, 3],
        };
        let bytes = meta.encode_to_vec();
        assert_eq!(CheckpointMeta::decode_from_slice(&bytes).unwrap(), meta);
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let cfg = DsmConfig::new(1, 2).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            inner.pages.frame_mut(0).write_u64(0, 42);
            inner
                .pages
                .entry_mut(0)
                .version
                .as_mut()
                .unwrap()
                .observe(IntervalId { node: 0, seq: 0 });
            inner.vc.observe(IntervalId { node: 0, seq: 0 });
            inner.next_interval = 1;
            inner.barrier_epoch = 2;

            let d = take_checkpoint(&mut inner, b"iter=5");
            assert!(d > SimDuration::ZERO);

            // Crash: wipe volatile state; base now carries the image.
            inner.pages.reset_to_base();
            inner.vc = VClock::new(1);
            inner.next_interval = 0;
            inner.barrier_epoch = 0;

            let app = restore_meta(&mut inner).expect("checkpoint exists");
            assert_eq!(app, b"iter=5");
            assert_eq!(inner.next_interval, 1);
            assert_eq!(inner.barrier_epoch, 2);
            assert!(inner.vc.covers(IntervalId { node: 0, seq: 0 }));
            assert_eq!(inner.pages.frame(0).read_u64(0), 42);
        });
    }

    #[test]
    fn second_checkpoint_is_incremental() {
        let cfg = DsmConfig::new(1, 4).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            // First checkpoint: all 4 home pages written.
            take_checkpoint(&mut inner, b"");
            assert_eq!(inner.ctx.disk.record_count(CKPT_PAGES), 4);
            // Modify one page, checkpoint again: only it is appended.
            inner.pages.frame_mut(1).write_u64(0, 9);
            inner
                .pages
                .entry_mut(1)
                .version
                .as_mut()
                .unwrap()
                .observe(IntervalId { node: 0, seq: 0 });
            take_checkpoint(&mut inner, b"");
            assert_eq!(inner.ctx.disk.record_count(CKPT_PAGES), 5);
        });
    }

    #[test]
    fn restore_without_checkpoint_returns_none() {
        let cfg = DsmConfig::new(1, 1).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            assert!(restore_meta(&mut inner).is_none());
        });
    }
}
