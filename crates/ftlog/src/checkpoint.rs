//! Checkpointing (§3.2 of the paper).
//!
//! A checkpoint consists of the shared-memory home copies, the protocol
//! state (vector clock, interval counter, barrier epoch), and an opaque
//! application-state blob. The first checkpoint writes every home page;
//! subsequent checkpoints are incremental — only pages whose version
//! advanced since the last checkpoint are written, and images that a
//! newer checkpoint supersedes are compacted away so `CKPT_PAGES` holds
//! at most one image per home page.
//!
//! Checkpoints must be **coordinated at a barrier** (all nodes
//! checkpoint at the same episode, holding no locks): that is what makes
//! each home's checkpoint base usable during any peer's recovery and
//! lets the logs be truncated safely. The paper's experiments take no
//! checkpoints (recovery replays from the initial state, which this
//! module models as the implicit epoch-zero checkpoint); a
//! `ClusterSpec` checkpoint cadence takes real ones.
//!
//! Both checkpoint streams use the [`crate::frame`] record format, so a
//! garbled or torn checkpoint record degrades recovery (the node falls
//! back to re-execution) instead of panicking — [`restore_meta`] returns
//! a typed [`RestoreError`] on damage.

use crate::frame::{self, FrameError, FRAME_HEADER_BYTES};
use hlrc::NodeInner;
use pagemem::{ByteReader, ByteWriter, CodecError, Decode, Encode, VClock};
use simnet::{SimDuration, TraceKind};
use std::collections::BTreeMap;

/// Stream holding the latest checkpoint's metadata record.
pub const CKPT_META: &str = "ckpt.meta";
/// Stream holding the checkpointed page images (latest per page).
pub const CKPT_PAGES: &str = "ckpt.pages";

/// Protocol/application state saved with a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Vector clock at the checkpoint.
    pub vc: VClock,
    /// Next interval sequence number.
    pub next_interval: u32,
    /// Next barrier epoch.
    pub barrier_epoch: u32,
    /// Clock of the last completed barrier.
    pub last_barrier_vc: VClock,
    /// Opaque application state (iteration counters etc.).
    pub app_state: Vec<u8>,
    /// Every `(page, home)` mapping that differs from the allocation-time
    /// assignment because of an adaptive migration. Migration is atomic
    /// with the checkpoint (both happen at the same barrier), so this
    /// list is exactly the mapping the checkpointed page images were
    /// taken under — recovery must route fetches and logged-diff
    /// requests against these homes, never the static layout.
    pub home_overrides: Vec<(u32, u32)>,
}

impl Encode for CheckpointMeta {
    fn encode(&self, w: &mut ByteWriter) {
        self.vc.encode(w);
        w.put_u32(self.next_interval);
        w.put_u32(self.barrier_epoch);
        self.last_barrier_vc.encode(w);
        w.put_bytes(&self.app_state);
        w.put_u32(self.home_overrides.len() as u32);
        for &(page, home) in &self.home_overrides {
            w.put_u32(page);
            w.put_u32(home);
        }
    }
}

impl Decode for CheckpointMeta {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let vc = VClock::decode(r)?;
        let next_interval = r.get_u32()?;
        let barrier_epoch = r.get_u32()?;
        let last_barrier_vc = VClock::decode(r)?;
        let app_state = r.get_bytes()?;
        let n = r.get_u32()? as usize;
        let mut home_overrides = Vec::with_capacity(n);
        for _ in 0..n {
            let page = r.get_u32()?;
            let home = r.get_u32()?;
            home_overrides.push((page, home));
        }
        Ok(CheckpointMeta {
            vc,
            next_interval,
            barrier_epoch,
            last_barrier_vc,
            app_state,
            home_overrides,
        })
    }
}

/// Why a persisted checkpoint record could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The record's frame failed verification (torn tail, bit rot).
    Frame(FrameError),
    /// The frame verified but the payload did not decode (a logic bug
    /// or a version skew, never silent corruption — the CRC rules that
    /// out).
    Codec(CodecError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Frame(e) => write!(f, "checkpoint frame damaged: {e}"),
            RestoreError::Codec(e) => write!(f, "checkpoint payload undecodable: {e:?}"),
        }
    }
}

/// The page id a `CKPT_PAGES` payload describes (its leading `u32`).
fn payload_page(payload: &[u8]) -> Option<u32> {
    let mut r = ByteReader::new(payload);
    r.get_u32().ok()
}

/// Take a checkpoint of `inner` (call right after a barrier, with no
/// locks held). Returns the stable-storage write time; the caller
/// decides how to charge it.
///
/// `CKPT_PAGES` is compacted in the same access: images superseded by a
/// newer one of the same page are dropped, so the stream is bounded by
/// one image per home page no matter how many checkpoints are taken.
/// Only the newly written images are charged — retained ones are
/// already on the platter.
pub fn take_checkpoint(inner: &mut NodeInner, app_state: &[u8]) -> SimDuration {
    // A permanently failed device cannot persist a checkpoint; taking
    // one anyway would desynchronize the in-memory base image from
    // stable storage. The node pays one futile access discovering it.
    if inner.ctx.disk.has_failed() {
        return inner.ctx.disk.model().write_time(0);
    }
    let me = inner.me();
    // Incremental page set: anything whose version moved past the base.
    let mut new_pages: Vec<(u32, Vec<u8>)> = Vec::new();
    for (p, e) in inner.pages.iter() {
        if e.home != me {
            continue;
        }
        let version = e.version.as_ref().expect("home version");
        let base_version = e.base_version.as_ref().expect("base version");
        if version == base_version && inner.ctx.disk.record_count(CKPT_PAGES) > 0 {
            continue; // unchanged since last checkpoint (and not the first)
        }
        let mut w = ByteWriter::new();
        w.put_u32(p);
        version.encode(&mut w);
        w.put_bytes(e.frame.as_ref().expect("home frame").bytes());
        new_pages.push((p, w.into_bytes()));
    }
    // Salvage the current page stream and keep the latest surviving
    // image per page, minus the pages this checkpoint rewrites.
    let prior_records = inner.ctx.disk.record_count(CKPT_PAGES);
    let old = frame::salvage(inner.ctx.disk.peek_stream(CKPT_PAGES));
    if !old.is_clean() {
        inner
            .ctx
            .trace(TraceKind::CrcMismatch { stream: CKPT_PAGES });
    }
    let mut retained: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    for payload in old.payloads {
        if let Some(p) = payload_page(&payload) {
            retained.insert(p, payload); // later images supersede earlier
        }
    }
    for (p, _) in &new_pages {
        retained.remove(p);
    }
    // Every prior record either survives in `retained` or is dropped:
    // superseded by a newer image, replaced by this checkpoint, or
    // damaged beyond salvage.
    let compacted = prior_records - retained.len();
    let epoch = old.epoch.max(meta_epoch(inner)) + 1;
    // Persist every migrated mapping this node knows: page-table
    // iteration order is page order, so the list is deterministic.
    let home_overrides: Vec<(u32, u32)> = inner
        .pages
        .iter()
        .filter(|(_, e)| e.migrated)
        .map(|(p, e)| (p, e.home as u32))
        .collect();
    let meta = CheckpointMeta {
        vc: inner.vc.clone(),
        next_interval: inner.next_interval,
        barrier_epoch: inner.barrier_epoch,
        last_barrier_vc: inner.last_barrier_vc.clone(),
        app_state: app_state.to_vec(),
        home_overrides,
    };
    let meta_record = frame::frame_record(epoch, 0, &meta.encode_to_vec());
    let new_bytes: usize = new_pages
        .iter()
        .map(|(_, payload)| frame::framed_size(payload.len()))
        .sum();
    let mut stream: Vec<Vec<u8>> = Vec::with_capacity(retained.len() + new_pages.len());
    let mut payloads: Vec<Vec<u8>> = retained.into_values().collect();
    payloads.extend(new_pages.iter().map(|(_, payload)| payload.clone()));
    for (seq, payload) in payloads.iter().enumerate() {
        stream.push(frame::frame_record(epoch, seq as u32, payload));
    }
    inner.ctx.trace(TraceKind::Checkpoint {
        bytes: (meta_record.len() + new_bytes) as u64,
    });
    inner.ctx.trace(TraceKind::CheckpointTaken {
        pages: new_pages.len() as u32,
        compacted: compacted as u32,
    });
    inner.ctx.disk.truncate(CKPT_META);
    let d1 = inner.ctx.disk.flush_records(CKPT_META, vec![meta_record]);
    let d2 = inner.ctx.disk.rewrite_stream(CKPT_PAGES, stream, new_bytes);
    // The in-memory base copies become the stable checkpoint image the
    // recovery path restores from.
    inner.pages.promote_base();
    d1 + d2
}

/// The epoch of the persisted checkpoint metadata (0 if none or
/// unreadable).
fn meta_epoch(inner: &NodeInner) -> u32 {
    inner
        .ctx
        .disk
        .peek_stream(CKPT_META)
        .first()
        .and_then(|rec| frame::decode_frame(rec).ok())
        .map_or(0, |f| f.epoch)
}

/// Restore checkpointed protocol state into `inner` (after a crash and
/// `reset_to_base`). Returns the saved application blob, `Ok(None)` if
/// no checkpoint was ever taken, or a [`RestoreError`] if the persisted
/// record is damaged — the caller degrades to re-execution instead of
/// trusting (or panicking on) rotten state.
pub fn restore_meta(inner: &mut NodeInner) -> Result<Option<Vec<u8>>, RestoreError> {
    let Some(bytes) = inner.ctx.disk.peek_stream(CKPT_META).first().cloned() else {
        return Ok(None);
    };
    let cost = inner.ctx.disk.read_cost(bytes.len());
    inner.ctx.charge_disk(cost);
    let frame = frame::decode_frame(&bytes).map_err(RestoreError::Frame)?;
    let meta = CheckpointMeta::decode_from_slice(&frame.payload).map_err(RestoreError::Codec)?;
    inner.vc = meta.vc;
    inner.next_interval = meta.next_interval;
    inner.barrier_epoch = meta.barrier_epoch;
    inner.last_barrier_vc = meta.last_barrier_vc;
    // Re-apply the checkpointed home migrations. The in-memory page
    // table survives `reset_to_base` with its mapping intact, so each
    // entry is normally an idempotent skip — the explicit list is what
    // makes the checkpoint self-describing (and keeps recovery honest
    // if the mapping ever stops being memory-resident).
    let me = inner.me();
    for &(page, to) in &meta.home_overrides {
        let to = to as usize;
        if inner.pages.entry(page).home == to {
            continue;
        }
        debug_assert_ne!(
            to, me,
            "an adopted home must survive restart with its frame"
        );
        inner.pages.note_migrated(page, to);
    }
    Ok(Some(meta.app_state))
}

/// Exact framed size of a checkpoint-page record carrying `payload_len`
/// payload bytes (used by tests asserting boundedness).
pub fn framed_page_record_size(payload_len: usize) -> usize {
    payload_len + FRAME_HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlrc::DsmConfig;
    use pagemem::IntervalId;
    use simnet::{run_cluster, CostModel};

    #[test]
    fn meta_codec_roundtrip() {
        let mut vc = VClock::new(3);
        vc.observe(IntervalId { node: 1, seq: 4 });
        let meta = CheckpointMeta {
            vc: vc.clone(),
            next_interval: 7,
            barrier_epoch: 3,
            last_barrier_vc: vc,
            app_state: vec![1, 2, 3],
            home_overrides: vec![(7, 1), (296, 0)],
        };
        let bytes = meta.encode_to_vec();
        assert_eq!(CheckpointMeta::decode_from_slice(&bytes).unwrap(), meta);
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let cfg = DsmConfig::new(1, 2).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            inner.pages.frame_mut(0).write_u64(0, 42);
            inner
                .pages
                .entry_mut(0)
                .version
                .as_mut()
                .unwrap()
                .observe(IntervalId { node: 0, seq: 0 });
            inner.vc.observe(IntervalId { node: 0, seq: 0 });
            inner.next_interval = 1;
            inner.barrier_epoch = 2;

            let d = take_checkpoint(&mut inner, b"iter=5");
            assert!(d > SimDuration::ZERO);

            // Crash: wipe volatile state; base now carries the image.
            inner.pages.reset_to_base();
            inner.vc = VClock::new(1);
            inner.next_interval = 0;
            inner.barrier_epoch = 0;

            let app = restore_meta(&mut inner)
                .expect("meta intact")
                .expect("checkpoint exists");
            assert_eq!(app, b"iter=5");
            assert_eq!(inner.next_interval, 1);
            assert_eq!(inner.barrier_epoch, 2);
            assert!(inner.vc.covers(IntervalId { node: 0, seq: 0 }));
            assert_eq!(inner.pages.frame(0).read_u64(0), 42);
        });
    }

    #[test]
    fn second_checkpoint_is_incremental_and_compacted() {
        let cfg = DsmConfig::new(1, 4).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            // First checkpoint: all 4 home pages written.
            take_checkpoint(&mut inner, b"");
            assert_eq!(inner.ctx.disk.record_count(CKPT_PAGES), 4);
            // Modify one page, checkpoint again: only its image is
            // rewritten; the superseded one is compacted away, so the
            // stream still holds exactly one image per page.
            inner.pages.frame_mut(1).write_u64(0, 9);
            inner
                .pages
                .entry_mut(1)
                .version
                .as_mut()
                .unwrap()
                .observe(IntervalId { node: 0, seq: 0 });
            take_checkpoint(&mut inner, b"");
            assert_eq!(inner.ctx.disk.record_count(CKPT_PAGES), 4);
        });
    }

    /// Stream bytes stay bounded across many checkpoints: each one
    /// replaces superseded images instead of appending forever.
    #[test]
    fn repeated_checkpoints_keep_ckpt_pages_bounded() {
        let cfg = DsmConfig::new(1, 4).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            take_checkpoint(&mut inner, b"");
            let baseline = inner.ctx.disk.stream_bytes(CKPT_PAGES);
            assert!(baseline > 0);
            for round in 0..10u64 {
                // Touch the same page every round: without compaction
                // the stream would grow by one image per round.
                inner.pages.frame_mut(2).write_u64(0, round);
                inner
                    .pages
                    .entry_mut(2)
                    .version
                    .as_mut()
                    .unwrap()
                    .observe(IntervalId {
                        node: 0,
                        seq: round as u32,
                    });
                take_checkpoint(&mut inner, b"state");
                assert_eq!(inner.ctx.disk.record_count(CKPT_PAGES), 4);
            }
            let after = inner.ctx.disk.stream_bytes(CKPT_PAGES);
            // Version clocks grow a little as intervals accumulate, but
            // the stream stays within a small constant of one image per
            // page — never 10 appended images.
            assert!(
                after < baseline + baseline / 2,
                "CKPT_PAGES grew {baseline} -> {after}"
            );
        });
    }

    #[test]
    fn restore_without_checkpoint_returns_none() {
        let cfg = DsmConfig::new(1, 1).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            assert!(restore_meta(&mut inner).unwrap().is_none());
        });
    }

    /// Pinned regression: a garbled `CKPT_META` record used to panic
    /// (`expect("corrupt checkpoint meta")`); now it is a typed error
    /// the recovery path turns into degraded re-execution.
    #[test]
    fn garbled_meta_is_an_error_not_a_panic() {
        let cfg = DsmConfig::new(1, 1).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(1, CostModel::default(), move |ctx| {
            let mut inner = NodeInner::new(ctx, cfg);
            take_checkpoint(&mut inner, b"good");
            // Rot one payload bit of the persisted meta record.
            let mut rec = inner.ctx.disk.peek_stream(CKPT_META)[0].clone();
            let last = rec.len() - 1;
            rec[last] ^= 0x10;
            inner.ctx.disk.truncate(CKPT_META);
            inner.ctx.disk.flush_records(CKPT_META, vec![rec]);
            let err = restore_meta(&mut inner).unwrap_err();
            assert!(matches!(err, RestoreError::Frame(FrameError::CrcMismatch)));
            // A torn (truncated) meta record is also an error.
            let short = inner.ctx.disk.peek_stream(CKPT_META)[0][..7].to_vec();
            inner.ctx.disk.truncate(CKPT_META);
            inner.ctx.disk.flush_records(CKPT_META, vec![short]);
            assert!(restore_meta(&mut inner).is_err());
        });
    }
}
