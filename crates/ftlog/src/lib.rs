//! # ftlog — fault tolerance for home-based software DSM
//!
//! The paper's two logging protocols and their recovery schemes, plugged
//! into the `hlrc` coherence driver through its [`hlrc::FaultTolerance`]
//! hook interface:
//!
//! * [`MlLogger`] — traditional **message logging** (§3.1): log every
//!   incoming coherence message in volatile memory, flush the (large)
//!   log serially at each synchronization point; recover by replaying
//!   logged messages from disk, one access per record.
//! * [`CclLogger`] — **coherence-centric logging** (§3.2): log only
//!   notices, update *records*, and own diffs; overlap the (small) flush
//!   with the diff round-trip; recover by per-interval prefetching that
//!   rebuilds home copies from writers' logs and reconstructs remote
//!   copies from checkpoint bases plus logged diffs, eliminating page
//!   faults. `CclLogger::without_overlap()` is the serial-flush ablation.
//! * [`checkpoint`] — coordinated incremental checkpoints with log
//!   truncation.
//!
//! The "no logging" baseline is [`hlrc::NoLogging`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ccl;
pub mod checkpoint;
pub mod frame;
mod log_record;
mod ml;
mod recovery;
pub mod related;

pub use ccl::{CclLogger, CCL_STREAM};
pub use checkpoint::{
    restore_meta, take_checkpoint, CheckpointMeta, RestoreError, CKPT_META, CKPT_PAGES,
};
pub use frame::{
    crc32, decode_frame, frame_record, framed_size, salvage, Frame, FrameError, Salvage,
    FRAME_HEADER_BYTES, FRAME_MAGIC,
};
pub use log_record::{CclRecord, SyncTag};
pub use ml::{MlLogger, ML_STREAM};
pub use recovery::replay_apply_notices;
pub use related::{RecordOnlyLogger, RslLogger, RECORDS_STREAM, RSL_STREAM};
