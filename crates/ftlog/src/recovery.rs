//! Shared replay helpers used by both ML- and CCL-recovery.

use hlrc::{NodeInner, WriteNotice};
use pagemem::VClock;

/// Re-apply a synchronization operation's notices during replay:
/// extend the history, observe the intervals, invalidate named remote
/// copies, and merge the piggybacked clock — the recovery-mode twin of
/// the driver's failure-free notice processing (without logging hooks).
///
/// Returns the notices that were fresh (not yet covered).
pub fn replay_apply_notices(
    inner: &mut NodeInner,
    notices: &[WriteNotice],
    vc_in: &VClock,
) -> Vec<WriteNotice> {
    let me = inner.me() as u32;
    // Judge freshness against the pre-batch clock: notices of the same
    // interval (one per written page) must all be applied.
    let vc_before = inner.vc.clone();
    let mut fresh: Vec<WriteNotice> = Vec::new();
    for n in notices {
        if vc_before.covers(n.interval) || fresh.contains(n) {
            continue;
        }
        fresh.push(*n);
        inner.vc.observe(n.interval);
        inner.history.push(*n);
        if n.interval.node != me && !inner.pages.is_home(n.page) {
            inner.pages.invalidate(n.page, &mut inner.pool);
        }
    }
    inner.vc.join(vc_in);
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlrc::DsmConfig;
    use pagemem::{IntervalId, PageState};
    use simnet::{run_cluster, CostModel};

    #[test]
    fn replay_notices_invalidate_and_merge() {
        let cfg = DsmConfig::new(2, 4).with_page_size(64);
        run_cluster::<hlrc::Msg, _, _>(2, CostModel::default(), move |ctx| {
            if ctx.id() != 0 {
                return;
            }
            let mut inner = NodeInner::new(ctx, cfg);
            // Give node 0 a cached copy of remote page 2.
            inner
                .pages
                .install_copy(2, &[1u8; 64], PageState::ReadOnly, &mut inner.pool);
            let iv = IntervalId { node: 1, seq: 0 };
            let mut vc_in = VClock::new(2);
            vc_in.observe(iv);
            let fresh = replay_apply_notices(
                &mut inner,
                &[WriteNotice {
                    page: 2,
                    interval: iv,
                }],
                &vc_in,
            );
            assert_eq!(fresh.len(), 1);
            assert_eq!(inner.pages.entry(2).state, PageState::Invalid);
            assert!(inner.vc.covers(iv));
            // Replaying the same notices again is a no-op.
            let again = replay_apply_notices(
                &mut inner,
                &[WriteNotice {
                    page: 2,
                    interval: iv,
                }],
                &vc_in,
            );
            assert!(again.is_empty());
        });
    }
}
