//! Traditional message logging (ML), §3.1 of the paper.
//!
//! ML follows the piecewise-deterministic model: every incoming message
//! that affects execution — full page copies fetched from homes, diffs
//! arriving at this home, and the lock-grant / barrier-release messages
//! carrying write-invalidation notices — is logged *in its entirety* in
//! volatile memory, and the volatile log is flushed to the local disk at
//! the next synchronization point, **before** the node communicates.
//! The flush is therefore fully on the critical path, and the log is
//! large (it contains whole pages), which is exactly the overhead the
//! paper measures against CCL.
//!
//! ML-recovery replays the logged messages in receipt order: each page
//! miss and each synchronization operation reads records from disk (one
//! access per record — the "memory miss idle time" and "high disk access
//! latency" of §4.3), with no network traffic at all.

use hlrc::{FaultTolerance, Msg, NodeInner, RecoveryStep, SyncKind};
use pagemem::{Decode, Encode, PageState, VClock};
use simnet::{SimDuration, SimTime, TraceKind};

use crate::recovery::replay_apply_notices;

/// Stable-storage stream holding the ML log.
pub const ML_STREAM: &str = "ml.log";

/// Traditional message logging.
pub struct MlLogger {
    staged: Vec<Vec<u8>>,
    staged_bytes: usize,
    cursor: Option<usize>,
    restored_app: Option<Vec<u8>>,
    /// When the device finishes draining the OS write cache.
    disk_free_at: SimTime,
    /// The log device failed permanently: logging has stopped and a
    /// later crash replays only the persisted prefix, re-executing the
    /// rest live (degraded recovery).
    degraded: bool,
}

impl MlLogger {
    /// A fresh ML protocol instance.
    pub fn new() -> MlLogger {
        MlLogger {
            staged: Vec::new(),
            staged_bytes: 0,
            cursor: None,
            restored_app: None,
            disk_free_at: SimTime::ZERO,
            degraded: false,
        }
    }

    /// True once the log device has failed permanently.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Write the staged log through the OS cache. Returns the critical-
    /// path cost: the buffered-write copy plus any stall while the
    /// device is still draining earlier flushes. The device drain itself
    /// proceeds in the background (tracked by `disk_free_at`).
    fn flush_staged(&mut self, inner: &mut NodeInner) -> SimDuration {
        if self.degraded {
            // The device is gone; drop anything staged since then.
            self.staged.clear();
            self.staged_bytes = 0;
            return SimDuration::ZERO;
        }
        if self.staged.is_empty() {
            return SimDuration::ZERO;
        }
        let bytes = self.staged_bytes;
        let retries_before = inner.ctx.disk.counters().write_retries;
        let _ = inner
            .ctx
            .disk
            .flush_records(ML_STREAM, std::mem::take(&mut self.staged));
        self.staged_bytes = 0;
        if inner.ctx.disk.has_failed() {
            // Permanent device failure: the batch is lost and logging
            // stops for good. The node keeps computing; the cost here
            // is the one futile access that discovered the failure.
            self.degraded = true;
            inner.ctx.trace(TraceKind::LogDeviceFailed);
            return inner.ctx.disk.model().write_time(0);
        }
        let mut drain = inner.ctx.disk.model().drain_time(bytes);
        if inner.ctx.disk.counters().write_retries > retries_before {
            // A transient write fault: the device wrote the batch twice.
            drain = drain + drain;
        }
        inner.ctx.stats.log_flushes += 1;
        inner.ctx.stats.log_bytes += bytes as u64;
        inner.ctx.metrics.flush_bytes.record(bytes as u64);
        inner.ctx.trace(TraceKind::LogFlush {
            bytes: bytes as u64,
            overlapped: false,
        });
        let cpu = inner.ctx.disk.model().buffered_write_cost(bytes);
        let now = inner.ctx.now();
        let backpressure = self.disk_free_at.saturating_since(now);
        let start = now.max(self.disk_free_at);
        self.disk_free_at = start + drain;
        inner.ctx.stats.disk_time_overlapped += drain;
        cpu + backpressure
    }

    /// Read and charge the next logged message, if any. Replay scans
    /// the log in order, so the device cost is sequential-bandwidth
    /// plus a per-record read()/decode overhead (~100 us on the era's
    /// CPU), not a full seek per record.
    fn next_record(&mut self, inner: &mut NodeInner) -> Option<Msg> {
        let cursor = self.cursor.as_mut().expect("not in recovery");
        let (bytes, _) = inner.ctx.disk.read_record(ML_STREAM, *cursor)?;
        *cursor += 1;
        let cost = inner.ctx.disk.model().drain_time(bytes.len()) + SimDuration::from_micros(100);
        inner.ctx.charge_disk(cost);
        Some(Msg::decode_from_slice(&bytes).expect("corrupt ML log record"))
    }

    /// After a successful replay step, drop out of recovery eagerly if
    /// the whole log has been consumed (the pre-crash state is reached).
    fn maybe_finish(&mut self, inner: &NodeInner) {
        if let Some(cursor) = self.cursor {
            if cursor >= inner.ctx.disk.record_count(ML_STREAM) {
                self.cursor = None;
            }
        }
    }

    fn apply_logged_diff_flush(inner: &mut NodeInner, msg: &Msg) {
        if let Msg::DiffFlush { writer, diffs } = msg {
            let payload: usize = diffs.iter().map(|d| d.encoded_size()).sum();
            inner.ctx.charge_copy(payload);
            for d in diffs {
                inner.pages.apply_home_diff(d, *writer);
            }
        }
    }
}

impl Default for MlLogger {
    fn default() -> Self {
        MlLogger::new()
    }
}

impl FaultTolerance for MlLogger {
    fn name(&self) -> &'static str {
        "ml"
    }

    fn on_incoming(&mut self, inner: &mut NodeInner, msg: &Msg) {
        if self.degraded {
            return;
        }
        let log_it = matches!(
            msg,
            Msg::PageReply { .. }
                | Msg::DiffFlush { .. }
                | Msg::LockGrant { .. }
                | Msg::BarrierRelease { .. }
        );
        if log_it {
            // Sized encode: one exact allocation per record (`Msg` sizes
            // itself by arithmetic, so this costs no pre-pass encode).
            let bytes = msg.encode_to_sized_vec();
            inner.ctx.trace(TraceKind::LogAppend {
                bytes: bytes.len() as u64,
            });
            self.staged_bytes += bytes.len();
            self.staged.push(bytes);
        }
    }

    fn on_notices(
        &mut self,
        inner: &mut NodeInner,
        kind: SyncKind,
        _notices: &[hlrc::WriteNotice],
        _vc: &VClock,
    ) {
        // Flush at barrier completion so a barrier-aligned crash finds a
        // consistent prefix on disk (the release record included). Only
        // the write() copy is on the critical path; the device drains
        // in the background and is durable long before the next barrier.
        if matches!(kind, SyncKind::Barrier(_)) {
            let d = self.flush_staged(inner);
            if d > SimDuration::ZERO {
                inner.ctx.charge_disk(d);
            }
        }
    }

    fn flush_before_send(&mut self, inner: &mut NodeInner) -> SimDuration {
        // The whole volatile log goes to disk before the node sends its
        // end-of-interval messages: no overlap, full critical path.
        self.flush_staged(inner)
    }

    fn begin_recovery(&mut self, inner: &mut NodeInner) {
        inner.ctx.trace(TraceKind::RecoveryBegin);
        self.staged.clear();
        self.staged_bytes = 0;
        if self.degraded || inner.ctx.disk.has_failed() {
            // The log device died before the crash. Replay whatever
            // prefix made it to stable storage; the tail of the
            // pre-crash execution is simply re-executed live.
            self.degraded = true;
            inner.ctx.trace(TraceKind::RecoveryDegraded);
        }
        self.restored_app = crate::checkpoint::restore_meta(inner);
        self.cursor = Some(0);
        self.maybe_finish(inner);
    }

    fn restored_app_state(&mut self) -> Option<Vec<u8>> {
        self.restored_app.take()
    }

    fn on_checkpoint(&mut self, inner: &mut NodeInner) {
        if inner.ctx.disk.has_failed() {
            // The checkpoint could not be persisted: the existing log
            // prefix is still the only recovery data and must be kept.
            return;
        }
        // Everything before the checkpoint is no longer needed for
        // replay: truncate the log.
        self.staged.clear();
        self.staged_bytes = 0;
        inner.ctx.disk.truncate(ML_STREAM);
    }

    fn in_recovery(&self) -> bool {
        self.cursor.is_some()
    }

    fn recovery_acquire(&mut self, inner: &mut NodeInner, lock: u32) -> RecoveryStep {
        loop {
            let Some(msg) = self.next_record(inner) else {
                self.cursor = None;
                return RecoveryStep::LogExhausted;
            };
            match &msg {
                Msg::DiffFlush { .. } => Self::apply_logged_diff_flush(inner, &msg),
                Msg::LockGrant {
                    lock: l,
                    vc,
                    notices,
                } => {
                    assert_eq!(*l, lock, "ML replay drift: wrong lock grant");
                    inner.replay_close_interval();
                    replay_apply_notices(inner, notices, vc);
                    inner.lock_grant_vcs.insert(lock, vc.clone());
                    inner.ctx.trace(TraceKind::RecoveryReplay {
                        notices: notices.len() as u32,
                    });
                    self.maybe_finish(inner);
                    return RecoveryStep::Replayed;
                }
                other => panic!(
                    "ML replay drift at acquire({lock}): unexpected {}",
                    other.kind()
                ),
            }
        }
    }

    fn recovery_barrier(&mut self, inner: &mut NodeInner, epoch: u32) -> RecoveryStep {
        loop {
            let Some(msg) = self.next_record(inner) else {
                self.cursor = None;
                return RecoveryStep::LogExhausted;
            };
            match &msg {
                Msg::DiffFlush { .. } => Self::apply_logged_diff_flush(inner, &msg),
                Msg::BarrierRelease {
                    epoch: e,
                    vc,
                    notices,
                } => {
                    assert_eq!(*e, epoch, "ML replay drift: wrong barrier epoch");
                    // Close the interval locally (diffs are already at
                    // their homes from before the crash).
                    inner.replay_close_interval();
                    replay_apply_notices(inner, notices, vc);
                    inner.last_barrier_vc = inner.vc.clone();
                    let lb = inner.last_barrier_vc.clone();
                    inner.history.retain(|n| !lb.covers(n.interval));
                    inner.ctx.trace(TraceKind::RecoveryReplay {
                        notices: notices.len() as u32,
                    });
                    self.maybe_finish(inner);
                    return RecoveryStep::Replayed;
                }
                other => panic!(
                    "ML replay drift at barrier({epoch}): unexpected {}",
                    other.kind()
                ),
            }
        }
    }

    fn recovery_fault(&mut self, inner: &mut NodeInner, page: u32, _write: bool) -> RecoveryStep {
        loop {
            let Some(msg) = self.next_record(inner) else {
                self.cursor = None;
                return RecoveryStep::LogExhausted;
            };
            match &msg {
                Msg::DiffFlush { .. } => Self::apply_logged_diff_flush(inner, &msg),
                Msg::PageReply { page: p, data, .. } => {
                    assert_eq!(*p, page, "ML replay drift: wrong page reply");
                    inner.ctx.charge_copy(data.len());
                    inner
                        .pages
                        .install_copy(page, data, PageState::ReadOnly, &mut inner.pool);
                    inner.ctx.trace(TraceKind::RecoveryReplay { notices: 0 });
                    self.maybe_finish(inner);
                    return RecoveryStep::Replayed;
                }
                other => panic!(
                    "ML replay drift at fault({page}): unexpected {}",
                    other.kind()
                ),
            }
        }
    }
}
