//! Traditional message logging (ML), §3.1 of the paper.
//!
//! ML follows the piecewise-deterministic model: every incoming message
//! that affects execution — full page copies fetched from homes, diffs
//! arriving at this home, and the lock-grant / barrier-release messages
//! carrying write-invalidation notices — is logged *in its entirety* in
//! volatile memory, and the volatile log is flushed to the local disk at
//! the next synchronization point, **before** the node communicates.
//! The flush is therefore fully on the critical path, and the log is
//! large (it contains whole pages), which is exactly the overhead the
//! paper measures against CCL.
//!
//! ML-recovery replays the logged messages in receipt order: each page
//! miss and each synchronization operation reads records from disk (one
//! access per record — the "memory miss idle time" and "high disk access
//! latency" of §4.3), with no network traffic at all.

use hlrc::{FaultTolerance, Msg, NodeInner, RecoveryStep, SyncKind};
use pagemem::{Decode, Encode, PageState, VClock};
use simnet::{LogObj, SimDuration, SimTime, TraceKind};

/// A record handed to replay: from the verified on-disk prefix, or
/// synthesized from the barrier manager's release history when the log
/// lost its tail (see [`MlLogger::begin_recovery`]).
struct ReplayRecord {
    msg: Msg,
    /// Synthesized records may legitimately disagree with the
    /// re-executed operation sequence (mid-log damage can discard the
    /// records between the salvaged prefix and the synthesized horizon);
    /// replay then abandons them instead of treating the drift as a
    /// logic bug.
    synthesized: bool,
}

use crate::frame;
use crate::recovery::replay_apply_notices;

/// Stable-storage stream holding the ML log.
pub const ML_STREAM: &str = "ml.log";

/// Traditional message logging.
pub struct MlLogger {
    staged: Vec<Vec<u8>>,
    staged_bytes: usize,
    cursor: Option<usize>,
    restored_app: Option<Vec<u8>>,
    /// When the device finishes draining the OS write cache.
    disk_free_at: SimTime,
    /// The log device failed permanently: logging has stopped and a
    /// later crash replays only the persisted prefix, re-executing the
    /// rest live (degraded recovery).
    degraded: bool,
    /// Stream epoch stamped into every frame; bumped at each log
    /// truncation so stale records can never join the new log.
    epoch: u32,
    /// Frame sequence number of the next staged record.
    next_seq: u32,
    /// The device is at capacity: the last flush was refused and
    /// logging is paused until a checkpoint truncates the log. A crash
    /// meanwhile replays the persisted prefix, then re-executes live.
    paused_full: bool,
    /// Verified-prefix length established by the last recovery scan
    /// (replay never reads past it, even if a failed device refused
    /// the repair truncation).
    log_valid: usize,
    /// Barrier-release records synthesized from the barrier manager's
    /// release history, consumed by replay after the on-disk prefix.
    synthesized: Vec<Msg>,
}

impl MlLogger {
    /// A fresh ML protocol instance.
    pub fn new() -> MlLogger {
        MlLogger {
            staged: Vec::new(),
            staged_bytes: 0,
            cursor: None,
            restored_app: None,
            disk_free_at: SimTime::ZERO,
            degraded: false,
            epoch: 0,
            next_seq: 0,
            paused_full: false,
            log_valid: 0,
            synthesized: Vec::new(),
        }
    }

    /// True once the log device has failed permanently.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Write the staged log through the OS cache. Returns the critical-
    /// path cost: the buffered-write copy plus any stall while the
    /// device is still draining earlier flushes. The device drain itself
    /// proceeds in the background (tracked by `disk_free_at`).
    fn flush_staged(&mut self, inner: &mut NodeInner) -> SimDuration {
        if self.degraded || self.paused_full {
            // The device is gone (or full); drop anything staged.
            self.staged.clear();
            self.staged_bytes = 0;
            return SimDuration::ZERO;
        }
        if self.staged.is_empty() {
            return SimDuration::ZERO;
        }
        let bytes = self.staged_bytes;
        let retries_before = inner.ctx.disk.counters().write_retries;
        let _ = inner
            .ctx
            .disk
            .flush_records(ML_STREAM, std::mem::take(&mut self.staged));
        self.staged_bytes = 0;
        if inner.ctx.disk.has_failed() {
            // Permanent device failure: the batch is lost and logging
            // stops for good. The node keeps computing; the cost here
            // is the one futile access that discovered the failure.
            self.degraded = true;
            inner.ctx.trace(TraceKind::LogDeviceFailed);
            return inner.ctx.disk.model().write_time(0);
        }
        if inner.ctx.disk.is_full() {
            // ENOSPC: the batch was refused whole. Pause logging —
            // appending a later batch over the gap would poison replay
            // — until a coordinated checkpoint truncates the log and
            // frees the space. A crash meanwhile degrades gracefully:
            // the persisted prefix replays, the rest re-executes live.
            self.paused_full = true;
            inner.ctx.trace(TraceKind::LogDeviceFull);
            return inner.ctx.disk.model().write_time(0);
        }
        let mut drain = inner.ctx.disk.model().drain_time(bytes);
        if inner.ctx.disk.counters().write_retries > retries_before {
            // A transient write fault: the device wrote the batch twice.
            drain = drain + drain;
        }
        inner.ctx.stats.log_flushes += 1;
        inner.ctx.stats.log_bytes += bytes as u64;
        inner.ctx.metrics.flush_bytes.record(bytes as u64);
        inner.ctx.trace(TraceKind::LogFlush {
            bytes: bytes as u64,
            overlapped: false,
        });
        let cpu = inner.ctx.disk.model().buffered_write_cost(bytes);
        let now = inner.ctx.now();
        let backpressure = self.disk_free_at.saturating_since(now);
        let start = now.max(self.disk_free_at);
        self.disk_free_at = start + drain;
        inner.ctx.stats.disk_time_overlapped += drain;
        cpu + backpressure
    }

    /// Read and charge the next logged message, if any. Replay scans
    /// the log in order, so the device cost is sequential-bandwidth
    /// plus a per-record read()/decode overhead (~100 us on the era's
    /// CPU), not a full seek per record.
    fn next_record(&mut self, inner: &mut NodeInner) -> Option<ReplayRecord> {
        let cursor = self.cursor.as_mut().expect("not in recovery");
        if *cursor >= self.log_valid {
            // The on-disk prefix is consumed: continue through the
            // synthesized barrier releases (no device transfer — their
            // content came over the network with the history reply).
            let msg = self.synthesized.get(*cursor - self.log_valid)?.clone();
            *cursor += 1;
            return Some(ReplayRecord {
                msg,
                synthesized: true,
            });
        }
        let (bytes, _) = inner.ctx.disk.read_record(ML_STREAM, *cursor)?;
        *cursor += 1;
        let cost = inner.ctx.disk.model().drain_time(bytes.len()) + SimDuration::from_micros(100);
        inner.ctx.charge_disk(cost);
        // The recovery scan verified every record up to `log_valid`, so
        // both unwraps hold: damage was already cut at the salvage step.
        let frame = frame::decode_frame(&bytes).expect("verified ML frame");
        Some(ReplayRecord {
            msg: Msg::decode_from_slice(&frame.payload).expect("verified ML log record"),
            synthesized: false,
        })
    }

    /// After a successful replay step, drop out of recovery eagerly if
    /// the whole verified log prefix (and every synthesized release) has
    /// been consumed (the pre-crash — or pre-damage — state is reached).
    fn maybe_finish(&mut self, inner: &NodeInner) {
        if let Some(cursor) = self.cursor {
            let limit =
                self.log_valid.min(inner.ctx.disk.record_count(ML_STREAM)) + self.synthesized.len();
            if cursor >= limit {
                self.cursor = None;
            }
        }
    }

    /// Abandon the rest of the replay: a synthesized record disagreed
    /// with the re-executed operation sequence, so the synthesized
    /// horizon is not reachable by guided replay. Fall back to live
    /// re-execution from here (the pre-synthesis behavior).
    fn abandon_replay(&mut self) -> RecoveryStep {
        self.cursor = None;
        self.synthesized.clear();
        RecoveryStep::LogExhausted
    }

    /// The barrier manager's retained release history: read locally when
    /// this node *is* the manager, fetched over the network otherwise.
    /// A crashed manager lost its history and answers with an empty
    /// list; synthesis then degrades to a no-op (single-failure best
    /// effort). ML replay is otherwise purely local, so every other
    /// message class is safe to defer until recovery ends.
    fn fetch_release_history(&mut self, inner: &mut NodeInner) -> Vec<hlrc::EpochRelease> {
        let mgr = inner.cfg.barrier_manager();
        if mgr == inner.me() {
            return inner
                .barrier_mgr
                .as_ref()
                .map(|m| m.release_history())
                .unwrap_or_default();
        }
        inner
            .ctx
            .send(mgr, Msg::ReleaseHistoryRequest)
            .expect("send release history request");
        loop {
            let env = inner.ctx.recv().expect("cluster channel closed");
            if let Msg::ReleaseHistoryReply { .. } = &env.payload {
                inner.ctx.absorb(&env);
                let Msg::ReleaseHistoryReply { releases } = env.payload else {
                    unreachable!("matched above");
                };
                return releases;
            }
            inner.ctx.defer(env);
        }
    }

    fn apply_logged_diff_flush(inner: &mut NodeInner, msg: &Msg) {
        if let Msg::DiffFlush { writer, diffs } = msg {
            let payload: usize = diffs.iter().map(|d| d.encoded_size()).sum();
            inner.ctx.charge_copy(payload);
            for d in diffs {
                inner.pages.apply_home_diff(d, *writer);
            }
        }
    }

    /// A logged in-migration. Home mappings and checkpoint bases
    /// survive a crash (the checkpoint taken at the migration's own
    /// barrier covered the adopted page), so replay normally finds the
    /// adoption already reflected in the restored page table and only
    /// consumes the record; a still-premigration mapping adopts now.
    fn apply_logged_migration(inner: &mut NodeInner, msg: &Msg) {
        if let Msg::HomeMigrate {
            page,
            data,
            version,
        } = msg
        {
            if !inner.pages.is_home(*page) {
                inner.ctx.charge_copy(data.len());
                inner.pages.adopt_home(*page, data, version.clone());
            }
        }
    }

    /// A logged trailing prefetch batch: reinstall exactly the copies
    /// live execution installed (the record was trimmed to the installed
    /// subset before staging). Absorbed non-blocking at any replay
    /// point — live, the batch was serviced at whatever inbox drain the
    /// node happened to block in.
    fn apply_logged_batch(inner: &mut NodeInner, msg: &Msg) {
        if let Msg::PageReplyBatch { pages, .. } = msg {
            for (p, data, _version) in pages.iter() {
                inner.ctx.charge_copy(data.len());
                inner
                    .pages
                    .install_copy(*p, data, PageState::ReadOnly, &mut inner.pool);
                inner.pages.entry_mut(*p).prefetched = true;
            }
        }
    }
}

/// Emit the `LogAppend` telemetry for one framed ML record, tagged with
/// the coherence object(s) it is about. A `DiffFlush` record carries
/// several pages: it emits one event per page, bytes split by each
/// diff's encoded size with the frame/header overhead assigned to the
/// first, so the events sum exactly to the record's framed size (the
/// blame engine's per-object attribution leans on that exactness).
fn trace_ml_append(inner: &mut NodeInner, msg: &Msg, record_bytes: u64) {
    match msg {
        Msg::PageReply { page, .. } => inner.ctx.trace(TraceKind::LogAppend {
            bytes: record_bytes,
            obj: LogObj::Page { page: *page },
        }),
        Msg::LockGrant { lock, .. } => inner.ctx.trace(TraceKind::LogAppend {
            bytes: record_bytes,
            obj: LogObj::Lock { lock: *lock },
        }),
        Msg::BarrierRelease { epoch, .. } => inner.ctx.trace(TraceKind::LogAppend {
            bytes: record_bytes,
            obj: LogObj::Barrier { epoch: *epoch },
        }),
        Msg::DiffFlush { diffs, .. } if !diffs.is_empty() => {
            let shares: Vec<u64> = diffs.iter().map(|d| d.encoded_size() as u64).collect();
            let overhead = record_bytes - shares.iter().sum::<u64>();
            for (i, d) in diffs.iter().enumerate() {
                let bytes = shares[i] + if i == 0 { overhead } else { 0 };
                inner.ctx.trace(TraceKind::LogAppend {
                    bytes,
                    obj: LogObj::Page { page: d.page },
                });
            }
        }
        Msg::PageReplyBatch { pages, .. } if !pages.is_empty() => {
            // One event per carried page, bytes split by each copy's
            // encoded share with the frame overhead on the first, so
            // the events sum exactly to the record's framed size.
            let shares: Vec<u64> = pages
                .iter()
                .map(|(_, data, vc)| (4 + 4 + data.len() + vc.encoded_size()) as u64)
                .collect();
            let overhead = record_bytes - shares.iter().sum::<u64>();
            for (i, (page, ..)) in pages.iter().enumerate() {
                let bytes = shares[i] + if i == 0 { overhead } else { 0 };
                inner.ctx.trace(TraceKind::LogAppend {
                    bytes,
                    obj: LogObj::Page { page: *page },
                });
            }
        }
        Msg::HomeMigrate { page, .. } => inner.ctx.trace(TraceKind::LogAppend {
            bytes: record_bytes,
            obj: LogObj::Page { page: *page },
        }),
        _ => inner.ctx.trace(TraceKind::LogAppend {
            bytes: record_bytes,
            obj: LogObj::Meta,
        }),
    }
}

impl Default for MlLogger {
    fn default() -> Self {
        MlLogger::new()
    }
}

impl FaultTolerance for MlLogger {
    fn name(&self) -> &'static str {
        "ml"
    }

    fn on_incoming(&mut self, inner: &mut NodeInner, msg: &Msg) {
        if self.degraded || self.paused_full {
            return;
        }
        let log_it = matches!(
            msg,
            Msg::PageReply { .. }
                | Msg::PageReplyBatch { .. }
                | Msg::DiffFlush { .. }
                | Msg::LockGrant { .. }
                | Msg::BarrierRelease { .. }
                | Msg::HomeMigrate { .. }
        );
        if log_it {
            // Sized encode: one exact allocation per record (`Msg` sizes
            // itself by arithmetic, so this costs no pre-pass encode),
            // wrapped in the checksummed frame it will persist under.
            let payload = msg.encode_to_sized_vec();
            let record = frame::frame_record(self.epoch, self.next_seq, &payload);
            self.next_seq += 1;
            trace_ml_append(inner, msg, record.len() as u64);
            self.staged_bytes += record.len();
            self.staged.push(record);
        }
    }

    fn on_notices(
        &mut self,
        inner: &mut NodeInner,
        kind: SyncKind,
        _notices: &[hlrc::WriteNotice],
        _vc: &VClock,
    ) {
        // Flush at barrier completion so a barrier-aligned crash finds a
        // consistent prefix on disk (the release record included). Only
        // the write() copy is on the critical path; the device drains
        // in the background and is durable long before the next barrier.
        if matches!(kind, SyncKind::Barrier(_)) {
            let d = self.flush_staged(inner);
            if d > SimDuration::ZERO {
                inner.ctx.charge_disk(d);
            }
        }
    }

    fn flush_before_send(&mut self, inner: &mut NodeInner) -> SimDuration {
        // The whole volatile log goes to disk before the node sends its
        // end-of-interval messages: no overlap, full critical path.
        self.flush_staged(inner)
    }

    fn flush_before_ack(&mut self, inner: &mut NodeInner) -> SimDuration {
        // Receiver-based pessimistic logging: once the home acks a diff
        // flush the writer discards its copy, leaving this log as the
        // update's only surviving record. The staged frame must be
        // durable before the ack goes out, or a crash tearing the final
        // flush would silently lose an update the cluster already acted
        // on. (CCL does not need this gate — the writer's own stable
        // log keeps the diff and recovery refetches it from there.)
        self.flush_staged(inner)
    }

    fn begin_recovery(&mut self, inner: &mut NodeInner) {
        inner.ctx.trace(TraceKind::RecoveryBegin);
        self.staged.clear();
        self.staged_bytes = 0;
        self.synthesized.clear();
        if self.degraded || inner.ctx.disk.has_failed() || self.paused_full {
            // The log device died (or filled) before the crash. Replay
            // whatever prefix made it to stable storage; the tail of
            // the pre-crash execution is simply re-executed live.
            self.degraded = self.degraded || inner.ctx.disk.has_failed();
            inner.ctx.trace(TraceKind::RecoveryDegraded);
        }
        // Salvage scan: verify every frame, adopt the longest valid
        // prefix, and cut the torn/corrupt tail off the stable stream
        // so later appends stay contiguous.
        let s = frame::salvage(inner.ctx.disk.peek_stream(ML_STREAM));
        let valid = s.payloads.len();
        if !s.is_clean() {
            if s.crc_mismatches > 0 {
                inner
                    .ctx
                    .trace(TraceKind::CrcMismatch { stream: ML_STREAM });
            }
            inner.ctx.trace(TraceKind::TornTailDetected {
                stream: ML_STREAM,
                salvaged: valid as u32,
                discarded: s.discarded,
            });
            inner.ctx.disk.truncate_records(ML_STREAM, valid);
            inner.ctx.trace(TraceKind::LogTruncated {
                stream: ML_STREAM,
                records: valid as u32,
            });
        }
        self.log_valid = valid;
        self.epoch = s.epoch;
        self.next_seq = valid as u32;
        let mut meta_rot = false;
        match crate::checkpoint::restore_meta(inner) {
            Ok(app) => self.restored_app = app,
            Err(_) => {
                // The persisted checkpoint metadata is rotten. The log
                // begins at a checkpoint whose protocol state we cannot
                // restore, so neither is usable: discard both and
                // re-execute from scratch instead of panicking.
                inner.ctx.trace(TraceKind::CrcMismatch {
                    stream: crate::checkpoint::CKPT_META,
                });
                inner.ctx.trace(TraceKind::RecoveryDegraded);
                inner.ctx.disk.truncate(crate::checkpoint::CKPT_META);
                inner.ctx.disk.truncate(ML_STREAM);
                self.log_valid = 0;
                self.epoch += 1;
                self.next_seq = 0;
                self.restored_app = None;
                meta_rot = true;
            }
        }
        // A damaged log may have lost the final barrier-release records
        // with its tail (the completion flush is the only batch whose
        // durability no ack gates). Replaying only the salvaged prefix
        // would end recovery *before* the cluster-visible horizon:
        // deferred peer requests would be served from home copies the
        // live catch-up has not rewritten yet, and the catch-up itself
        // would re-send diffs the homes already applied. The barrier
        // manager's release history holds exactly the lost releases'
        // content (epoch, merged clock, merged notices), so synthesize
        // them and replay to the true horizon instead.
        if !meta_rot && (!s.is_clean() || self.degraded || self.paused_full) {
            let last_logged = s
                .payloads
                .iter()
                .filter_map(|p| match Msg::decode_from_slice(p) {
                    Ok(Msg::BarrierRelease { epoch, .. }) => Some(epoch),
                    _ => None,
                })
                .max();
            let releases = self.fetch_release_history(inner);
            for (epoch, vc, notices, migrations) in releases {
                // Skip epochs the restored checkpoint already covers and
                // epochs the salvaged prefix still has real records for.
                if epoch < inner.barrier_epoch || last_logged.is_some_and(|e| epoch <= e) {
                    continue;
                }
                self.synthesized.push(Msg::BarrierRelease {
                    epoch,
                    vc: vc.into(),
                    notices: notices.into(),
                    migrations: migrations.into(),
                });
            }
            if !self.synthesized.is_empty() {
                inner.ctx.trace(TraceKind::SyncSynthesized {
                    records: self.synthesized.len() as u32,
                });
            }
        }
        self.cursor = Some(0);
        self.maybe_finish(inner);
    }

    fn restored_app_state(&mut self) -> Option<Vec<u8>> {
        self.restored_app.take()
    }

    fn on_checkpoint(&mut self, inner: &mut NodeInner) {
        if inner.ctx.disk.has_failed() {
            // The checkpoint could not be persisted: the existing log
            // prefix is still the only recovery data and must be kept.
            return;
        }
        // Everything before the checkpoint is no longer needed for
        // replay: truncate the log and open a fresh stream epoch so
        // stale records can never be mistaken for the new log's.
        self.staged.clear();
        self.staged_bytes = 0;
        inner.ctx.disk.truncate(ML_STREAM);
        self.epoch += 1;
        self.next_seq = 0;
        if self.paused_full && !inner.ctx.disk.is_full() {
            // The truncation freed space: logging resumes cleanly from
            // this checkpoint.
            self.paused_full = false;
        }
    }

    fn in_recovery(&self) -> bool {
        self.cursor.is_some()
    }

    fn recovery_acquire(&mut self, inner: &mut NodeInner, lock: u32) -> RecoveryStep {
        loop {
            let Some(rec) = self.next_record(inner) else {
                self.cursor = None;
                return RecoveryStep::LogExhausted;
            };
            match &rec.msg {
                Msg::DiffFlush { .. } => Self::apply_logged_diff_flush(inner, &rec.msg),
                Msg::HomeMigrate { .. } => Self::apply_logged_migration(inner, &rec.msg),
                Msg::PageReplyBatch { .. } => Self::apply_logged_batch(inner, &rec.msg),
                Msg::LockGrant {
                    lock: l,
                    vc,
                    notices,
                } => {
                    assert_eq!(*l, lock, "ML replay drift: wrong lock grant");
                    inner.replay_close_interval();
                    replay_apply_notices(inner, notices, vc);
                    inner.lock_grant_vcs.insert(lock, vc.clone());
                    inner.ctx.trace(TraceKind::RecoveryReplay {
                        notices: notices.len() as u32,
                    });
                    self.maybe_finish(inner);
                    return RecoveryStep::Replayed;
                }
                other => {
                    if rec.synthesized {
                        return self.abandon_replay();
                    }
                    panic!(
                        "ML replay drift at acquire({lock}): unexpected {}",
                        other.kind()
                    )
                }
            }
        }
    }

    fn recovery_barrier(&mut self, inner: &mut NodeInner, epoch: u32) -> RecoveryStep {
        loop {
            let Some(rec) = self.next_record(inner) else {
                self.cursor = None;
                return RecoveryStep::LogExhausted;
            };
            match &rec.msg {
                Msg::DiffFlush { .. } => Self::apply_logged_diff_flush(inner, &rec.msg),
                Msg::HomeMigrate { .. } => Self::apply_logged_migration(inner, &rec.msg),
                Msg::PageReplyBatch { .. } => Self::apply_logged_batch(inner, &rec.msg),
                Msg::BarrierRelease {
                    epoch: e,
                    vc,
                    notices,
                    migrations,
                } => {
                    if *e != epoch && rec.synthesized {
                        return self.abandon_replay();
                    }
                    assert_eq!(*e, epoch, "ML replay drift: wrong barrier epoch");
                    // Close the interval locally (diffs are already at
                    // their homes from before the crash).
                    inner.replay_close_interval();
                    // Migrations before notices, as live execution does.
                    // Mappings survive the crash, so these are normally
                    // no-ops; in-migrations are absorbed from their own
                    // `HomeMigrate` records as replay reaches them.
                    let me = inner.me();
                    for &(page, to) in migrations.iter() {
                        let to = to as usize;
                        if to != me && inner.pages.entry(page).home != to {
                            inner.pages.note_migrated(page, to);
                        }
                    }
                    replay_apply_notices(inner, notices, vc);
                    inner.last_barrier_vc = inner.vc.clone();
                    let lb = inner.last_barrier_vc.clone();
                    inner.history.retain(|n| !lb.covers(n.interval));
                    inner.ctx.trace(TraceKind::RecoveryReplay {
                        notices: notices.len() as u32,
                    });
                    self.maybe_finish(inner);
                    return RecoveryStep::Replayed;
                }
                other => {
                    if rec.synthesized {
                        return self.abandon_replay();
                    }
                    panic!(
                        "ML replay drift at barrier({epoch}): unexpected {}",
                        other.kind()
                    )
                }
            }
        }
    }

    fn recovery_fault(&mut self, inner: &mut NodeInner, page: u32, _write: bool) -> RecoveryStep {
        loop {
            let Some(rec) = self.next_record(inner) else {
                self.cursor = None;
                return RecoveryStep::LogExhausted;
            };
            match &rec.msg {
                Msg::DiffFlush { .. } => Self::apply_logged_diff_flush(inner, &rec.msg),
                Msg::HomeMigrate { .. } => Self::apply_logged_migration(inner, &rec.msg),
                Msg::PageReply { page: p, data, .. } => {
                    assert_eq!(*p, page, "ML replay drift: wrong page reply");
                    inner.ctx.charge_copy(data.len());
                    inner
                        .pages
                        .install_copy(page, data, PageState::ReadOnly, &mut inner.pool);
                    inner.ctx.trace(TraceKind::RecoveryReplay { notices: 0 });
                    self.maybe_finish(inner);
                    return RecoveryStep::Replayed;
                }
                Msg::PageReplyBatch { pages, .. } => {
                    // A trailing prefetch batch: absorb it. If it covers
                    // the faulting page the fault is satisfied (live,
                    // the install beat the access); otherwise keep
                    // scanning for the fault's own reply record.
                    let covers = pages.iter().any(|(p, ..)| *p == page);
                    Self::apply_logged_batch(inner, &rec.msg);
                    if covers {
                        // The replayed fault consumes the predicted
                        // copy, as the live access (a prefetch hit) did.
                        inner.pages.entry_mut(page).prefetched = false;
                        inner.ctx.trace(TraceKind::RecoveryReplay { notices: 0 });
                        self.maybe_finish(inner);
                        return RecoveryStep::Replayed;
                    }
                }
                other => {
                    if rec.synthesized {
                        return self.abandon_replay();
                    }
                    panic!(
                        "ML replay drift at fault({page}): unexpected {}",
                        other.kind()
                    )
                }
            }
        }
    }
}
