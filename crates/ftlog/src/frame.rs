//! Framed, checksummed on-disk record format shared by every stable
//! stream (ML message log, CCL record log, both checkpoint streams).
//!
//! A stable-storage record is never trusted as written: real devices
//! tear the tail of an in-flight flush and rot bits at rest. Every
//! record is therefore wrapped in an 18-byte header —
//!
//! ```text
//! offset  size  field
//!      0     2  magic        (0xF51C, little-endian)
//!      2     4  stream epoch (bumped on every truncation)
//!      6     4  record seq   (position within the epoch, from 0)
//!     10     4  payload len
//!     14     4  CRC-32 (IEEE) over epoch ‖ seq ‖ len ‖ payload
//!     18     …  payload
//! ```
//!
//! — so recovery can [`salvage`] the longest valid prefix of a stream:
//! it stops at the first frame that is short, mangled, or out of
//! sequence, and everything before that point is guaranteed intact
//! (magic + length + CRC catch torn tails and latent single-bit rot;
//! epoch + seq catch records surviving from a superseded epoch).
//!
//! [`framed_size`] is the exact `encoded_size` mirror: staged-byte
//! accounting and Table 2 log-byte totals include the header overhead
//! without ever encoding twice.

/// Frame magic, first two bytes of every record.
pub const FRAME_MAGIC: u16 = 0xF51C;

/// Exact header overhead per framed record, in bytes.
pub const FRAME_HEADER_BYTES: usize = 18;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// built at compile time so the codec stays dependency-free.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0u32, bytes)
}

/// The CRC a frame stores: over epoch, seq, payload length, and the
/// payload — so a single flipped bit *anywhere* in the record fails
/// verification (a payload-only CRC would let header rot through).
fn record_crc(epoch: u32, seq: u32, payload: &[u8]) -> u32 {
    let mut crc = !0u32;
    crc = crc32_update(crc, &epoch.to_le_bytes());
    crc = crc32_update(crc, &seq.to_le_bytes());
    crc = crc32_update(crc, &(payload.len() as u32).to_le_bytes());
    !crc32_update(crc, payload)
}

/// Exact on-disk size of a framed record with a `payload_len`-byte
/// payload (the `encoded_size` mirror of [`frame_record`]).
pub fn framed_size(payload_len: usize) -> usize {
    payload_len + FRAME_HEADER_BYTES
}

/// Wrap `payload` in a frame for position `seq` of stream epoch
/// `epoch`.
pub fn frame_record(epoch: u32, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(framed_size(payload.len()));
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(epoch, seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A successfully verified frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Stream epoch the record was written under.
    pub epoch: u32,
    /// Record position within the epoch.
    pub seq: u32,
    /// The verified payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a header — a torn (truncated) tail.
    TooShort,
    /// The magic bytes are wrong — garbage or a garbled header.
    BadMagic,
    /// The payload length does not match the record size — torn tail.
    BadLength,
    /// The record CRC does not match — bit rot or a garbled write.
    CrcMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            FrameError::TooShort => "record shorter than a frame header",
            FrameError::BadMagic => "bad frame magic",
            FrameError::BadLength => "frame length does not match record size",
            FrameError::CrcMismatch => "payload CRC mismatch",
        };
        f.write_str(what)
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Verify and unwrap one framed record.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::TooShort);
    }
    if le_u16(&bytes[0..2]) != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let epoch = le_u32(&bytes[2..6]);
    let seq = le_u32(&bytes[6..10]);
    let len = le_u32(&bytes[10..14]) as usize;
    if bytes.len() != FRAME_HEADER_BYTES + len {
        return Err(FrameError::BadLength);
    }
    let payload = &bytes[FRAME_HEADER_BYTES..];
    if record_crc(epoch, seq, payload) != le_u32(&bytes[14..18]) {
        return Err(FrameError::CrcMismatch);
    }
    Ok(Frame {
        epoch,
        seq,
        payload: payload.to_vec(),
    })
}

/// The result of scanning a stable stream for its longest valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// Verified payloads, in order — the longest valid prefix.
    pub payloads: Vec<Vec<u8>>,
    /// The stream epoch (adopted from the first valid frame; 0 for an
    /// empty stream).
    pub epoch: u32,
    /// Records cut because the first bad frame was torn (truncated or
    /// length-mangled) — 1 or 0; the damaged record itself.
    pub torn: u32,
    /// Records cut because the first bad frame failed its CRC or magic
    /// check (bit rot / garbled write) — 1 or 0.
    pub crc_mismatches: u32,
    /// Total records discarded (the first bad frame plus everything
    /// after it — a log's suffix is meaningless past a gap).
    pub discarded: u32,
}

impl Salvage {
    /// True if the whole stream verified (nothing was cut).
    pub fn is_clean(&self) -> bool {
        self.discarded == 0
    }
}

/// Scan `records` in order, verifying each frame, and salvage the
/// longest valid prefix.
///
/// The scan stops at the first record that fails verification — wrong
/// magic, wrong length, CRC mismatch, an epoch differing from the
/// first frame's, or a sequence number that is not its position. That
/// record and every later one are discarded: records after a gap may
/// depend on the lost one, so only the contiguous verified prefix is
/// safe to replay.
pub fn salvage(records: &[Vec<u8>]) -> Salvage {
    let mut out = Salvage {
        payloads: Vec::new(),
        epoch: 0,
        torn: 0,
        crc_mismatches: 0,
        discarded: 0,
    };
    for (i, rec) in records.iter().enumerate() {
        match decode_frame(rec) {
            Ok(frame) => {
                if i == 0 {
                    out.epoch = frame.epoch;
                }
                if frame.epoch != out.epoch || frame.seq != i as u32 {
                    // A stale record from a superseded epoch, or a
                    // sequencing gap: structurally intact but not part
                    // of this log — treated like a torn tail.
                    out.torn = 1;
                    out.discarded = (records.len() - i) as u32;
                    return out;
                }
                out.payloads.push(frame.payload);
            }
            Err(e) => {
                match e {
                    FrameError::CrcMismatch | FrameError::BadMagic => out.crc_mismatches = 1,
                    FrameError::TooShort | FrameError::BadLength => out.torn = 1,
                }
                out.discarded = (records.len() - i) as u32;
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips_and_sizes_match() {
        let payload = b"hello stable storage".to_vec();
        let rec = frame_record(3, 7, &payload);
        assert_eq!(rec.len(), framed_size(payload.len()));
        let frame = decode_frame(&rec).unwrap();
        assert_eq!(frame.epoch, 3);
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn empty_payload_frames_cleanly() {
        let rec = frame_record(1, 0, &[]);
        assert_eq!(rec.len(), FRAME_HEADER_BYTES);
        assert_eq!(decode_frame(&rec).unwrap().payload, Vec::<u8>::new());
    }

    #[test]
    fn truncation_is_detected() {
        let rec = frame_record(1, 0, b"payload bytes");
        for cut in 0..rec.len() {
            let torn = rec[..cut].to_vec();
            let err = decode_frame(&torn).unwrap_err();
            assert!(
                matches!(err, FrameError::TooShort | FrameError::BadLength),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let rec = frame_record(2, 5, b"some payload worth protecting");
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    fn sample_stream(n: usize) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let payloads: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 5 + i]).collect();
        let records = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| frame_record(4, i as u32, p))
            .collect();
        (payloads, records)
    }

    #[test]
    fn salvage_of_clean_stream_is_full() {
        let (payloads, records) = sample_stream(6);
        let s = salvage(&records);
        assert!(s.is_clean());
        assert_eq!(s.payloads, payloads);
        assert_eq!(s.epoch, 4);
    }

    #[test]
    fn salvage_cuts_at_torn_tail() {
        let (payloads, mut records) = sample_stream(6);
        let last = records.last_mut().unwrap();
        last.truncate(last.len() - 3);
        let s = salvage(&records);
        assert_eq!(s.payloads, payloads[..5].to_vec());
        assert_eq!(s.torn, 1);
        assert_eq!(s.discarded, 1);
    }

    #[test]
    fn salvage_cuts_at_corrupt_middle_and_drops_suffix() {
        let (payloads, mut records) = sample_stream(6);
        records[2][FRAME_HEADER_BYTES] ^= 0x40; // payload bit rot
        let s = salvage(&records);
        assert_eq!(s.payloads, payloads[..2].to_vec());
        assert_eq!(s.crc_mismatches, 1);
        assert_eq!(s.discarded, 4);
    }

    #[test]
    fn salvage_rejects_stale_epoch_records() {
        let (_, mut records) = sample_stream(4);
        records[2] = frame_record(3, 2, b"older epoch survivor");
        let s = salvage(&records);
        assert_eq!(s.payloads.len(), 2);
        assert_eq!(s.torn, 1);
        assert_eq!(s.discarded, 2);
    }

    #[test]
    fn salvage_rejects_seq_gap() {
        let (_, mut records) = sample_stream(4);
        records.remove(1);
        let s = salvage(&records);
        assert_eq!(s.payloads.len(), 1);
        assert_eq!(s.discarded, 2);
    }

    #[test]
    fn empty_stream_salvages_empty() {
        let s = salvage(&[]);
        assert!(s.is_clean());
        assert!(s.payloads.is_empty());
        assert_eq!(s.epoch, 0);
    }
}
