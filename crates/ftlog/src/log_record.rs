//! On-disk record format of the coherence-centric log.
//!
//! CCL stores exactly the three kinds of information the paper's §3.2
//! enumerates, in occurrence order:
//!
//! * [`CclRecord::Sync`] — the write-invalidation notices received at an
//!   acquire or barrier, with the piggybacked timestamp;
//! * [`CclRecord::Updates`] — the *record* (not contents) of incoming
//!   updates applied to this node's home copies: writer interval + pages;
//! * [`CclRecord::Diffs`] — the diffs this node itself produced at the
//!   end of an interval.
//!
//! Traditional ML needs no record type of its own: it logs the raw
//! encoded bytes of every incoming coherence message.

use hlrc::WriteNotice;
use pagemem::{
    ByteReader, ByteWriter, CodecError, Decode, Encode, IntervalId, PageDiff, PageId, VClock,
};

/// Which synchronization operation a [`CclRecord::Sync`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncTag {
    /// Lock acquire of the given lock.
    Acquire(u32),
    /// Barrier episode with the given epoch.
    Barrier(u32),
}

/// One record in the coherence-centric log.
#[derive(Debug, Clone, PartialEq)]
pub enum CclRecord {
    /// Notices + timestamp accepted at one synchronization operation.
    Sync {
        /// Which operation.
        tag: SyncTag,
        /// The fresh write-invalidation notices received there.
        notices: Vec<WriteNotice>,
        /// The node's vector clock right after applying them.
        vc: VClock,
    },
    /// A writer's flushed diffs were applied to local home copies.
    Updates {
        /// The writer's interval.
        writer: IntervalId,
        /// The home pages it updated.
        pages: Vec<PageId>,
    },
    /// Diffs this node created at the end of `interval`.
    Diffs {
        /// The closed interval.
        interval: IntervalId,
        /// Its diffs (for non-home dirtied pages).
        diffs: Vec<PageDiff>,
    },
}

impl Encode for CclRecord {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            CclRecord::Sync { tag, notices, vc } => {
                match tag {
                    SyncTag::Acquire(l) => {
                        w.put_u8(0);
                        w.put_u32(*l);
                    }
                    SyncTag::Barrier(e) => {
                        w.put_u8(1);
                        w.put_u32(*e);
                    }
                }
                w.put_u32(notices.len() as u32);
                for n in notices {
                    n.encode(w);
                }
                vc.encode(w);
            }
            CclRecord::Updates { writer, pages } => {
                w.put_u8(2);
                writer.encode(w);
                w.put_u32(pages.len() as u32);
                for p in pages {
                    w.put_u32(*p);
                }
            }
            CclRecord::Diffs { interval, diffs } => {
                w.put_u8(3);
                interval.encode(w);
                w.put_u32(diffs.len() as u32);
                for d in diffs {
                    d.encode(w);
                }
            }
        }
    }

    /// Direct arithmetic mirror of `encode` — `stage` sizes every record
    /// for the byte accounting, so this must not serialize.
    fn encoded_size(&self) -> usize {
        match self {
            CclRecord::Sync { notices, vc, .. } => {
                1 + 4 + 4 + 12 * notices.len() + vc.encoded_size()
            }
            CclRecord::Updates { pages, .. } => 1 + 8 + 4 + 4 * pages.len(),
            CclRecord::Diffs { diffs, .. } => {
                1 + 8 + 4 + diffs.iter().map(Encode::encoded_size).sum::<usize>()
            }
        }
    }
}

impl Decode for CclRecord {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 | 1 => {
                let id = r.get_u32()?;
                let sync_tag = if tag == 0 {
                    SyncTag::Acquire(id)
                } else {
                    SyncTag::Barrier(id)
                };
                let n = r.get_u32()? as usize;
                let mut notices = Vec::with_capacity(n);
                for _ in 0..n {
                    notices.push(WriteNotice::decode(r)?);
                }
                let vc = VClock::decode(r)?;
                CclRecord::Sync {
                    tag: sync_tag,
                    notices,
                    vc,
                }
            }
            2 => {
                let writer = IntervalId::decode(r)?;
                let n = r.get_u32()? as usize;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    pages.push(r.get_u32()?);
                }
                CclRecord::Updates { writer, pages }
            }
            3 => {
                let interval = IntervalId::decode(r)?;
                let n = r.get_u32()? as usize;
                let mut diffs = Vec::with_capacity(n);
                for _ in 0..n {
                    diffs.push(PageDiff::decode(r)?);
                }
                CclRecord::Diffs { interval, diffs }
            }
            t => {
                return Err(CodecError::BadTag {
                    context: "CclRecord",
                    tag: t,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagemem::{PageFrame, Twin};

    fn sample_diff(page: PageId) -> PageDiff {
        let base = PageFrame::zeroed(64);
        let twin = Twin::of(&base);
        let mut m = base.clone();
        m.write_u64(16, 7);
        PageDiff::create(page, &twin, &m)
    }

    fn roundtrip(rec: CclRecord) {
        let bytes = rec.encode_to_vec();
        assert_eq!(bytes.len(), rec.encoded_size(), "direct size drifted");
        assert_eq!(CclRecord::decode_from_slice(&bytes).unwrap(), rec);
    }

    #[test]
    fn sync_records_roundtrip() {
        let mut vc = VClock::new(4);
        vc.set(1, 5);
        roundtrip(CclRecord::Sync {
            tag: SyncTag::Acquire(3),
            notices: vec![WriteNotice {
                page: 2,
                interval: IntervalId { node: 1, seq: 4 },
            }],
            vc: vc.clone(),
        });
        roundtrip(CclRecord::Sync {
            tag: SyncTag::Barrier(9),
            notices: vec![],
            vc,
        });
    }

    #[test]
    fn updates_record_roundtrip() {
        roundtrip(CclRecord::Updates {
            writer: IntervalId { node: 2, seq: 7 },
            pages: vec![1, 5, 9],
        });
    }

    #[test]
    fn diffs_record_roundtrip() {
        roundtrip(CclRecord::Diffs {
            interval: IntervalId { node: 0, seq: 1 },
            diffs: vec![sample_diff(4), sample_diff(6)],
        });
    }

    #[test]
    fn update_records_are_small() {
        // The key CCL economy: an update *record* is a fixed few bytes
        // regardless of the diff payload it stands for.
        let rec = CclRecord::Updates {
            writer: IntervalId { node: 1, seq: 1 },
            pages: vec![3],
        };
        assert!(rec.encoded_size() < 24);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            CclRecord::decode_from_slice(&[9]),
            Err(CodecError::BadTag { .. })
        ));
    }
}
