//! Property tests for the coherence-centric log record format and the
//! framed stable-storage codec.

use ftlog::{frame_record, salvage, CclRecord, SyncTag};
use hlrc::WriteNotice;
use minicheck::{check, Rng};
use pagemem::{Decode, DiffRun, Encode, IntervalId, PageDiff, VClock};

const CASES: u64 = 192;

fn arb_interval(rng: &mut Rng) -> IntervalId {
    IntervalId {
        node: rng.u32_in(0, 8),
        seq: rng.u32_in(0, 10_000),
    }
}

fn arb_vclock(rng: &mut Rng) -> VClock {
    let n = rng.usize_in(1, 9);
    let mut c = VClock::new(n);
    for i in 0..n {
        c.set(i as u32, rng.u32_in(0, 10_000));
    }
    c
}

fn arb_diff(rng: &mut Rng) -> PageDiff {
    let page = rng.u32_in(0, 1024);
    // The decoder enforces the structure `PageDiff::create` guarantees
    // (word-aligned, in order, no overlap), so walk offsets forward.
    let mut runs = Vec::new();
    let mut word = 0u32;
    for _ in 0..rng.usize_in(0, 6) {
        word += rng.u32_in(0, 16);
        let words = rng.u32_in(1, 5);
        runs.push(DiffRun {
            offset: word * 4,
            data: vec![0xAB; words as usize * 4],
        });
        word += words;
    }
    PageDiff { page, runs }
}

fn arb_record(rng: &mut Rng) -> CclRecord {
    match rng.u32_in(0, 3) {
        0 => {
            let tag = if rng.bool() {
                SyncTag::Acquire(rng.u32_in(0, 64))
            } else {
                SyncTag::Barrier(rng.u32_in(0, 1000))
            };
            let notices = (0..rng.usize_in(0, 16))
                .map(|_| WriteNotice {
                    page: rng.u32_in(0, 1024),
                    interval: arb_interval(rng),
                })
                .collect();
            CclRecord::Sync {
                tag,
                notices,
                vc: arb_vclock(rng),
            }
        }
        1 => CclRecord::Updates {
            writer: arb_interval(rng),
            pages: (0..rng.usize_in(0, 16))
                .map(|_| rng.u32_in(0, 1024))
                .collect(),
        },
        _ => CclRecord::Diffs {
            interval: arb_interval(rng),
            diffs: (0..rng.usize_in(0, 4)).map(|_| arb_diff(rng)).collect(),
        },
    }
}

#[test]
fn records_roundtrip() {
    check("records_roundtrip", CASES, |rng| {
        let rec = arb_record(rng);
        let bytes = rec.encode_to_vec();
        assert_eq!(CclRecord::decode_from_slice(&bytes).unwrap(), rec);
    });
}

/// The economy claim underlying Table 2: an Updates record costs a
/// handful of bytes per page regardless of the data volume the
/// update carried.
#[test]
fn update_records_stay_small() {
    check("update_records_stay_small", CASES, |rng| {
        let writer = arb_interval(rng);
        let pages: Vec<u32> = (0..rng.usize_in(0, 64))
            .map(|_| rng.u32_in(0, 1024))
            .collect();
        let rec = CclRecord::Updates {
            writer,
            pages: pages.clone(),
        };
        assert!(rec.encoded_size() <= 16 + 4 * pages.len());
    });
}

/// The crash-consistency contract of the frame codec: damage one
/// record of a framed stream — torn short or a single flipped bit,
/// anywhere — and salvage either returns the whole stream (no damage)
/// or cuts cleanly at the damaged record. It never yields an altered
/// payload and never resumes past a gap.
#[test]
fn salvage_is_full_decode_or_clean_prefix_cut() {
    check("salvage_is_full_decode_or_clean_prefix_cut", CASES, |rng| {
        let epoch = rng.u32_in(0, 50);
        let n = rng.usize_in(0, 12);
        let payloads: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = rng.usize_in(0, 40);
                rng.bytes(len)
            })
            .collect();
        let mut records: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| frame_record(epoch, i as u32, p))
            .collect();
        let damaged = if n > 0 && rng.bool() {
            let victim = rng.usize_in(0, n);
            let len = records[victim].len();
            if rng.bool() {
                // Torn write: the record ends short.
                let cut = rng.usize_in(0, len);
                records[victim].truncate(cut);
            } else {
                // Latent bit rot: one flipped bit, anywhere — header
                // fields included.
                let bit = rng.usize_in(0, len * 8);
                records[victim][bit / 8] ^= 1 << (bit % 8);
            }
            Some(victim)
        } else {
            None
        };
        let s = salvage(&records);
        match damaged {
            None => {
                assert!(s.is_clean());
                assert_eq!(s.payloads, payloads);
            }
            Some(victim) => {
                assert!(!s.is_clean());
                assert_eq!(s.payloads.len(), victim);
                assert_eq!(s.payloads, payloads[..victim].to_vec());
                assert_eq!(s.discarded as usize, records.len() - victim);
                assert_eq!(s.torn + s.crc_mismatches, 1);
            }
        }
    });
}

#[test]
fn truncated_records_never_panic() {
    check("truncated_records_never_panic", CASES, |rng| {
        let rec = arb_record(rng);
        let cut = rng.usize_in(1, 32);
        let bytes = rec.encode_to_vec();
        let end = bytes.len().saturating_sub(cut).max(1).min(bytes.len());
        let _ = CclRecord::decode_from_slice(&bytes[..end]);
    });
}
