//! Property tests for the coherence-centric log record format.

use ftlog::{CclRecord, SyncTag};
use hlrc::WriteNotice;
use pagemem::{Decode, DiffRun, Encode, IntervalId, PageDiff, VClock};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = IntervalId> {
    (0u32..8, 0u32..10_000).prop_map(|(node, seq)| IntervalId { node, seq })
}

fn arb_vclock() -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0u32..10_000, 1..9).prop_map(|v| {
        let mut c = VClock::new(v.len());
        for (i, x) in v.into_iter().enumerate() {
            c.set(i as u32, x);
        }
        c
    })
}

fn arb_diff() -> impl Strategy<Value = PageDiff> {
    (
        0u32..1024,
        proptest::collection::vec(((0u32..64), 1usize..5), 0..6),
    )
        .prop_map(|(page, raw)| PageDiff {
            page,
            runs: raw
                .into_iter()
                .map(|(w, words)| DiffRun {
                    offset: w * 4,
                    data: vec![0xAB; words * 4],
                })
                .collect(),
        })
}

fn arb_record() -> impl Strategy<Value = CclRecord> {
    prop_oneof![
        (
            prop_oneof![
                (0u32..64).prop_map(SyncTag::Acquire),
                (0u32..1000).prop_map(SyncTag::Barrier)
            ],
            proptest::collection::vec(
                (0u32..1024, arb_interval())
                    .prop_map(|(page, interval)| WriteNotice { page, interval }),
                0..16
            ),
            arb_vclock()
        )
            .prop_map(|(tag, notices, vc)| CclRecord::Sync { tag, notices, vc }),
        (arb_interval(), proptest::collection::vec(0u32..1024, 0..16))
            .prop_map(|(writer, pages)| CclRecord::Updates { writer, pages }),
        (arb_interval(), proptest::collection::vec(arb_diff(), 0..4))
            .prop_map(|(interval, diffs)| CclRecord::Diffs { interval, diffs }),
    ]
}

proptest! {
    #[test]
    fn records_roundtrip(rec in arb_record()) {
        let bytes = rec.encode_to_vec();
        prop_assert_eq!(CclRecord::decode_from_slice(&bytes).unwrap(), rec);
    }

    /// The economy claim underlying Table 2: an Updates record costs a
    /// handful of bytes per page regardless of the data volume the
    /// update carried.
    #[test]
    fn update_records_stay_small(writer in arb_interval(),
                                 pages in proptest::collection::vec(0u32..1024, 0..64)) {
        let rec = CclRecord::Updates { writer, pages: pages.clone() };
        prop_assert!(rec.encoded_size() <= 16 + 4 * pages.len());
    }

    #[test]
    fn truncated_records_never_panic(rec in arb_record(), cut in 1usize..32) {
        let bytes = rec.encode_to_vec();
        let end = bytes.len().saturating_sub(cut).max(1).min(bytes.len());
        let _ = CclRecord::decode_from_slice(&bytes[..end]);
    }
}
