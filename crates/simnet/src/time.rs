//! Virtual time for the simulated cluster.
//!
//! Every DSM node carries its own [`SimTime`] clock. The clock only
//! advances through explicit cost charges (compute, network transfers,
//! disk accesses), which makes experiment timings deterministic and
//! machine-independent — the property the paper's wall-clock measurements
//! lack and that we need to compare protocols reproducibly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, in nanoseconds since cluster start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The cluster epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The end of virtual time (an unreachable instant; arithmetic
    /// saturates here rather than wrapping).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Span from `earlier` to `self`; zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    /// A span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    #[inline]
    /// A span of `us` microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    #[inline]
    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    #[inline]
    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    #[inline]
    /// Nanoseconds in this span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The larger of two spans (used for overlapping disk I/O with
    /// communication: the overlapped cost is `max`, not the sum).
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    #[inline]
    /// Pointwise saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by an integer count (e.g. per-element compute costs).
    #[inline]
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + SimDuration::from_millis(1);
        assert_eq!((t2 - t).as_nanos(), 1_000_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn max_is_overlap_cost() {
        let disk = SimDuration::from_millis(8);
        let net = SimDuration::from_micros(300);
        assert_eq!(disk.max(net), disk);
        assert_eq!(net.max(disk), disk);
    }

    #[test]
    fn saturating_behaviour() {
        let a = SimTime(5);
        let b = SimTime(10);
        assert_eq!((a - b).as_nanos(), 0);
        assert_eq!(a.saturating_since(b).as_nanos(), 0);
        assert_eq!(b.saturating_since(a).as_nanos(), 5);
    }

    #[test]
    fn times_scales() {
        assert_eq!(SimDuration::from_nanos(3).times(7).as_nanos(), 21);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
