//! Seeded, deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes how the interconnect misbehaves: per-link
//! message-drop probability, duplicate delivery, per-message delay
//! jitter, and link partitions over virtual-time windows. A
//! [`DiskFaultPlan`] describes stable-storage write failures, transient
//! (a retry succeeds) and permanent (the device stops accepting writes
//! for good).
//!
//! All randomness comes from an in-crate SplitMix64 generator seeded
//! from the plan, with one independent stream per directed link (and
//! one per disk), so a given `(plan, program)` pair injects the same
//! faults in every run — a failing chaos schedule is reproducible from
//! its printed seed alone.
//!
//! # How drops become delays
//!
//! The transport models a *reliable delivery layer over a lossy wire*
//! (the paper's cluster runs UDP with timeout/retransmit on top). The
//! sender judges each transmission: every dropped attempt costs one
//! retransmission timeout (exponential backoff, capped), and the copy
//! that finally survives is the one delivered — so a "drop" manifests
//! as added arrival latency plus [`TraceKind::Retransmit`] /
//! [`TraceKind::Timeout`](crate::TraceKind) telemetry, never as a lost
//! protocol message. Duplicates are physically delivered twice with the
//! same sequence number and suppressed at the receiver. With
//! [`FaultPlan::none`] every judgment short-circuits: no PRNG draws, no
//! extra delay, no telemetry — the reliable layer costs nothing when no
//! faults are injected.

use crate::router::NodeId;
use crate::time::{SimDuration, SimTime};

/// Retransmission attempts are capped: after this many consecutive
/// simulated losses the reliable layer's persistence is assumed to win
/// (delivery is guaranteed, only delay varies).
pub const MAX_RETRANSMITS: u32 = 16;

/// Exponential backoff doubles the timeout per attempt up to this
/// exponent (2^6 = 64x the base RTO).
const MAX_BACKOFF_EXP: u32 = 6;

/// SplitMix64 — the same tiny generator `minicheck` uses, reimplemented
/// here so the substrate stays dependency-free.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0), Lemire-style without bias for
    /// the small ranges used here.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A symmetric link partition: no traffic passes between `a` and `b`
/// while the sender's clock is inside `[from, until)`; sends during the
/// window are delivered after it heals (plus retransmission backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One endpoint of the partitioned pair.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Virtual time the partition starts (inclusive).
    pub from: SimTime,
    /// Virtual time the partition heals (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Does this partition block a `src -> dst` send at `at`?
    fn blocks(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        let pair = (self.a == src && self.b == dst) || (self.a == dst && self.b == src);
        pair && at >= self.from && at < self.until
    }
}

/// A deterministic network-fault schedule, consulted per envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-link PRNG streams.
    pub seed: u64,
    /// Probability (per mille) that a transmission attempt is dropped.
    pub drop_per_mille: u16,
    /// Probability (per mille) that a delivery is duplicated.
    pub dup_per_mille: u16,
    /// Maximum uniform extra delay added to each delivery (0 = none).
    pub jitter_max: SimDuration,
    /// Base retransmission timeout charged per dropped attempt
    /// (doubling per attempt, capped at 2^6 x).
    pub rto: SimDuration,
    /// Link partitions over virtual-time windows.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A fault-free plan: every judgment short-circuits at zero cost.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            jitter_max: SimDuration::ZERO,
            rto: SimDuration::from_micros(500),
            partitions: Vec::new(),
        }
    }

    /// A lossy-network plan with the given seed: drops, duplicates and
    /// jitter on every link (no partitions).
    pub fn lossy(seed: u64, drop_per_mille: u16, dup_per_mille: u16) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille,
            dup_per_mille,
            jitter_max: SimDuration::from_micros(200),
            rto: SimDuration::from_micros(500),
            partitions: Vec::new(),
        }
    }

    /// True if this plan can never perturb a message.
    pub fn is_none(&self) -> bool {
        self.drop_per_mille == 0
            && self.dup_per_mille == 0
            && self.jitter_max == SimDuration::ZERO
            && self.partitions.is_empty()
    }

    /// Add a partition window to the plan.
    pub fn with_partition(mut self, p: Partition) -> FaultPlan {
        self.partitions.push(p);
        self
    }

    /// The heal time of the latest partition blocking `src -> dst` at
    /// `at`, if any.
    fn partitioned_until(&self, src: NodeId, dst: NodeId, at: SimTime) -> Option<SimTime> {
        self.partitions
            .iter()
            .filter(|p| p.blocks(src, dst, at))
            .map(|p| p.until)
            .max()
    }
}

/// Default fault-free plan.
impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// The sender-side verdict on one transmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendFate {
    /// Extra delivery delay (partition heal + retransmission backoff +
    /// jitter) on top of the nominal transfer time.
    pub delay: SimDuration,
    /// Number of dropped attempts the reliable layer retransmitted
    /// (each one is a timeout expiry at the sender).
    pub attempts: u32,
    /// Deliver a second physical copy (same sequence number).
    pub duplicate: bool,
}

/// Exact record of the per-link sequence numbers delivered so far.
///
/// Virtual-time-ordered delivery can legally reorder a link's messages
/// (a retransmitted envelope's arrival stamp may fall after a later
/// send's), so duplicate suppression must not assume monotone sequence
/// numbers: a highest-seen watermark would swallow the late original.
/// The dense prefix compacts into `low`; only the out-of-order frontier
/// lives in the set.
#[derive(Debug, Default)]
struct SeenSeqs {
    /// Every sequence number in `1..=low` has been delivered.
    low: u64,
    /// Delivered numbers above `low` (sparse, compacted eagerly).
    above: std::collections::BTreeSet<u64>,
}

impl SeenSeqs {
    /// Record `seq`; true if it was already delivered.
    fn check(&mut self, seq: u64) -> bool {
        if seq <= self.low || self.above.contains(&seq) {
            return true;
        }
        self.above.insert(seq);
        while self.above.remove(&(self.low + 1)) {
            self.low += 1;
        }
        false
    }
}

/// Per-node fault-injection state: the plan plus one PRNG stream and
/// one sequence counter per directed link.
///
/// This state rides the sharded fabric's send fast path: allocation of
/// a link's next sequence number and the fate roll are node-private
/// (each node owns its outgoing `FaultState`), so injecting faults
/// adds no shared-lock traffic — a send still touches only the
/// destination's inbox shard. Suppression on the receive side sees
/// the rank-ordered delivery stream, which is why [`SeenSeqs`] is an
/// exact set rather than a watermark.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    active: bool,
    /// One PRNG stream per destination (this node is the sender).
    link_rngs: Vec<SplitMix64>,
    /// Next sequence number per destination (starts at 1; 0 = unset).
    next_seq: Vec<u64>,
    /// Sequence numbers seen per source (duplicate suppression).
    seen: Vec<SeenSeqs>,
}

impl FaultState {
    pub(crate) fn new(me: NodeId, n_nodes: usize, plan: FaultPlan) -> FaultState {
        let active = !plan.is_none();
        let link_rngs = (0..n_nodes)
            .map(|dst| {
                // Distinct stream per directed link: fold (src, dst)
                // into the seed through one SplitMix64 round each.
                let mut s = SplitMix64::new(plan.seed);
                for _ in 0..=me {
                    s.next_u64();
                }
                SplitMix64::new(s.next_u64() ^ (dst as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        FaultState {
            plan,
            active,
            link_rngs,
            next_seq: vec![1; n_nodes],
            seen: (0..n_nodes).map(|_| SeenSeqs::default()).collect(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Allocate the next sequence number for a send to `dst`.
    pub(crate) fn next_seq(&mut self, dst: NodeId) -> u64 {
        let s = self.next_seq[dst];
        self.next_seq[dst] = s + 1;
        s
    }

    /// Record an arrival from `src`; returns true if it is a duplicate
    /// that must be suppressed.
    pub(crate) fn is_duplicate(&mut self, src: NodeId, seq: u64) -> bool {
        if seq == 0 {
            return false;
        }
        self.seen[src].check(seq)
    }

    /// Judge one `me -> dst` transmission put on the wire at `sent_at`.
    pub(crate) fn judge(&mut self, me: NodeId, dst: NodeId, sent_at: SimTime) -> SendFate {
        if !self.active {
            return SendFate::default();
        }
        let mut fate = SendFate::default();
        let rng = &mut self.link_rngs[dst];

        // Partition: the first attempt that can succeed is after heal;
        // every base-RTO expiry spent inside the window is a timeout.
        if let Some(until) = self.plan.partitioned_until(me, dst, sent_at) {
            let blocked = until - sent_at;
            fate.delay += blocked;
            let rto = self.plan.rto.as_nanos().max(1);
            let expiries = blocked.as_nanos().div_ceil(rto);
            fate.attempts += (expiries.min(MAX_RETRANSMITS as u64)) as u32;
        }

        // Random drops: each costs one (exponentially backed off) RTO.
        if self.plan.drop_per_mille > 0 {
            while fate.attempts < MAX_RETRANSMITS
                && rng.below(1000) < self.plan.drop_per_mille as u64
            {
                let exp = fate.attempts.min(MAX_BACKOFF_EXP);
                fate.delay += SimDuration(self.plan.rto.as_nanos() << exp);
                fate.attempts += 1;
            }
        }

        // Delay jitter on the surviving copy.
        if self.plan.jitter_max > SimDuration::ZERO {
            fate.delay += SimDuration(rng.below(self.plan.jitter_max.as_nanos() + 1));
        }

        // Duplicate delivery of the surviving copy.
        if self.plan.dup_per_mille > 0 {
            fate.duplicate = rng.below(1000) < self.plan.dup_per_mille as u64;
        }
        fate
    }
}

/// A deterministic stable-storage fault schedule for one node's disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// Seed for the disk's PRNG stream.
    pub seed: u64,
    /// Probability (per mille) that a write needs one retry (the retry
    /// succeeds but costs a second full access).
    pub transient_per_mille: u16,
    /// If set, the Nth write access (1-based) fails permanently: that
    /// write and all later ones are lost, and the device reports
    /// itself failed. Reads of previously persisted data still work
    /// (the paper's "log disk gone" degradation, not media loss).
    pub fail_after_writes: Option<u64>,
    /// Probability (per mille) that a persisted record suffers latent
    /// bit rot: one seeded bit of the stored copy is flipped. The rot
    /// is injected at persist time (deterministic regardless of read
    /// order) but — like real media decay — only *detected* when a
    /// recovery scan verifies the record's frame CRC.
    pub corrupt_per_mille: u16,
    /// If set, the device holds at most this many bytes across all
    /// streams: a flush that would exceed the bound is refused in full
    /// and the device reports itself full until a truncation frees
    /// space (the deterministic `LogDeviceFull` condition).
    pub capacity_bytes: Option<u64>,
}

impl DiskFaultPlan {
    /// A fault-free disk schedule.
    pub fn none() -> DiskFaultPlan {
        DiskFaultPlan {
            seed: 0,
            transient_per_mille: 0,
            fail_after_writes: None,
            corrupt_per_mille: 0,
            capacity_bytes: None,
        }
    }

    /// Transient-only schedule: each write retries with the given
    /// probability, no permanent failure.
    pub fn transient(seed: u64, per_mille: u16) -> DiskFaultPlan {
        DiskFaultPlan {
            transient_per_mille: per_mille,
            ..DiskFaultPlan::none_with_seed(seed)
        }
    }

    /// Permanent failure at the `n`th write (1-based).
    pub fn permanent_at(n: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            fail_after_writes: Some(n),
            ..DiskFaultPlan::none()
        }
    }

    /// Latent bit rot: each persisted record is silently damaged with
    /// the given probability (detected later by frame CRC scans).
    pub fn bit_rot(seed: u64, per_mille: u16) -> DiskFaultPlan {
        DiskFaultPlan {
            corrupt_per_mille: per_mille,
            ..DiskFaultPlan::none_with_seed(seed)
        }
    }

    /// Add latent bit rot to this plan.
    pub fn with_bit_rot(mut self, per_mille: u16) -> DiskFaultPlan {
        self.corrupt_per_mille = per_mille;
        self
    }

    /// Bound the device's total capacity in bytes.
    pub fn with_capacity(mut self, bytes: u64) -> DiskFaultPlan {
        self.capacity_bytes = Some(bytes);
        self
    }

    fn none_with_seed(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            ..DiskFaultPlan::none()
        }
    }

    /// True if this plan can never perturb a write.
    pub fn is_none(&self) -> bool {
        self.transient_per_mille == 0
            && self.fail_after_writes.is_none()
            && self.corrupt_per_mille == 0
            && self.capacity_bytes.is_none()
    }
}

impl Default for DiskFaultPlan {
    fn default() -> DiskFaultPlan {
        DiskFaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_judges_clean() {
        let mut st = FaultState::new(0, 4, FaultPlan::none());
        for dst in 1..4 {
            let fate = st.judge(0, dst, SimTime(12345));
            assert_eq!(fate, SendFate::default());
        }
    }

    #[test]
    fn judgments_are_deterministic_per_seed() {
        let plan = FaultPlan::lossy(42, 100, 50);
        let mut a = FaultState::new(0, 4, plan.clone());
        let mut b = FaultState::new(0, 4, plan);
        for i in 0..200u64 {
            let t = SimTime(i * 1000);
            assert_eq!(a.judge(0, 1, t), b.judge(0, 1, t));
        }
    }

    #[test]
    fn different_links_draw_different_streams() {
        let plan = FaultPlan::lossy(7, 500, 0);
        let mut st = FaultState::new(0, 3, plan);
        let a: Vec<_> = (0..50).map(|_| st.judge(0, 1, SimTime::ZERO)).collect();
        let b: Vec<_> = (0..50).map(|_| st.judge(0, 2, SimTime::ZERO)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn drops_add_backoff_delay() {
        // 100% drop rate: every judgment maxes out retransmissions.
        let plan = FaultPlan {
            drop_per_mille: 1000,
            ..FaultPlan::lossy(1, 1000, 0)
        };
        let rto = plan.rto;
        let mut st = FaultState::new(0, 2, plan);
        let fate = st.judge(0, 1, SimTime::ZERO);
        assert_eq!(fate.attempts, MAX_RETRANSMITS);
        assert!(fate.delay >= rto);
    }

    #[test]
    fn partition_delays_until_heal() {
        let plan = FaultPlan::none().with_partition(Partition {
            a: 0,
            b: 1,
            from: SimTime(1000),
            until: SimTime(5000),
        });
        let mut st = FaultState::new(0, 2, plan);
        let fate = st.judge(0, 1, SimTime(2000));
        assert!(fate.delay >= SimDuration(3000));
        assert!(fate.attempts > 0);
        // Outside the window: clean.
        let fate = st.judge(0, 1, SimTime(6000));
        assert_eq!(fate, SendFate::default());
    }

    #[test]
    fn duplicate_suppression_tracks_per_source() {
        let mut st = FaultState::new(0, 3, FaultPlan::none());
        assert!(!st.is_duplicate(1, 1));
        assert!(st.is_duplicate(1, 1));
        assert!(!st.is_duplicate(2, 1));
        assert!(!st.is_duplicate(1, 2));
        assert!(st.is_duplicate(1, 2));
        // Unsequenced legacy envelopes are never suppressed.
        assert!(!st.is_duplicate(1, 0));
    }

    /// Virtual-time-ordered delivery can reorder a link (a delayed
    /// retransmission lands after a later send): the late original must
    /// NOT be mistaken for a duplicate, while a true duplicate of it
    /// still is.
    #[test]
    fn out_of_order_originals_are_not_suppressed() {
        let mut st = FaultState::new(0, 2, FaultPlan::none());
        assert!(!st.is_duplicate(1, 2));
        assert!(!st.is_duplicate(1, 3));
        assert!(!st.is_duplicate(1, 1)); // late original, not a dup
        assert!(st.is_duplicate(1, 1)); // its second copy is
        assert!(st.is_duplicate(1, 3));
        assert!(!st.is_duplicate(1, 4));
    }

    #[test]
    fn seq_numbers_are_per_destination() {
        let mut st = FaultState::new(0, 2, FaultPlan::none());
        assert_eq!(st.next_seq(1), 1);
        assert_eq!(st.next_seq(1), 2);
        assert_eq!(st.next_seq(0), 1);
    }
}
