//! Per-node simulated stable storage.
//!
//! A [`SimDisk`] stores byte-exact record streams (the fault-tolerance
//! layer's logs and checkpoints) and charges virtual time for every
//! access through its [`DiskModel`]. Contents survive a simulated crash
//! of the owning node — that is the whole point of stable storage — so
//! the recovery protocols read back exactly the bytes that were flushed.

use std::collections::BTreeMap;

use crate::fault::{DiskFaultPlan, SplitMix64};
use crate::models::DiskModel;
use crate::time::SimDuration;

/// Aggregate disk counters (reported in Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Number of write accesses (log flushes, checkpoint writes).
    pub writes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read accesses (recovery log reads).
    pub reads: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Writes that needed one retry (transient fault, data persisted).
    pub write_retries: u64,
    /// Writes lost because the device had failed permanently.
    pub failed_writes: u64,
}

/// A simulated local disk holding named append-only record streams.
#[derive(Debug)]
pub struct SimDisk {
    model: DiskModel,
    streams: BTreeMap<String, Vec<Vec<u8>>>,
    counters: DiskCounters,
    /// Injected write-fault schedule, if any.
    faults: Option<DiskFaultState>,
    /// Permanently failed for writes. Previously persisted data stays
    /// readable (a dead log device, not media loss).
    failed: bool,
}

#[derive(Debug)]
struct DiskFaultState {
    plan: DiskFaultPlan,
    rng: SplitMix64,
    writes_judged: u64,
}

impl SimDisk {
    /// Create a disk with the given cost model.
    pub fn new(model: DiskModel) -> SimDisk {
        SimDisk {
            model,
            streams: BTreeMap::new(),
            counters: DiskCounters::default(),
            faults: None,
            failed: false,
        }
    }

    /// Arm a write-fault schedule (a no-op plan is not stored, keeping
    /// the fault-free write path untouched).
    pub fn set_faults(&mut self, plan: DiskFaultPlan) {
        if !plan.is_none() {
            self.faults = Some(DiskFaultState {
                rng: SplitMix64::new(plan.seed),
                plan,
                writes_judged: 0,
            });
        }
    }

    /// True once the device has failed permanently for writes.
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// The disk's cost model.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Snapshot of the access counters.
    pub fn counters(&self) -> DiskCounters {
        self.counters
    }

    /// Flush a batch of records to `stream` in a single disk access.
    ///
    /// Returns the virtual time the access takes. The caller decides how
    /// that time lands on its clock: ML adds it to the critical path,
    /// CCL overlaps it with coherence communication.
    /// With an armed fault schedule a write may cost a retry
    /// (transient) or be lost entirely once the device has failed
    /// permanently; callers poll [`SimDisk::has_failed`] after
    /// flushing to detect degradation.
    pub fn flush_records<I>(&mut self, stream: &str, records: I) -> SimDuration
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        if self.faults.is_some() || self.failed {
            return self.flush_records_faulty(stream, records.into_iter().collect());
        }
        let dst = self.streams.entry(stream.to_string()).or_default();
        let mut bytes = 0usize;
        for r in records {
            bytes += r.len();
            dst.push(r);
        }
        self.counters.writes += 1;
        self.counters.bytes_written += bytes as u64;
        self.model.write_time(bytes)
    }

    /// Fault-judged write path: consult the schedule, then persist (or
    /// lose) the batch.
    fn flush_records_faulty(&mut self, stream: &str, records: Vec<Vec<u8>>) -> SimDuration {
        let bytes: usize = records.iter().map(|r| r.len()).sum();
        let mut retried = false;
        if !self.failed {
            if let Some(st) = self.faults.as_mut() {
                st.writes_judged += 1;
                if st.plan.fail_after_writes == Some(st.writes_judged) {
                    self.failed = true;
                }
                if !self.failed
                    && st.plan.transient_per_mille > 0
                    && st.rng.below(1000) < st.plan.transient_per_mille as u64
                {
                    retried = true;
                }
            }
        }
        if self.failed {
            // The write is lost. The caller still pays one (futile)
            // access worth of latency discovering the failure.
            self.counters.failed_writes += 1;
            return self.model.write_time(0);
        }
        let dst = self.streams.entry(stream.to_string()).or_default();
        for r in records {
            dst.push(r);
        }
        self.counters.writes += 1;
        self.counters.bytes_written += bytes as u64;
        let mut cost = self.model.write_time(bytes);
        if retried {
            self.counters.write_retries += 1;
            cost += self.model.write_time(bytes);
        }
        cost
    }

    /// Number of records currently in `stream`.
    pub fn record_count(&self, stream: &str) -> usize {
        self.streams.get(stream).map_or(0, |v| v.len())
    }

    /// Total bytes currently in `stream`.
    pub fn stream_bytes(&self, stream: &str) -> usize {
        self.streams
            .get(stream)
            .map_or(0, |v| v.iter().map(|r| r.len()).sum())
    }

    /// Read one record by index, charging one disk access.
    ///
    /// Models the per-miss log reads of ML-recovery.
    pub fn read_record(&mut self, stream: &str, index: usize) -> Option<(Vec<u8>, SimDuration)> {
        let rec = self.streams.get(stream)?.get(index)?.clone();
        self.counters.reads += 1;
        self.counters.bytes_read += rec.len() as u64;
        let cost = self.model.read_time(rec.len());
        Some((rec, cost))
    }

    /// Read a contiguous range of records in a single sequential access.
    ///
    /// Models CCL-recovery's one-read-per-interval pattern.
    pub fn read_range(
        &mut self,
        stream: &str,
        range: std::ops::Range<usize>,
    ) -> (Vec<Vec<u8>>, SimDuration) {
        let recs: Vec<Vec<u8>> = self
            .streams
            .get(stream)
            .map(|v| {
                let end = range.end.min(v.len());
                let start = range.start.min(end);
                v[start..end].to_vec()
            })
            .unwrap_or_default();
        let bytes: usize = recs.iter().map(|r| r.len()).sum();
        self.counters.reads += 1;
        self.counters.bytes_read += bytes as u64;
        (recs, self.model.read_time(bytes))
    }

    /// Inspect a stream's records without charging any access time.
    ///
    /// Recovery code uses this to rebuild in-memory indexes over its
    /// stable log; the *time* of the corresponding reads is charged
    /// explicitly (per replayed interval) with [`SimDisk::read_cost`],
    /// matching the paper's per-interval log-read pattern.
    pub fn peek_stream(&self, stream: &str) -> &[Vec<u8>] {
        self.streams.get(stream).map_or(&[], |v| v.as_slice())
    }

    /// Cost of one sequential read of `bytes` (explicit charging
    /// companion to [`SimDisk::peek_stream`]); counts as one access.
    pub fn read_cost(&mut self, bytes: usize) -> SimDuration {
        self.counters.reads += 1;
        self.counters.bytes_read += bytes as u64;
        self.model.read_time(bytes)
    }

    /// Drop all records in `stream` (log truncation after a checkpoint).
    /// Free, like unlinking a file. A permanently failed device refuses:
    /// the persisted prefix is all the recovery data the node has left,
    /// and no new checkpoint can supersede it.
    pub fn truncate(&mut self, stream: &str) {
        if self.failed {
            return;
        }
        if let Some(v) = self.streams.get_mut(stream) {
            v.clear();
        }
    }

    /// Names of all non-empty streams (diagnostics).
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel::ULTRA5_LOCAL)
    }

    #[test]
    fn flush_then_read_roundtrips() {
        let mut d = disk();
        let cost = d.flush_records("log", vec![vec![1, 2, 3], vec![4, 5]]);
        assert!(cost.as_nanos() > 0);
        assert_eq!(d.record_count("log"), 2);
        assert_eq!(d.stream_bytes("log"), 5);
        let (rec, _) = d.read_record("log", 1).unwrap();
        assert_eq!(rec, vec![4, 5]);
    }

    #[test]
    fn batch_flush_is_one_access() {
        let mut d = disk();
        d.flush_records("log", (0..10).map(|i| vec![i as u8; 100]));
        assert_eq!(d.counters().writes, 1);
        assert_eq!(d.counters().bytes_written, 1000);
    }

    #[test]
    fn batch_flush_cheaper_than_individual() {
        let mut a = disk();
        let batch = a.flush_records("log", (0..10).map(|i| vec![i as u8; 100]));
        let mut b = disk();
        let individual: SimDuration = (0..10)
            .map(|i| b.flush_records("log", vec![vec![i as u8; 100]]))
            .sum();
        assert!(batch < individual);
    }

    #[test]
    fn read_range_is_sequential() {
        let mut d = disk();
        d.flush_records("log", (0..5).map(|i| vec![i as u8; 10]));
        let (recs, cost) = d.read_range("log", 1..4);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], vec![1u8; 10]);
        assert_eq!(d.counters().reads, 1);
        assert_eq!(cost, DiskModel::ULTRA5_LOCAL.read_time(30));
    }

    #[test]
    fn read_range_clamps_out_of_bounds() {
        let mut d = disk();
        d.flush_records("log", vec![vec![9u8; 4]]);
        let (recs, _) = d.read_range("log", 0..100);
        assert_eq!(recs.len(), 1);
        let (recs, _) = d.read_range("missing", 0..3);
        assert!(recs.is_empty());
    }

    #[test]
    fn truncate_clears_records() {
        let mut d = disk();
        d.flush_records("log", vec![vec![1u8; 8]]);
        d.truncate("log");
        assert_eq!(d.record_count("log"), 0);
        assert!(d.read_record("log", 0).is_none());
    }

    #[test]
    fn missing_record_returns_none() {
        let mut d = disk();
        assert!(d.read_record("nope", 0).is_none());
    }

    #[test]
    fn transient_fault_retries_cost_more_but_persist() {
        let mut clean = disk();
        let base = clean.flush_records("log", vec![vec![1u8; 100]]);
        let mut d = disk();
        d.set_faults(DiskFaultPlan::transient(1, 1000)); // always retry
        let cost = d.flush_records("log", vec![vec![1u8; 100]]);
        assert!(cost > base);
        assert_eq!(d.record_count("log"), 1);
        assert_eq!(d.counters().write_retries, 1);
        assert!(!d.has_failed());
    }

    #[test]
    fn permanent_fault_loses_writes_keeps_reads() {
        let mut d = disk();
        d.set_faults(DiskFaultPlan::permanent_at(2));
        d.flush_records("log", vec![vec![1u8; 8]]); // write 1: persisted
        d.flush_records("log", vec![vec![2u8; 8]]); // write 2: device dies
        d.flush_records("log", vec![vec![3u8; 8]]); // lost
        assert!(d.has_failed());
        assert_eq!(d.record_count("log"), 1);
        assert_eq!(d.counters().failed_writes, 2);
        // Persisted prefix still readable (dead device, not media loss).
        let (rec, _) = d.read_record("log", 0).unwrap();
        assert_eq!(rec, vec![1u8; 8]);
    }

    #[test]
    fn failed_device_refuses_truncation() {
        let mut d = disk();
        d.set_faults(DiskFaultPlan::permanent_at(2));
        d.flush_records("log", vec![vec![1u8; 8]]);
        d.flush_records("log", vec![vec![2u8; 8]]); // device dies
        d.truncate("log");
        assert_eq!(d.record_count("log"), 1, "prefix must survive");
    }

    #[test]
    fn noop_fault_plan_changes_nothing() {
        let mut a = disk();
        let mut b = disk();
        b.set_faults(DiskFaultPlan::none());
        let ca = a.flush_records("log", vec![vec![7u8; 64]]);
        let cb = b.flush_records("log", vec![vec![7u8; 64]]);
        assert_eq!(ca, cb);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn stream_names_filters_empty() {
        let mut d = disk();
        d.flush_records("a", vec![vec![1]]);
        d.flush_records("b", Vec::<Vec<u8>>::new());
        assert_eq!(d.stream_names(), vec!["a"]);
    }
}
