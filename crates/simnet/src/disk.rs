//! Per-node simulated stable storage.
//!
//! A [`SimDisk`] stores byte-exact record streams (the fault-tolerance
//! layer's logs and checkpoints) and charges virtual time for every
//! access through its [`DiskModel`]. Contents survive a simulated crash
//! of the owning node — that is the whole point of stable storage — so
//! the recovery protocols read back exactly the bytes that were flushed.

use std::collections::BTreeMap;

use crate::fault::{DiskFaultPlan, SplitMix64};
use crate::models::DiskModel;
use crate::time::SimDuration;

/// Aggregate disk counters (reported in Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Number of write accesses (log flushes, checkpoint writes).
    pub writes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read accesses (recovery log reads).
    pub reads: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Writes that needed one retry (transient fault, data persisted).
    pub write_retries: u64,
    /// Writes lost because the device had failed permanently.
    pub failed_writes: u64,
    /// Flushes refused whole because the device was at capacity.
    pub full_writes: u64,
    /// Records damaged or lost by a mid-flush crash (torn tail).
    pub torn_records: u64,
    /// Records silently damaged at rest by injected latent bit rot.
    pub corrupted_records: u64,
}

/// A simulated local disk holding named append-only record streams.
#[derive(Debug)]
pub struct SimDisk {
    model: DiskModel,
    streams: BTreeMap<String, Vec<Vec<u8>>>,
    counters: DiskCounters,
    /// Injected write-fault schedule, if any.
    faults: Option<DiskFaultState>,
    /// Permanently failed for writes. Previously persisted data stays
    /// readable (a dead log device, not media loss).
    failed: bool,
    /// At capacity: flushes are refused until a truncation frees space.
    full: bool,
    /// The most recent successful flush: `(stream, first record index)`.
    /// A mid-flush crash tears into exactly this batch.
    last_flush: Option<(String, usize)>,
}

#[derive(Debug)]
struct DiskFaultState {
    plan: DiskFaultPlan,
    rng: SplitMix64,
    writes_judged: u64,
}

impl SimDisk {
    /// Create a disk with the given cost model.
    pub fn new(model: DiskModel) -> SimDisk {
        SimDisk {
            model,
            streams: BTreeMap::new(),
            counters: DiskCounters::default(),
            faults: None,
            failed: false,
            full: false,
            last_flush: None,
        }
    }

    /// Arm a write-fault schedule (a no-op plan is not stored, keeping
    /// the fault-free write path untouched).
    pub fn set_faults(&mut self, plan: DiskFaultPlan) {
        if !plan.is_none() {
            self.faults = Some(DiskFaultState {
                rng: SplitMix64::new(plan.seed),
                plan,
                writes_judged: 0,
            });
        }
    }

    /// True once the device has failed permanently for writes.
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// True while the device is at its capacity bound: the last flush
    /// was refused and nothing will persist until a truncation frees
    /// space (the deterministic `LogDeviceFull` condition).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Total bytes persisted across all streams.
    pub fn used_bytes(&self) -> u64 {
        self.streams
            .values()
            .flatten()
            .map(|r| r.len() as u64)
            .sum()
    }

    /// Recompute the capacity condition after records were freed.
    fn update_full(&mut self) {
        if let Some(cap) = self.faults.as_ref().and_then(|st| st.plan.capacity_bytes) {
            self.full = self.used_bytes() >= cap;
        }
    }

    /// The disk's cost model.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Snapshot of the access counters.
    pub fn counters(&self) -> DiskCounters {
        self.counters
    }

    /// Flush a batch of records to `stream` in a single disk access.
    ///
    /// Returns the virtual time the access takes. The caller decides how
    /// that time lands on its clock: ML adds it to the critical path,
    /// CCL overlaps it with coherence communication.
    /// With an armed fault schedule a write may cost a retry
    /// (transient) or be lost entirely once the device has failed
    /// permanently; callers poll [`SimDisk::has_failed`] after
    /// flushing to detect degradation.
    pub fn flush_records<I>(&mut self, stream: &str, records: I) -> SimDuration
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        if self.faults.is_some() || self.failed {
            return self.flush_records_faulty(stream, records.into_iter().collect());
        }
        let dst = self.streams.entry(stream.to_string()).or_default();
        let first = dst.len();
        let mut bytes = 0usize;
        for r in records {
            bytes += r.len();
            dst.push(r);
        }
        self.last_flush = Some((stream.to_string(), first));
        self.counters.writes += 1;
        self.counters.bytes_written += bytes as u64;
        self.model.write_time(bytes)
    }

    /// Fault-judged write path: consult the schedule, then persist (or
    /// lose) the batch.
    fn flush_records_faulty(&mut self, stream: &str, records: Vec<Vec<u8>>) -> SimDuration {
        let bytes: usize = records.iter().map(|r| r.len()).sum();
        // Capacity bound: a flush that would overflow is refused whole
        // (nothing persists) and the device reports itself full until a
        // truncation frees space. The caller pays one futile access
        // discovering ENOSPC.
        if !self.failed {
            let used = self.used_bytes();
            if let Some(cap) = self.faults.as_ref().and_then(|st| st.plan.capacity_bytes) {
                if used + bytes as u64 > cap {
                    self.full = true;
                }
            }
            if self.full {
                self.counters.full_writes += 1;
                return self.model.write_time(0);
            }
        }
        let mut retried = false;
        if !self.failed {
            if let Some(st) = self.faults.as_mut() {
                st.writes_judged += 1;
                if st.plan.fail_after_writes == Some(st.writes_judged) {
                    self.failed = true;
                }
                if !self.failed
                    && st.plan.transient_per_mille > 0
                    && st.rng.below(1000) < st.plan.transient_per_mille as u64
                {
                    retried = true;
                }
            }
        }
        if self.failed {
            // The write is lost. The caller still pays one (futile)
            // access worth of latency discovering the failure.
            self.counters.failed_writes += 1;
            return self.model.write_time(0);
        }
        let dst = self.streams.entry(stream.to_string()).or_default();
        let first = dst.len();
        // Latent bit rot is injected while the record is persisted
        // (deterministic regardless of read order); like real media
        // decay it is only *detected* when a recovery scan verifies
        // the record's frame CRC.
        let faults = self.faults.as_mut();
        let mut corrupted = 0u64;
        if let Some(st) = faults {
            let per_mille = st.plan.corrupt_per_mille;
            for mut r in records {
                if per_mille > 0 && st.rng.below(1000) < per_mille as u64 && !r.is_empty() {
                    let bit = st.rng.below(r.len() as u64 * 8) as usize;
                    r[bit / 8] ^= 1 << (bit % 8);
                    corrupted += 1;
                }
                dst.push(r);
            }
        } else {
            dst.extend(records);
        }
        self.counters.corrupted_records += corrupted;
        self.last_flush = Some((stream.to_string(), first));
        self.counters.writes += 1;
        self.counters.bytes_written += bytes as u64;
        let mut cost = self.model.write_time(bytes);
        if retried {
            self.counters.write_retries += 1;
            cost += self.model.write_time(bytes);
        }
        cost
    }

    /// Tear into the most recent successful flush, as a crash landing
    /// mid-access would: a seeded prefix of the batch stays fully
    /// persisted, the next record is damaged (`garble` flips one seeded
    /// bit; otherwise the record is truncated short), and the rest of
    /// the batch never reaches the platter. Returns false if there is
    /// no flushed batch to tear.
    ///
    /// All randomness comes from `seed`, so a given crash schedule
    /// tears identically in every run.
    pub fn tear_last_flush(&mut self, seed: u64, garble: bool) -> bool {
        let Some((stream, first)) = self.last_flush.clone() else {
            return false;
        };
        let Some(v) = self.streams.get_mut(&stream) else {
            return false;
        };
        if first >= v.len() {
            return false;
        }
        let batch = v.len() - first;
        let mut rng = SplitMix64::new(seed);
        let keep = rng.below(batch as u64) as usize;
        let victim = &mut v[first + keep];
        if garble && !victim.is_empty() {
            let bit = rng.below(victim.len() as u64 * 8) as usize;
            victim[bit / 8] ^= 1 << (bit % 8);
        } else {
            let torn_len = rng.below(victim.len().max(1) as u64) as usize;
            victim.truncate(torn_len);
        }
        v.truncate(first + keep + 1);
        self.counters.torn_records += (batch - keep) as u64;
        self.last_flush = None;
        self.update_full();
        true
    }

    /// Number of records currently in `stream`.
    pub fn record_count(&self, stream: &str) -> usize {
        self.streams.get(stream).map_or(0, |v| v.len())
    }

    /// Total bytes currently in `stream`.
    pub fn stream_bytes(&self, stream: &str) -> usize {
        self.streams
            .get(stream)
            .map_or(0, |v| v.iter().map(|r| r.len()).sum())
    }

    /// Read one record by index, charging one disk access.
    ///
    /// Models the per-miss log reads of ML-recovery.
    pub fn read_record(&mut self, stream: &str, index: usize) -> Option<(Vec<u8>, SimDuration)> {
        let rec = self.streams.get(stream)?.get(index)?.clone();
        self.counters.reads += 1;
        self.counters.bytes_read += rec.len() as u64;
        let cost = self.model.read_time(rec.len());
        Some((rec, cost))
    }

    /// Read a contiguous range of records in a single sequential access.
    ///
    /// Models CCL-recovery's one-read-per-interval pattern.
    pub fn read_range(
        &mut self,
        stream: &str,
        range: std::ops::Range<usize>,
    ) -> (Vec<Vec<u8>>, SimDuration) {
        let recs: Vec<Vec<u8>> = self
            .streams
            .get(stream)
            .map(|v| {
                let end = range.end.min(v.len());
                let start = range.start.min(end);
                v[start..end].to_vec()
            })
            .unwrap_or_default();
        if recs.is_empty() {
            // Nothing to transfer: no access happened, no time passes
            // (Table 2 read counts must not include empty probes).
            return (recs, SimDuration::ZERO);
        }
        let bytes: usize = recs.iter().map(|r| r.len()).sum();
        self.counters.reads += 1;
        self.counters.bytes_read += bytes as u64;
        (recs, self.model.read_time(bytes))
    }

    /// Inspect a stream's records without charging any access time.
    ///
    /// Recovery code uses this to rebuild in-memory indexes over its
    /// stable log; the *time* of the corresponding reads is charged
    /// explicitly (per replayed interval) with [`SimDisk::read_cost`],
    /// matching the paper's per-interval log-read pattern.
    pub fn peek_stream(&self, stream: &str) -> &[Vec<u8>] {
        self.streams.get(stream).map_or(&[], |v| v.as_slice())
    }

    /// Cost of one sequential read of `bytes` (explicit charging
    /// companion to [`SimDisk::peek_stream`]); counts as one access.
    /// A zero-byte read is no access at all: free and uncounted.
    pub fn read_cost(&mut self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.counters.reads += 1;
        self.counters.bytes_read += bytes as u64;
        self.model.read_time(bytes)
    }

    /// Drop all records in `stream` (log truncation after a checkpoint).
    /// Free, like unlinking a file. A permanently failed device refuses:
    /// the persisted prefix is all the recovery data the node has left,
    /// and no new checkpoint can supersede it.
    pub fn truncate(&mut self, stream: &str) {
        if self.failed {
            return;
        }
        if let Some(v) = self.streams.get_mut(stream) {
            v.clear();
        }
        self.update_full();
    }

    /// Cut `stream` down to its first `keep` records (salvage repair:
    /// a verified prefix survives, the torn/corrupt tail is removed).
    /// Free, like `ftruncate`. A permanently failed device refuses,
    /// same as [`SimDisk::truncate`].
    pub fn truncate_records(&mut self, stream: &str, keep: usize) {
        if self.failed {
            return;
        }
        if let Some(v) = self.streams.get_mut(stream) {
            v.truncate(keep);
        }
        self.update_full();
    }

    /// Replace `stream`'s contents wholesale (checkpoint compaction:
    /// retained images plus newly written ones). Charges one write
    /// access of `charged_bytes` — only the *new* bytes; retained
    /// records are already on the platter and move by rename. A failed
    /// device refuses and the caller pays one futile access.
    pub fn rewrite_stream(
        &mut self,
        stream: &str,
        records: Vec<Vec<u8>>,
        charged_bytes: usize,
    ) -> SimDuration {
        if self.failed {
            self.counters.failed_writes += 1;
            return self.model.write_time(0);
        }
        self.streams.insert(stream.to_string(), records);
        self.last_flush = None;
        self.counters.writes += 1;
        self.counters.bytes_written += charged_bytes as u64;
        self.update_full();
        self.model.write_time(charged_bytes)
    }

    /// Names of all non-empty streams (diagnostics).
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskModel::ULTRA5_LOCAL)
    }

    #[test]
    fn flush_then_read_roundtrips() {
        let mut d = disk();
        let cost = d.flush_records("log", vec![vec![1, 2, 3], vec![4, 5]]);
        assert!(cost.as_nanos() > 0);
        assert_eq!(d.record_count("log"), 2);
        assert_eq!(d.stream_bytes("log"), 5);
        let (rec, _) = d.read_record("log", 1).unwrap();
        assert_eq!(rec, vec![4, 5]);
    }

    #[test]
    fn batch_flush_is_one_access() {
        let mut d = disk();
        d.flush_records("log", (0..10).map(|i| vec![i as u8; 100]));
        assert_eq!(d.counters().writes, 1);
        assert_eq!(d.counters().bytes_written, 1000);
    }

    #[test]
    fn batch_flush_cheaper_than_individual() {
        let mut a = disk();
        let batch = a.flush_records("log", (0..10).map(|i| vec![i as u8; 100]));
        let mut b = disk();
        let individual: SimDuration = (0..10)
            .map(|i| b.flush_records("log", vec![vec![i as u8; 100]]))
            .sum();
        assert!(batch < individual);
    }

    #[test]
    fn read_range_is_sequential() {
        let mut d = disk();
        d.flush_records("log", (0..5).map(|i| vec![i as u8; 10]));
        let (recs, cost) = d.read_range("log", 1..4);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], vec![1u8; 10]);
        assert_eq!(d.counters().reads, 1);
        assert_eq!(cost, DiskModel::ULTRA5_LOCAL.read_time(30));
    }

    #[test]
    fn read_range_clamps_out_of_bounds() {
        let mut d = disk();
        d.flush_records("log", vec![vec![9u8; 4]]);
        let (recs, _) = d.read_range("log", 0..100);
        assert_eq!(recs.len(), 1);
        let (recs, _) = d.read_range("missing", 0..3);
        assert!(recs.is_empty());
    }

    #[test]
    fn truncate_clears_records() {
        let mut d = disk();
        d.flush_records("log", vec![vec![1u8; 8]]);
        d.truncate("log");
        assert_eq!(d.record_count("log"), 0);
        assert!(d.read_record("log", 0).is_none());
    }

    #[test]
    fn missing_record_returns_none() {
        let mut d = disk();
        assert!(d.read_record("nope", 0).is_none());
    }

    #[test]
    fn transient_fault_retries_cost_more_but_persist() {
        let mut clean = disk();
        let base = clean.flush_records("log", vec![vec![1u8; 100]]);
        let mut d = disk();
        d.set_faults(DiskFaultPlan::transient(1, 1000)); // always retry
        let cost = d.flush_records("log", vec![vec![1u8; 100]]);
        assert!(cost > base);
        assert_eq!(d.record_count("log"), 1);
        assert_eq!(d.counters().write_retries, 1);
        assert!(!d.has_failed());
    }

    #[test]
    fn permanent_fault_loses_writes_keeps_reads() {
        let mut d = disk();
        d.set_faults(DiskFaultPlan::permanent_at(2));
        d.flush_records("log", vec![vec![1u8; 8]]); // write 1: persisted
        d.flush_records("log", vec![vec![2u8; 8]]); // write 2: device dies
        d.flush_records("log", vec![vec![3u8; 8]]); // lost
        assert!(d.has_failed());
        assert_eq!(d.record_count("log"), 1);
        assert_eq!(d.counters().failed_writes, 2);
        // Persisted prefix still readable (dead device, not media loss).
        let (rec, _) = d.read_record("log", 0).unwrap();
        assert_eq!(rec, vec![1u8; 8]);
    }

    #[test]
    fn failed_device_refuses_truncation() {
        let mut d = disk();
        d.set_faults(DiskFaultPlan::permanent_at(2));
        d.flush_records("log", vec![vec![1u8; 8]]);
        d.flush_records("log", vec![vec![2u8; 8]]); // device dies
        d.truncate("log");
        assert_eq!(d.record_count("log"), 1, "prefix must survive");
    }

    #[test]
    fn noop_fault_plan_changes_nothing() {
        let mut a = disk();
        let mut b = disk();
        b.set_faults(DiskFaultPlan::none());
        let ca = a.flush_records("log", vec![vec![7u8; 64]]);
        let cb = b.flush_records("log", vec![vec![7u8; 64]]);
        assert_eq!(ca, cb);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn stream_names_filters_empty() {
        let mut d = disk();
        d.flush_records("a", vec![vec![1]]);
        d.flush_records("b", Vec::<Vec<u8>>::new());
        assert_eq!(d.stream_names(), vec!["a"]);
    }

    /// Read counters are exact: probing a missing or empty stream, or
    /// charging a zero-byte read, is not a disk access (Table 2 read
    /// counts must only reflect real transfers).
    #[test]
    fn empty_reads_are_not_accesses() {
        let mut d = disk();
        let (recs, cost) = d.read_range("missing", 0..10);
        assert!(recs.is_empty());
        assert_eq!(cost, SimDuration::ZERO);
        assert_eq!(d.read_cost(0), SimDuration::ZERO);
        d.flush_records("log", vec![vec![1u8; 4]]);
        let (_, _) = d.read_range("log", 5..9); // clamped to empty
        assert_eq!(d.counters().reads, 0);
        assert_eq!(d.counters().bytes_read, 0);
        // A real transfer still counts exactly once.
        let (_, _) = d.read_range("log", 0..1);
        assert_eq!(d.counters().reads, 1);
        assert_eq!(d.counters().bytes_read, 4);
    }

    #[test]
    fn capacity_bound_refuses_overflow_until_truncation() {
        let mut d = disk();
        d.set_faults(DiskFaultPlan::none().with_capacity(100));
        d.flush_records("log", vec![vec![1u8; 60]]);
        assert!(!d.is_full());
        // This flush would overflow: refused whole, device now full.
        d.flush_records("log", vec![vec![2u8; 60]]);
        assert!(d.is_full());
        assert_eq!(d.record_count("log"), 1);
        assert_eq!(d.counters().full_writes, 1);
        // Still full: later flushes keep being refused.
        d.flush_records("log", vec![vec![3u8; 1]]);
        assert_eq!(d.counters().full_writes, 2);
        // Truncation frees space and clears the condition.
        d.truncate("log");
        assert!(!d.is_full());
        d.flush_records("log", vec![vec![4u8; 60]]);
        assert_eq!(d.record_count("log"), 1);
    }

    #[test]
    fn tear_last_flush_keeps_prefix_and_damages_tail() {
        let mut d = disk();
        d.flush_records("log", vec![vec![0u8; 8]]);
        d.flush_records("log", (0..5).map(|i| vec![i as u8 + 1; 16]));
        assert!(d.tear_last_flush(0xBEEF, false));
        // The earlier flush is untouched; the torn batch keeps a
        // prefix plus one short record, and the rest is gone.
        let n = d.record_count("log");
        assert!((2..=6).contains(&n), "{n} records survived");
        assert_eq!(d.peek_stream("log")[0], vec![0u8; 8]);
        let last = d.peek_stream("log").last().unwrap();
        assert!(last.len() < 16, "torn record must be short");
        assert!(d.counters().torn_records > 0);
        // The batch is consumed: a second tear finds nothing.
        assert!(!d.tear_last_flush(0xBEEF, false));
    }

    #[test]
    fn tear_is_deterministic_per_seed() {
        let run = |seed: u64, garble: bool| {
            let mut d = disk();
            d.flush_records("log", (0..6).map(|i| vec![i as u8; 32]));
            d.tear_last_flush(seed, garble);
            d.peek_stream("log").to_vec()
        };
        assert_eq!(run(7, false), run(7, false));
        assert_eq!(run(7, true), run(7, true));
        assert_ne!(run(7, false), run(8, false));
    }

    #[test]
    fn garbled_tear_flips_one_bit() {
        let mut d = disk();
        d.flush_records("log", vec![vec![0u8; 64]]);
        assert!(d.tear_last_flush(3, true));
        let rec = &d.peek_stream("log")[0];
        assert_eq!(rec.len(), 64, "garble keeps the length");
        let flipped: u32 = rec.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
    }

    #[test]
    fn bit_rot_damages_records_deterministically() {
        let mut d = disk();
        d.set_faults(DiskFaultPlan::bit_rot(42, 1000)); // every record
        d.flush_records("log", vec![vec![0u8; 32], vec![0u8; 32]]);
        assert_eq!(d.counters().corrupted_records, 2);
        for rec in d.peek_stream("log") {
            let flipped: u32 = rec.iter().map(|b| b.count_ones()).sum();
            assert_eq!(flipped, 1);
        }
        let mut e = disk();
        e.set_faults(DiskFaultPlan::bit_rot(42, 1000));
        e.flush_records("log", vec![vec![0u8; 32], vec![0u8; 32]]);
        assert_eq!(d.peek_stream("log"), e.peek_stream("log"));
    }

    #[test]
    fn truncate_records_cuts_tail_only() {
        let mut d = disk();
        d.flush_records("log", (0..5).map(|i| vec![i as u8; 4]));
        d.truncate_records("log", 3);
        assert_eq!(d.record_count("log"), 3);
        assert_eq!(d.peek_stream("log")[2], vec![2u8; 4]);
    }

    #[test]
    fn rewrite_stream_replaces_and_charges_only_new_bytes() {
        let mut d = disk();
        d.flush_records("ckpt", (0..4).map(|i| vec![i as u8; 100]));
        let before = d.counters();
        let cost = d.rewrite_stream("ckpt", vec![vec![9u8; 100], vec![8u8; 50]], 50);
        assert_eq!(d.record_count("ckpt"), 2);
        assert_eq!(d.counters().writes, before.writes + 1);
        assert_eq!(d.counters().bytes_written, before.bytes_written + 50);
        assert_eq!(cost, DiskModel::ULTRA5_LOCAL.write_time(50));
    }
}
