//! Log-binned histogram metrics.
//!
//! The paper's tables report means, but distribution shape is what
//! separates the protocols: ML's few huge flushes vs CCL's many small
//! ones, the long tail of lock waits under contention. Each node keeps
//! a [`NodeMetrics`] set of power-of-two-binned [`Histogram`]s recorded
//! on the hot path (fixed-size arrays, no allocation), mergeable across
//! nodes for cluster totals and serialized into the run telemetry.

/// Number of bins: bin 0 holds exact zeros, bin `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. 64 value bins cover the full `u64` range.
pub const HIST_BINS: usize = 65;

/// A power-of-two ("log2") binned histogram over `u64` samples.
///
/// Recording is branch-light constant time; exact count, sum, min and
/// max are kept alongside the bins so means are exact even though
/// quantiles are bin-resolution estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; HIST_BINS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            bins: [0; HIST_BINS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bin index of a sample value.
#[inline]
fn bin_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.bins[bin_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        let Histogram {
            bins,
            count,
            sum,
            min,
            max,
        } = other;
        for (mine, theirs) in self.bins.iter_mut().zip(bins.iter()) {
            *mine += theirs;
        }
        self.count += count;
        self.sum = self.sum.saturating_add(*sum);
        self.min = self.min.min(*min);
        self.max = self.max.max(*max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bin-resolution quantile estimate: the inclusive upper bound of
    /// the first bin at which the cumulative count reaches `q * count`,
    /// clamped to the observed max.
    ///
    /// **Bin-upper-bound convention.** Bin 0 holds exact zeros (upper
    /// bound 0); bin `b >= 1` holds `[2^(b-1), 2^b)` and reports upper
    /// bound `2^b - 1` (saturating to `u64::MAX` for `b >= 64`). The
    /// estimate therefore never *under*-reports a quantile by more
    /// than bin resolution, and never exceeds the observed maximum.
    ///
    /// **Edge behavior.**
    /// * Empty histogram: returns 0 for every `q`.
    /// * `q` outside `[0, 1]` is clamped into the interval.
    /// * `q = 0.0` ranks the first sample (rank is at least 1), so it
    ///   reports the lowest occupied bin, not 0.
    /// * `q = 1.0` ranks the last sample and is clamped to the exact
    ///   observed max.
    /// * Single sample: every `q` reports that sample's bin bound
    ///   clamped to the sample itself.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty bins as `(bin_index, count)` pairs, for sparse
    /// serialization.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
    }
}

/// The per-node histogram registry: one distribution per hot-path
/// quantity the mean-only [`crate::NodeStats`] counters flatten.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Bytes per volatile-log flush to stable storage.
    pub flush_bytes: Histogram,
    /// Encoded bytes per created (non-empty) page diff.
    pub diff_bytes: Histogram,
    /// Virtual nanoseconds from page-fetch request to installed copy.
    pub fetch_latency_ns: Histogram,
    /// Virtual nanoseconds from lock request to applied grant.
    pub lock_wait_ns: Histogram,
    /// Virtual nanoseconds of retransmission backoff per faulted send.
    pub retransmit_backoff_ns: Histogram,
    /// *Wall-clock* nanoseconds per scheduler park (one sample per park
    /// of this node's endpoint). Physical-layer telemetry like
    /// `sched_stalls`: two identical runs may park differently, so this
    /// histogram is deliberately absent from [`NodeMetrics::iter`] (the
    /// deterministic exporter surface) and flows out only through the
    /// scheduler-health exports (`sched_json`, trace counter tracks).
    pub park_ns: Histogram,
}

impl NodeMetrics {
    /// Fold another node's distributions into this one (cluster
    /// totals). Full-struct destructuring: adding a histogram without
    /// merging it is a compile error.
    pub fn merge(&mut self, other: &NodeMetrics) {
        let NodeMetrics {
            flush_bytes,
            diff_bytes,
            fetch_latency_ns,
            lock_wait_ns,
            retransmit_backoff_ns,
            park_ns,
        } = other;
        self.flush_bytes.merge(flush_bytes);
        self.diff_bytes.merge(diff_bytes);
        self.fetch_latency_ns.merge(fetch_latency_ns);
        self.lock_wait_ns.merge(lock_wait_ns);
        self.retransmit_backoff_ns.merge(retransmit_backoff_ns);
        self.park_ns.merge(park_ns);
    }

    /// The registry as `(name, histogram)` pairs, in a fixed order the
    /// exporters key on. `park_ns` is intentionally excluded: it is
    /// wall-clock (nondeterministic) data, and this iterator feeds the
    /// byte-stable `phases_json` export.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        let NodeMetrics {
            flush_bytes,
            diff_bytes,
            fetch_latency_ns,
            lock_wait_ns,
            retransmit_backoff_ns,
            park_ns: _,
        } = self;
        [
            ("flush_bytes", flush_bytes),
            ("diff_bytes", diff_bytes),
            ("fetch_latency_ns", fetch_latency_ns),
            ("lock_wait_ns", lock_wait_ns),
            ("retransmit_backoff_ns", retransmit_backoff_ns),
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_power_of_two() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(1), 1);
        assert_eq!(bin_of(2), 2);
        assert_eq!(bin_of(3), 2);
        assert_eq!(bin_of(4), 3);
        assert_eq!(bin_of(1023), 10);
        assert_eq!(bin_of(1024), 11);
        assert_eq!(bin_of(u64::MAX), 64);
    }

    #[test]
    fn record_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 of uniform 1..=1000 is ~500; the bin estimate returns the
        // upper bound of the bin holding the median (bin 9: 256..511).
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50 estimate {p50}");
        assert_eq!(h.quantile(1.0), 1000); // clamped to observed max
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
    }

    #[test]
    fn quantile_of_a_single_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.record(37);
        // One sample occupies bin 6 (32..63, upper bound 63); the
        // clamp to the observed max makes every q exact.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 37, "q={q}");
        }
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.5), 0, "bin 0 holds exact zeros");
    }

    #[test]
    fn quantile_clamps_q_into_the_unit_interval() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8, 1000] {
            h.record(v);
        }
        // Out-of-range q behaves like the nearest endpoint.
        assert_eq!(h.quantile(-3.5), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 1000, "q=1.0 is the observed max");
        // q=0.0 still ranks the first sample: the lowest occupied bin.
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        // Every q — in range or not — reports 0 on an empty histogram.
        for q in [-1.0, 0.0, 1.0, 2.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.nonzero_bins().count(), 0);
    }

    #[test]
    fn merge_is_sample_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3, 900, 4096] {
            a.record(v);
            whole.record(v);
        }
        for v in [0, 17] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn node_metrics_merge_covers_every_histogram() {
        let mut a = NodeMetrics::default();
        let mut b = NodeMetrics::default();
        // One distinct sample per histogram on each side.
        for (i, (_, _)) in a.iter().enumerate() {
            let _ = i;
        }
        a.flush_bytes.record(1);
        a.diff_bytes.record(2);
        a.fetch_latency_ns.record(3);
        a.lock_wait_ns.record(4);
        a.retransmit_backoff_ns.record(5);
        a.park_ns.record(6);
        b.flush_bytes.record(10);
        b.diff_bytes.record(20);
        b.fetch_latency_ns.record(30);
        b.lock_wait_ns.record(40);
        b.retransmit_backoff_ns.record(50);
        b.park_ns.record(60);
        a.merge(&b);
        for (name, h) in a.iter() {
            assert_eq!(h.count(), 2, "{name} not merged");
        }
        assert_eq!(a.flush_bytes.sum(), 11);
        assert_eq!(a.retransmit_backoff_ns.sum(), 55);
        // park_ns merges but stays off the deterministic iter() surface.
        assert_eq!(a.park_ns.sum(), 66);
        assert!(a.iter().all(|(name, _)| name != "park_ns"));
    }

    #[test]
    fn registry_names_are_unique_and_snake_case() {
        let m = NodeMetrics::default();
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }
}
