//! Bounded, allocation-pooled sink for the structured telemetry stream.
//!
//! Every node appends [`TraceEvent`]s on the protocol hot path (message
//! sends and receives included), so the sink must be cheap and must
//! never grow without bound on a long run: past its capacity it counts
//! drops instead of allocating. Event buffers are recycled through a
//! process-wide pool — a bench or report process running dozens of
//! cluster runs reuses the same handful of multi-megabyte buffers
//! instead of re-growing one per node per run.

use std::sync::Mutex;

use crate::engine::TraceEvent;

/// Default per-node event capacity: generous for every workload in the
/// repo (paper-scale runs emit on the order of 10⁵ events per node)
/// while bounding worst-case memory to tens of MB per node.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// At most this many retired buffers are kept for reuse.
const POOL_LIMIT: usize = 64;

static POOL: Mutex<Vec<Vec<TraceEvent>>> = Mutex::new(Vec::new());

fn pool_get() -> Vec<TraceEvent> {
    POOL.lock()
        .map(|mut p| p.pop().unwrap_or_default())
        .unwrap_or_default()
}

/// Return a consumed event buffer to the pool (cleared, allocation
/// kept). Consumers that drain a run's trace — the Chrome-trace
/// exporter, report pipelines — call this when they are done so the
/// next run's sinks start with warm buffers.
pub fn recycle_trace_buffer(mut buf: Vec<TraceEvent>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    if let Ok(mut p) = POOL.lock() {
        if p.len() < POOL_LIMIT {
            p.push(buf);
        }
    }
}

/// A bounded append-only event stream owned by one node.
#[derive(Debug)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` events; its buffer comes from
    /// the process-wide pool when one is available.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            events: pool_get(),
            capacity,
            dropped: 0,
        }
    }

    /// Append one event, or count a drop once the sink is full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Change the bound. Events already past a smaller bound stay; only
    /// future pushes are judged against the new capacity.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Take ownership of the recorded events (the sink keeps counting
    /// drops against its capacity but starts from an empty, unpooled
    /// buffer).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        recycle_trace_buffer(std::mem::take(&mut self.events));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TraceKind;
    use crate::time::SimTime;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime(n),
            node: 0,
            kind: TraceKind::Crash,
        }
    }

    #[test]
    fn bounded_sink_counts_drops() {
        let mut s = TraceSink::with_capacity(3);
        for i in 0..5 {
            s.push(ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.events()[2], ev(2));
    }

    #[test]
    fn take_leaves_sink_usable() {
        let mut s = TraceSink::with_capacity(10);
        s.push(ev(1));
        let taken = s.take();
        assert_eq!(taken.len(), 1);
        assert!(s.is_empty());
        s.push(ev(2));
        assert_eq!(s.len(), 1);
        recycle_trace_buffer(taken);
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut big = Vec::with_capacity(4096);
        big.push(ev(9));
        recycle_trace_buffer(big);
        let s = TraceSink::with_capacity(10);
        // Some pooled buffer with prior capacity may be handed out; the
        // sink must start logically empty either way.
        assert!(s.is_empty());
    }
}
