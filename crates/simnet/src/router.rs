//! Message transport between cluster nodes.
//!
//! Each node owns an [`Endpoint`]: a receiver for its inbox plus senders
//! to every node in the cluster. Nodes share *nothing* else — all
//! cross-node interaction goes through [`Envelope`]s, exactly as it would
//! over sockets on the paper's Ethernet cluster. Virtual arrival times
//! are stamped by the sender from the [`NetworkModel`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::error::{SimError, SimResult};
use crate::time::SimTime;

/// Index of a node (process) in the cluster: `0..n_nodes`.
pub type NodeId = usize;

/// Types that know their encoded wire size, used to charge transfer time.
///
/// Implementations should return the size the message would occupy in a
/// real implementation's UDP payload (headers included), because those
/// are the byte counts the paper's log-size and traffic numbers reflect.
///
/// `wire_size` is called on every send *and* receive (and again for
/// every duplicated or retransmitted envelope), so implementations must
/// be O(1) arithmetic over the message's logical contents — sum field
/// sizes directly, never encode to a scratch buffer to measure it.
/// Logical size is deliberately decoupled from physical allocation:
/// refcounted payloads shared across cloned envelopes still count their
/// full byte length here.
pub trait WireSized {
    /// Encoded payload size in bytes.
    fn wire_size(&self) -> usize;

    /// Exact encoded body length, if this payload has a real codec
    /// (`None` for abstract test payloads). When present, the engine's
    /// send path asserts `wire_size == header_len + encoded_len` in
    /// debug builds.
    fn encoded_len(&self) -> Option<usize> {
        None
    }

    /// Fixed per-message header bytes included in `wire_size` on top of
    /// the encoded body.
    fn header_len(&self) -> usize {
        0
    }

    /// Stable label naming this payload's message kind, recorded on the
    /// `MsgSend`/`MsgRecv` telemetry pair so exported traces can name
    /// each causal edge. Protocol payloads override this with their
    /// per-variant kind; abstract test payloads keep the default.
    fn msg_label(&self) -> &'static str {
        "msg"
    }
}

/// A message in flight.
///
/// Envelopes are cloned by the fault layer (duplication, retransmit)
/// and by broadcast fan-out, so payload types should make `Clone`
/// cheap — page contents and broadcast notice sets in `hlrc` are
/// refcounted (`SharedBytes`/`Arc`), making an envelope clone a
/// constant-size copy regardless of payload size.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual time at which the sender put it on the wire.
    pub sent_at: SimTime,
    /// Virtual time at which it reaches the destination.
    pub arrive_at: SimTime,
    /// Per-link sequence number stamped by the sender's reliable
    /// layer (1-based; 0 marks an unsequenced raw envelope). Duplicate
    /// deliveries reuse the original's number so the receiver can
    /// suppress them.
    pub seq: u64,
    /// The message body.
    pub payload: M,
}

/// One node's attachment to the cluster interconnect.
pub struct Endpoint<M> {
    id: NodeId,
    rx: Receiver<Envelope<M>>,
    txs: Vec<Sender<Envelope<M>>>,
    /// Which nodes have finished their program and retired cleanly.
    /// Set by this endpoint's `Drop` (unless the thread is panicking),
    /// read by senders to tell "peer finished" from "cluster bug".
    stopped: Arc<[AtomicBool]>,
}

impl<M> Drop for Endpoint<M> {
    fn drop(&mut self) {
        // Drop::drop runs before the receiver field is dropped, so the
        // flag is already visible when peers start seeing send errors.
        // A panicking node does not count as a clean exit: sends to it
        // must keep surfacing as `Disconnected` (a real bug).
        if !std::thread::panicking() {
            self.stopped[self.id].store(true, Ordering::SeqCst);
        }
    }
}

impl<M> Endpoint<M> {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cluster size.
    pub fn n_nodes(&self) -> usize {
        self.txs.len()
    }

    /// Deliver an envelope to its destination's inbox.
    ///
    /// A destination that finished its program and retired cleanly
    /// yields [`SimError::PeerStopped`] (expected under failure
    /// injection — the sender counts and drops the message); a
    /// destination that vanished any other way is a torn-down cluster
    /// and yields [`SimError::Disconnected`].
    pub fn send(&self, env: Envelope<M>) -> SimResult<()> {
        let dst = env.dst;
        let tx = self.txs.get(dst).ok_or(SimError::UnknownNode(dst))?;
        tx.send(env).map_err(|_| {
            if self.stopped[dst].load(Ordering::SeqCst) {
                SimError::PeerStopped(dst)
            } else {
                SimError::Disconnected
            }
        })
    }

    /// Block until the next envelope arrives in this node's inbox.
    pub fn recv(&self) -> SimResult<Envelope<M>> {
        self.rx.recv().map_err(|_| SimError::Disconnected)
    }

    /// Non-blocking poll of the inbox.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }
}

/// Build fully connected endpoints for an `n`-node cluster.
pub fn make_endpoints<M>(n: usize) -> Vec<Endpoint<M>> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let stopped: Arc<[AtomicBool]> = (0..n).map(|_| AtomicBool::new(false)).collect();
    rxs.into_iter()
        .enumerate()
        .map(|(id, rx)| Endpoint {
            id,
            rx,
            txs: txs.clone(),
            stopped: Arc::clone(&stopped),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u32);

    impl WireSized for Ping {
        fn wire_size(&self) -> usize {
            4
        }
    }

    fn env(src: NodeId, dst: NodeId, p: Ping) -> Envelope<Ping> {
        Envelope {
            src,
            dst,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(100),
            seq: 0,
            payload: p,
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let eps = make_endpoints::<Ping>(3);
        eps[0].send(env(0, 2, Ping(7))).unwrap();
        let got = eps[2].recv().unwrap();
        assert_eq!(got.payload, Ping(7));
        assert_eq!(got.src, 0);
        assert_eq!(got.arrive_at, SimTime(100));
    }

    #[test]
    fn self_send_works() {
        let eps = make_endpoints::<Ping>(1);
        eps[0].send(env(0, 0, Ping(1))).unwrap();
        assert_eq!(eps[0].recv().unwrap().payload, Ping(1));
    }

    #[test]
    fn unknown_destination_rejected() {
        let eps = make_endpoints::<Ping>(2);
        let e = eps[0].send(env(0, 9, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::UnknownNode(9));
    }

    #[test]
    fn try_recv_nonblocking() {
        let eps = make_endpoints::<Ping>(2);
        assert!(eps[1].try_recv().is_none());
        eps[0].send(env(0, 1, Ping(3))).unwrap();
        assert_eq!(eps[1].try_recv().unwrap().payload, Ping(3));
    }

    #[test]
    fn fifo_per_pair() {
        let eps = make_endpoints::<Ping>(2);
        for i in 0..10 {
            eps[0].send(env(0, 1, Ping(i))).unwrap();
        }
        for i in 0..10 {
            assert_eq!(eps[1].recv().unwrap().payload, Ping(i));
        }
    }

    #[test]
    fn send_to_cleanly_stopped_peer_is_peer_stopped() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        drop(b); // clean retirement (this thread is not panicking)
        let e = eps[0].send(env(0, 1, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::PeerStopped(1));
    }

    #[test]
    fn send_to_panicked_peer_is_disconnected() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        // Drop the endpoint during an unwind: that is how a panicking
        // node retires, and it must NOT count as a clean stop.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(move || {
            let _hold = b;
            panic!("node dies");
        });
        std::panic::set_hook(hook);
        assert!(r.is_err());
        let e = eps[0].send(env(0, 1, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::Disconnected);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(env(0, 1, Ping(42))).unwrap();
            });
            let got = b.recv().unwrap();
            assert_eq!(got.payload, Ping(42));
        });
    }
}
