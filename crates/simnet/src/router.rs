//! Message transport between cluster nodes: a conservative
//! virtual-time-ordered delivery fabric.
//!
//! Each node owns an [`Endpoint`]: its attachment to the shared
//! interconnect. Nodes share *nothing* else — all cross-node interaction
//! goes through [`Envelope`]s, exactly as it would over sockets on the
//! paper's Ethernet cluster. Virtual arrival times are stamped by the
//! sender from the [`NetworkModel`](crate::NetworkModel).
//!
//! # Virtual-time-ordered delivery
//!
//! Before this layer existed as a scheduler, each inbox was a physical
//! FIFO: two concurrent senders raced real thread scheduling for the
//! delivery order, so lock-grant order — and with it Water's virtual
//! execution time — drifted run to run. The fabric instead delivers each
//! node's messages strictly in `(arrive_at, src, seq)` order, holding a
//! candidate back until no peer can still produce an earlier-ranked
//! message. Delivery order then depends only on virtual time, which the
//! cost model computes deterministically, and every run is
//! bit-reproducible.
//!
//! The "can still produce" test is a conservative-PDES watermark scheme:
//!
//! * Every endpoint publishes a **floor** — a lower bound on the virtual
//!   departure time of anything it may still send. A node parked in a
//!   blocking receive publishes [`Watermark::Idle`] (it cannot send at
//!   all until its next delivery); a node polling its inbox mid-run
//!   publishes its clock; a node that just took a delivery publishes
//!   that delivery's arrival time, because asynchronous handlers reply
//!   relative to *request arrival*, which may lag its own clock.
//! * A peer's future sends therefore depart no earlier than
//!   `local(i) = min(floor(i), min-rank of i's own inbox)`: program
//!   sends are covered by the floor, service replies by the inbox term.
//!   Reactions to messages *not yet delivered anywhere* are covered by
//!   one cascade step: any future arrival departs at or after the
//!   global minimum `M1 = min over live i of local(i)` and crosses the
//!   wire, so it lands at or after `M1 + L`, where the lookahead `L` is
//!   the network's base latency (every cross-node transfer costs at
//!   least `L`).
//! * A candidate with rank `(t, s, q)` at receiver `j` is deliverable
//!   once, for every live peer `i != j`,
//!   `min(local(i), M1 + L) + L` exceeds `t` — or equals it with
//!   `i >= s`, because a message from `i` arriving exactly at `t` would
//!   still rank after the candidate on the source tie-break (same-source
//!   messages carry strictly increasing sequence numbers).
//!
//! Liveness: the scheme cannot deadlock while any node is running,
//! because the node holding the global minimum always clears its own
//! bound (`M1 + 2L > M1` strictly, `L > 0`), and nodes blocked in a
//! receive publish `Idle`, excluding themselves from every bound.
//! Retired endpoints (clean exit or panic) drop out of the bound
//! entirely. A cluster-wide quiescence with a pending candidate would
//! be a protocol bug; a watchdog turns that state into a loud panic with
//! a floor dump instead of a silent hang.
//!
//! Ties beyond `(arrive_at, src, seq)` cannot occur in engine traffic
//! (the reliable layer stamps strictly increasing per-link sequence
//! numbers); raw unsequenced envelopes (`seq == 0`, unit tests only)
//! fall back to per-inbox push order.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{SimError, SimResult};
use crate::time::{SimDuration, SimTime};

/// Index of a node (process) in the cluster: `0..n_nodes`.
pub type NodeId = usize;

/// How long the fabric lets a node wait without *any* scheduler
/// progress before declaring a watermark deadlock (a protocol bug, not
/// a slow peer: every legal wait is bounded by peers reaching their
/// next scheduler interaction).
const WATCHDOG: std::time::Duration = std::time::Duration::from_secs(60);

/// Types that know their encoded wire size, used to charge transfer time.
///
/// Implementations should return the size the message would occupy in a
/// real implementation's UDP payload (headers included), because those
/// are the byte counts the paper's log-size and traffic numbers reflect.
///
/// `wire_size` is called on every send *and* receive (and again for
/// every duplicated or retransmitted envelope), so implementations must
/// be O(1) arithmetic over the message's logical contents — sum field
/// sizes directly, never encode to a scratch buffer to measure it.
/// Logical size is deliberately decoupled from physical allocation:
/// refcounted payloads shared across cloned envelopes still count their
/// full byte length here.
pub trait WireSized {
    /// Encoded payload size in bytes.
    fn wire_size(&self) -> usize;

    /// Exact encoded body length, if this payload has a real codec
    /// (`None` for abstract test payloads). When present, the engine's
    /// send path asserts `wire_size == header_len + encoded_len` in
    /// debug builds.
    fn encoded_len(&self) -> Option<usize> {
        None
    }

    /// Fixed per-message header bytes included in `wire_size` on top of
    /// the encoded body.
    fn header_len(&self) -> usize {
        0
    }

    /// Stable label naming this payload's message kind, recorded on the
    /// `MsgSend`/`MsgRecv` telemetry pair so exported traces can name
    /// each causal edge. Protocol payloads override this with their
    /// per-variant kind; abstract test payloads keep the default.
    fn msg_label(&self) -> &'static str {
        "msg"
    }
}

/// A message in flight.
///
/// Envelopes are cloned by the fault layer (duplication, retransmit)
/// and by broadcast fan-out, so payload types should make `Clone`
/// cheap — page contents and broadcast notice sets in `hlrc` are
/// refcounted (`SharedBytes`/`Arc`), making an envelope clone a
/// constant-size copy regardless of payload size.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual time at which the sender put it on the wire.
    pub sent_at: SimTime,
    /// Virtual time at which it reaches the destination.
    pub arrive_at: SimTime,
    /// Per-link sequence number stamped by the sender's reliable
    /// layer (1-based; 0 marks an unsequenced raw envelope). Duplicate
    /// deliveries reuse the original's number so the receiver can
    /// suppress them.
    pub seq: u64,
    /// The message body.
    pub payload: M,
}

/// Total delivery order of one inbox: virtual arrival time, then source
/// node, then per-link sequence number. `push` (inbox insertion order)
/// is a final physical tie-break reachable only by unsequenced raw
/// envelopes — engine traffic never ties on the first three keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Per-link sequence number (0 for raw envelopes).
    pub seq: u64,
    /// Inbox insertion order (raw-envelope FIFO tie-break only).
    push: u64,
}

/// A published lower bound on a node's future send departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Watermark {
    /// The node may still send, but not before this virtual time.
    Promise(SimTime),
    /// The node is parked in a blocking receive: it cannot send
    /// anything until its next delivery (equivalent to a promise of
    /// infinity; its inbox term still bounds its reply departures).
    Idle,
}

impl Watermark {
    fn as_time(self) -> SimTime {
        match self {
            Watermark::Promise(t) => t,
            Watermark::Idle => SimTime::MAX,
        }
    }
}

/// Whether a node still participates in the delivery bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Liveness {
    /// Running: its floor and inbox constrain every peer's deliveries.
    Live,
    /// Finished its program and retired cleanly; sends to it yield
    /// [`SimError::PeerStopped`].
    Stopped,
    /// Vanished mid-run (panic); sends to it yield
    /// [`SimError::Disconnected`].
    Dead,
}

/// Inbox entry: rank + envelope. Ordered by rank alone.
struct Pending<M> {
    rank: Rank,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum rank.
        other.rank.cmp(&self.rank)
    }
}

/// One node's scheduler state.
struct NodeSched<M> {
    heap: BinaryHeap<Pending<M>>,
    floor: Watermark,
    live: Liveness,
    pushes: u64,
}

impl<M> NodeSched<M> {
    fn new() -> NodeSched<M> {
        NodeSched {
            heap: BinaryHeap::new(),
            // Nothing has run yet: a fresh node may send at any time.
            floor: Watermark::Promise(SimTime::ZERO),
            live: Liveness::Live,
            pushes: 0,
        }
    }

    /// Earliest possible departure of this node's next send: program
    /// sends respect the floor, service replies depart no earlier than
    /// the arrival of the inbox message that triggers them.
    fn local(&self) -> SimTime {
        let inbox = self.heap.peek().map_or(SimTime::MAX, |p| p.rank.at);
        self.floor.as_time().min(inbox)
    }
}

struct FabricState<M> {
    nodes: Vec<NodeSched<M>>,
    /// Bumped on every mutation; the deadlock watchdog fires only when
    /// a full timeout passes with no version change anywhere.
    version: u64,
}

impl<M> FabricState<M> {
    /// Is a candidate with rank `(t, s)` at receiver `j` safe to
    /// deliver — i.e. can no live peer still produce an earlier-ranked
    /// message for `j`? See the module docs for the bound derivation.
    /// With `s == usize::MAX` this degenerates to "no live peer can
    /// reach `j` at or before `t` at all" (the pump's stop condition).
    fn clears(&self, j: NodeId, t: SimTime, s: NodeId, lookahead: SimDuration) -> bool {
        let mut m1 = SimTime::MAX;
        for n in &self.nodes {
            if n.live == Liveness::Live {
                m1 = m1.min(n.local());
            }
        }
        let horizon = m1 + lookahead;
        for (i, n) in self.nodes.iter().enumerate() {
            if i == j || n.live != Liveness::Live {
                continue;
            }
            let bound = n.local().min(horizon) + lookahead;
            let ok = bound > t || (bound == t && i >= s);
            if !ok {
                return false;
            }
        }
        true
    }

    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    fn set_floor(&mut self, j: NodeId, f: Watermark) {
        if self.nodes[j].floor != f {
            self.nodes[j].floor = f;
            self.touch();
        }
    }

    /// Human-readable scheduler snapshot for the deadlock watchdog.
    fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let head = n
                .heap
                .peek()
                .map_or("-".to_string(), |p| format!("{:?}", p.rank));
            let _ = write!(
                s,
                "\n  node {i}: {:?} floor={:?} inbox_len={} inbox_head={head}",
                n.live,
                n.floor,
                n.heap.len()
            );
        }
        s
    }
}

/// The shared interconnect: per-node ordered inboxes plus the watermark
/// state the conservative scheduler runs on.
struct Fabric<M> {
    state: Mutex<FabricState<M>>,
    cv: Condvar,
    /// Minimum virtual latency of any cross-node transfer (conservative
    /// lookahead `L`).
    lookahead: SimDuration,
}

/// One node's attachment to the cluster interconnect.
pub struct Endpoint<M> {
    id: NodeId,
    n_nodes: usize,
    fabric: Arc<Fabric<M>>,
    /// Receive calls that had to park at least once waiting for peer
    /// watermarks to advance (physical-layer telemetry; never part of
    /// the deterministic virtual-time surface).
    stalls: AtomicU64,
}

impl<M> Drop for Endpoint<M> {
    fn drop(&mut self) {
        // A panicking node does not count as a clean exit: sends to it
        // must keep surfacing as `Disconnected` (a real bug). Either
        // way the node stops constraining peer deliveries, so every
        // parked receiver must re-evaluate its bound.
        let mut st = self.fabric.state.lock().unwrap();
        st.nodes[self.id].live = if std::thread::panicking() {
            Liveness::Dead
        } else {
            Liveness::Stopped
        };
        st.touch();
        drop(st);
        self.fabric.cv.notify_all();
    }
}

impl<M> Endpoint<M> {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cluster size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Receive calls so far that parked on the watermark scheme, reset
    /// to zero. Physical-layer overhead telemetry: two identical runs
    /// may stall differently without any virtual-time observable
    /// changing.
    pub fn take_stalls(&self) -> u64 {
        self.stalls.swap(0, Ordering::Relaxed)
    }

    /// Deliver an envelope to its destination's inbox.
    ///
    /// A destination that finished its program and retired cleanly
    /// yields [`SimError::PeerStopped`] (expected under failure
    /// injection — the sender counts and drops the message); a
    /// destination that vanished any other way is a torn-down cluster
    /// and yields [`SimError::Disconnected`].
    pub fn send(&self, env: Envelope<M>) -> SimResult<()> {
        let dst = env.dst;
        if dst >= self.n_nodes {
            return Err(SimError::UnknownNode(dst));
        }
        let mut st = self.fabric.state.lock().unwrap();
        match st.nodes[dst].live {
            Liveness::Stopped => return Err(SimError::PeerStopped(dst)),
            Liveness::Dead => return Err(SimError::Disconnected),
            Liveness::Live => {}
        }
        let sched = &mut st.nodes[dst];
        let push = sched.pushes;
        sched.pushes += 1;
        let rank = Rank {
            at: env.arrive_at,
            src: env.src,
            seq: env.seq,
            push,
        };
        sched.heap.push(Pending { rank, env });
        st.touch();
        drop(st);
        self.fabric.cv.notify_all();
        Ok(())
    }

    /// Block until the earliest-ranked envelope in this node's inbox is
    /// safe to deliver, then deliver it. While parked the node
    /// publishes [`Watermark::Idle`]; on delivery it publishes the
    /// arrival time (asynchronous service replies depart relative to
    /// request arrival, which may lag the node's own clock).
    ///
    /// Errs with [`SimError::Disconnected`] only when the inbox is
    /// empty and every peer has retired — nothing can ever arrive.
    pub fn recv(&self) -> SimResult<Envelope<M>> {
        let fabric = &*self.fabric;
        let mut st = fabric.state.lock().unwrap();
        st.set_floor(self.id, Watermark::Idle);
        fabric.cv.notify_all();
        let mut stalled = false;
        loop {
            if let Some(rank) = st.nodes[self.id].heap.peek().map(|p| p.rank) {
                if st.clears(self.id, rank.at, rank.src, fabric.lookahead) {
                    let p = st.nodes[self.id].heap.pop().expect("peeked");
                    st.set_floor(self.id, Watermark::Promise(rank.at));
                    drop(st);
                    fabric.cv.notify_all();
                    if stalled {
                        self.stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(p.env);
                }
            } else if !st
                .nodes
                .iter()
                .enumerate()
                .any(|(i, n)| i != self.id && n.live == Liveness::Live)
            {
                return Err(SimError::Disconnected);
            }
            stalled = true;
            st = self.park(st);
        }
    }

    /// Deliver the earliest-ranked envelope with `arrive_at <= upto`,
    /// or return `None` once no live peer can produce one (the engine's
    /// pump: "service everything that has arrived by now"). Blocks only
    /// as long as the answer is genuinely unknown — until peer
    /// watermarks either release the head-of-line candidate or prove
    /// that nothing can arrive at or before `upto`.
    pub fn recv_upto(&self, upto: SimTime) -> Option<Envelope<M>> {
        let fabric = &*self.fabric;
        let mut st = fabric.state.lock().unwrap();
        // While polling, the node promises not to send before its own
        // clock (`upto`); program execution resumes from there.
        st.set_floor(self.id, Watermark::Promise(upto));
        fabric.cv.notify_all();
        let mut stalled = false;
        let out = loop {
            let head = st.nodes[self.id].heap.peek().map(|p| p.rank);
            if let Some(rank) = head.filter(|r| r.at <= upto) {
                if st.clears(self.id, rank.at, rank.src, fabric.lookahead) {
                    let p = st.nodes[self.id].heap.pop().expect("peeked");
                    st.set_floor(self.id, Watermark::Promise(rank.at));
                    break Some(p.env);
                }
            } else if st.clears(self.id, upto, usize::MAX, fabric.lookahead) {
                // Every live peer's bound strictly exceeds `upto`:
                // nothing more can arrive by now.
                break None;
            }
            stalled = true;
            st = self.park(st);
        };
        drop(st);
        fabric.cv.notify_all();
        if stalled {
            self.stalls.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Non-blocking inbox poll: the head-of-line envelope, if it is
    /// already safe to deliver.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        let fabric = &*self.fabric;
        let mut st = fabric.state.lock().unwrap();
        let rank = st.nodes[self.id].heap.peek().map(|p| p.rank)?;
        if !st.clears(self.id, rank.at, rank.src, fabric.lookahead) {
            return None;
        }
        let p = st.nodes[self.id].heap.pop().expect("peeked");
        st.set_floor(self.id, Watermark::Promise(rank.at));
        drop(st);
        fabric.cv.notify_all();
        Some(p.env)
    }

    /// Park until any scheduler state changes, with the deadlock
    /// watchdog: a full timeout with no progress anywhere means the
    /// cluster is quiescent with an undeliverable candidate — a
    /// protocol bug worth a loud dump, not a hang.
    fn park<'a>(
        &self,
        st: std::sync::MutexGuard<'a, FabricState<M>>,
    ) -> std::sync::MutexGuard<'a, FabricState<M>> {
        let seen = st.version;
        let (st, timeout) = self.fabric.cv.wait_timeout(st, WATCHDOG).unwrap();
        if timeout.timed_out() && st.version == seen {
            panic!(
                "watermark deadlock: node {} made no progress for {:?};\
                 scheduler state:{}",
                self.id,
                WATCHDOG,
                st.dump()
            );
        }
        st
    }
}

/// Build fully connected endpoints for an `n`-node cluster with an
/// explicit conservative lookahead: the minimum virtual latency of any
/// cross-node transfer. [`run_cluster`](crate::run_cluster) passes the
/// network model's base latency.
pub fn make_endpoints_with_lookahead<M>(n: usize, lookahead: SimDuration) -> Vec<Endpoint<M>> {
    let fabric = Arc::new(Fabric {
        state: Mutex::new(FabricState {
            nodes: (0..n).map(|_| NodeSched::new()).collect(),
            version: 0,
        }),
        cv: Condvar::new(),
        lookahead,
    });
    (0..n)
        .map(|id| Endpoint {
            id,
            n_nodes: n,
            fabric: Arc::clone(&fabric),
            stalls: AtomicU64::new(0),
        })
        .collect()
}

/// Build fully connected endpoints for an `n`-node cluster.
///
/// Uses an effectively unbounded lookahead, under which the bound check
/// always clears and delivery degenerates to pure rank order over
/// whatever is queued — the right semantics for raw envelopes with
/// hand-stamped times and no cost model. Engine clusters go through
/// [`make_endpoints_with_lookahead`] with the real network latency.
pub fn make_endpoints<M>(n: usize) -> Vec<Endpoint<M>> {
    make_endpoints_with_lookahead(n, SimDuration::from_secs(1 << 20))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u32);

    impl WireSized for Ping {
        fn wire_size(&self) -> usize {
            4
        }
    }

    fn env(src: NodeId, dst: NodeId, p: Ping) -> Envelope<Ping> {
        Envelope {
            src,
            dst,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(100),
            seq: 0,
            payload: p,
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let eps = make_endpoints::<Ping>(3);
        eps[0].send(env(0, 2, Ping(7))).unwrap();
        let got = eps[2].recv().unwrap();
        assert_eq!(got.payload, Ping(7));
        assert_eq!(got.src, 0);
        assert_eq!(got.arrive_at, SimTime(100));
    }

    #[test]
    fn self_send_works() {
        let eps = make_endpoints::<Ping>(1);
        eps[0].send(env(0, 0, Ping(1))).unwrap();
        assert_eq!(eps[0].recv().unwrap().payload, Ping(1));
    }

    #[test]
    fn unknown_destination_rejected() {
        let eps = make_endpoints::<Ping>(2);
        let e = eps[0].send(env(0, 9, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::UnknownNode(9));
    }

    #[test]
    fn try_recv_nonblocking() {
        let eps = make_endpoints::<Ping>(2);
        assert!(eps[1].try_recv().is_none());
        eps[0].send(env(0, 1, Ping(3))).unwrap();
        assert_eq!(eps[1].try_recv().unwrap().payload, Ping(3));
    }

    #[test]
    fn fifo_per_pair() {
        let eps = make_endpoints::<Ping>(2);
        for i in 0..10 {
            eps[0].send(env(0, 1, Ping(i))).unwrap();
        }
        for i in 0..10 {
            assert_eq!(eps[1].recv().unwrap().payload, Ping(i));
        }
    }

    #[test]
    fn send_to_cleanly_stopped_peer_is_peer_stopped() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        drop(b); // clean retirement (this thread is not panicking)
        let e = eps[0].send(env(0, 1, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::PeerStopped(1));
    }

    #[test]
    fn send_to_panicked_peer_is_disconnected() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        // Drop the endpoint during an unwind: that is how a panicking
        // node retires, and it must NOT count as a clean stop.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(move || {
            let _hold = b;
            panic!("node dies");
        });
        std::panic::set_hook(hook);
        assert!(r.is_err());
        let e = eps[0].send(env(0, 1, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::Disconnected);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(env(0, 1, Ping(42))).unwrap();
            });
            let got = b.recv().unwrap();
            assert_eq!(got.payload, Ping(42));
        });
    }

    /// The tentpole property at transport level: queued envelopes leave
    /// the inbox in `(arrive_at, src, seq)` order regardless of the
    /// physical order they were pushed in.
    #[test]
    fn delivery_follows_virtual_rank_not_push_order() {
        let eps = make_endpoints::<Ping>(3);
        let stamped = |src: NodeId, at: u64, seq: u64, p: Ping| Envelope {
            src,
            dst: 2,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(at),
            seq,
            payload: p,
        };
        // Pushed out of order, from interleaved sources.
        eps[1].send(stamped(1, 300, 1, Ping(4))).unwrap();
        eps[0].send(stamped(0, 300, 7, Ping(3))).unwrap();
        eps[1].send(stamped(1, 100, 2, Ping(1))).unwrap();
        eps[0].send(stamped(0, 200, 9, Ping(2))).unwrap();
        eps[0].send(stamped(0, 100, 5, Ping(0))).unwrap();
        for want in 0..5 {
            assert_eq!(eps[2].recv().unwrap().payload, Ping(want));
        }
    }

    /// A candidate must wait for a peer whose floor still allows an
    /// earlier-ranked send, and clear once that peer goes idle.
    #[test]
    fn candidate_blocks_on_lagging_watermark() {
        let lookahead = SimDuration::from_nanos(10);
        let mut eps = make_endpoints_with_lookahead::<Ping>(3, lookahead);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.send(Envelope {
            src: 1,
            dst: 2,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(100),
            seq: 1,
            payload: Ping(9),
        })
        .unwrap();
        drop(b); // node 1 retires: only node 0 constrains node 2 now
                 // Node 0's floor is still Promise(0): it could send something
                 // arriving at 0 + 2*10 = 20 < 100, so node 2 must wait.
        assert!(c.try_recv().is_none(), "cleared through a lagging peer");
        std::thread::scope(|s| {
            s.spawn(|| {
                // Node 0 parks in a blocking receive: floor goes Idle,
                // its empty inbox stops constraining node 2, and the
                // candidate clears.
                let got = a.recv();
                // Woken by node 2's sentinel below.
                assert_eq!(got.unwrap().payload, Ping(55));
            });
            let got = c.recv().unwrap();
            assert_eq!(got.payload, Ping(9));
            c.send(Envelope {
                src: 2,
                dst: 0,
                sent_at: SimTime(100),
                arrive_at: SimTime(200),
                seq: 1,
                payload: Ping(55),
            })
            .unwrap();
            drop(c); // node 2 retires so its floor stops gating node 0
        });
    }
}
