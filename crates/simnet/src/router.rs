//! Message transport between cluster nodes: a conservative
//! virtual-time-ordered delivery fabric.
//!
//! Each node owns an [`Endpoint`]: its attachment to the shared
//! interconnect. Nodes share *nothing* else — all cross-node interaction
//! goes through [`Envelope`]s, exactly as it would over sockets on the
//! paper's Ethernet cluster. Virtual arrival times are stamped by the
//! sender from the [`NetworkModel`](crate::NetworkModel).
//!
//! # Virtual-time-ordered delivery
//!
//! Before this layer existed as a scheduler, each inbox was a physical
//! FIFO: two concurrent senders raced real thread scheduling for the
//! delivery order, so lock-grant order — and with it Water's virtual
//! execution time — drifted run to run. The fabric instead delivers each
//! node's messages strictly in `(arrive_at, src, seq)` order, holding a
//! candidate back until no peer can still produce an earlier-ranked
//! message. Delivery order then depends only on virtual time, which the
//! cost model computes deterministically, and every run is
//! bit-reproducible.
//!
//! The "can still produce" test is a conservative-PDES watermark scheme:
//!
//! * Every endpoint publishes a **floor** — a lower bound on the virtual
//!   departure time of anything it may still send. A node parked in a
//!   blocking receive publishes [`Watermark::Idle`] (it cannot send at
//!   all until its next delivery); a node polling its inbox mid-run
//!   publishes its clock; a node that just took a delivery publishes
//!   that delivery's arrival time, because asynchronous handlers reply
//!   relative to *request arrival*, which may lag its own clock.
//! * A peer's future sends therefore depart no earlier than
//!   `local(i) = min(floor(i), min-rank of i's own inbox)`: program
//!   sends are covered by the floor, service replies by the inbox term.
//!   Reactions to messages *not yet delivered anywhere* are covered by
//!   one cascade step: any future arrival departs at or after the
//!   global minimum `M1 = min over live i of local(i)` and crosses the
//!   wire, so it lands at or after `M1 + L`, where the lookahead `L` is
//!   the network's base latency (every cross-node transfer costs at
//!   least `L`).
//! * A candidate with rank `(t, s, q)` at receiver `j` is deliverable
//!   once, for every live peer `i != j`,
//!   `min(local(i), M1 + L) + L` exceeds `t` — or equals it with
//!   `i >= s`, because a message from `i` arriving exactly at `t` would
//!   still rank after the candidate on the source tie-break (same-source
//!   messages carry strictly increasing sequence numbers).
//!
//! Liveness: the scheme cannot deadlock while any node is running,
//! because the node holding the global minimum always clears its own
//! bound (`M1 + 2L > M1` strictly, `L > 0`), and nodes blocked in a
//! receive publish `Idle`, excluding themselves from every bound.
//! Retired endpoints (clean exit or panic) drop out of the bound
//! entirely. A cluster-wide quiescence with a pending candidate would
//! be a protocol bug; a watchdog turns that state into a loud panic with
//! a floor dump instead of a silent hang.
//!
//! Ties beyond `(arrive_at, src, seq)` cannot occur in engine traffic
//! (the reliable layer stamps strictly increasing per-link sequence
//! numbers); raw unsequenced envelopes (`seq == 0`, unit tests only)
//! fall back to per-inbox push order.
//!
//! # Sharded implementation
//!
//! The scheme above is a *virtual-time* contract; this section is about
//! its physical cost. A first implementation kept the whole fabric
//! behind one `Mutex` + one `Condvar`: every send, receive, and poll
//! from all N node threads serialized on a single lock, every
//! admissibility check rescanned all N nodes, and every state change
//! woke the entire cluster. The current implementation shards that
//! state without moving a single virtual-time observable:
//!
//! * **Per-node inbox shards.** Each node's heap lives in its own
//!   [`Shard`] behind its own mutex. `send(i → j)` touches only shard
//!   `j`; concurrent sends to different destinations do not contend.
//! * **Shared watermark table.** Floors, inbox-head ranks, and liveness
//!   live in one small [`WmTable`] (a second, short-hold lock). A
//!   tournament [`MinTree`] over `local(i)` makes both `M1` and
//!   `min over i != j of local(i)` O(log N) reads, so the admissibility
//!   check is O(1)-ish per candidate instead of an O(N) rescan — with a
//!   rare exact O(N) pass only on a bound/candidate tie.
//! * **Targeted wakeups.** A parked receiver registers what it is
//!   waiting for ([`ParkWait`]): a first arrival, or the conservative
//!   bound reaching its head candidate's rank. State changes wake only
//!   the nodes whose wait condition is now (conservatively) met, on
//!   per-node [`WaitCell`]s, instead of broadcasting to the cluster.
//! * **Batch draining.** [`Endpoint::recv_upto_batch`] pops every
//!   already-admissible message under one lock acquisition, pinning the
//!   floor at the *first* popped rank so the batch promise stays valid
//!   for replies to earlier messages in the batch.
//!
//! Lock order is `shard[j] → wm → cell[k]`, each strictly after the
//! previous, at most one shard held at a time; `wm.heads[j]` is written
//! only while holding shard `j`, which serializes sender pushes against
//! receiver pops. A sender keeps holding shard `dst` across the `wm`
//! update, so a message is never visible in a heap before its head rank
//! is visible in the table, and the sender's own floor (≤ the message's
//! departure) covers the in-flight window. All of this changes *when*
//! threads run, never *what* clears: the bound formula, the rank order,
//! and the floor protocol are byte-for-byte the ones derived above, and
//! `detcheck` holds the fabric to bit-identical digests.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{SimError, SimResult};
use crate::metrics::Histogram;
use crate::time::{SimDuration, SimTime};

/// Index of a node (process) in the cluster: `0..n_nodes`.
pub type NodeId = usize;

/// How long the fabric lets a node wait without *any* scheduler
/// progress before declaring a watermark deadlock (a protocol bug, not
/// a slow peer: every legal wait is bounded by peers reaching their
/// next scheduler interaction).
const WATCHDOG: std::time::Duration = std::time::Duration::from_secs(60);

/// How many times a blocked receive re-checks its candidate (yielding
/// the CPU between checks) before committing to a condvar park. Most
/// waits are short — the watermark movement that releases the head
/// candidate is already in flight on another core — so a couple of
/// yields converts them into deliveries without the park/wake futex
/// round-trip, and without registering in the stall telemetry (the
/// call never slept). Purely physical: the admissibility predicate is
/// evaluated identically either way.
const SPINS_BEFORE_PARK: usize = 3;

/// Types that know their encoded wire size, used to charge transfer time.
///
/// Implementations should return the size the message would occupy in a
/// real implementation's UDP payload (headers included), because those
/// are the byte counts the paper's log-size and traffic numbers reflect.
///
/// `wire_size` is called on every send *and* receive (and again for
/// every duplicated or retransmitted envelope), so implementations must
/// be O(1) arithmetic over the message's logical contents — sum field
/// sizes directly, never encode to a scratch buffer to measure it.
/// Logical size is deliberately decoupled from physical allocation:
/// refcounted payloads shared across cloned envelopes still count their
/// full byte length here.
pub trait WireSized {
    /// Encoded payload size in bytes.
    fn wire_size(&self) -> usize;

    /// Exact encoded body length, if this payload has a real codec
    /// (`None` for abstract test payloads). When present, the engine's
    /// send path asserts `wire_size == header_len + encoded_len` in
    /// debug builds.
    fn encoded_len(&self) -> Option<usize> {
        None
    }

    /// Fixed per-message header bytes included in `wire_size` on top of
    /// the encoded body.
    fn header_len(&self) -> usize {
        0
    }

    /// Stable label naming this payload's message kind, recorded on the
    /// `MsgSend`/`MsgRecv` telemetry pair so exported traces can name
    /// each causal edge. Protocol payloads override this with their
    /// per-variant kind; abstract test payloads keep the default.
    fn msg_label(&self) -> &'static str {
        "msg"
    }

    /// Stable small ordinal naming this payload's message kind, used to
    /// bucket per-kind traffic histograms (see
    /// [`NodeStats::count_kind`](crate::NodeStats::count_kind)).
    /// Protocol payloads override this with their wire tag; abstract
    /// test payloads keep the default bucket 0.
    fn kind_ordinal(&self) -> usize {
        0
    }
}

/// A message in flight.
///
/// Envelopes are cloned by the fault layer (duplication, retransmit)
/// and by broadcast fan-out, so payload types should make `Clone`
/// cheap — page contents and broadcast notice sets in `hlrc` are
/// refcounted (`SharedBytes`/`Arc`), making an envelope clone a
/// constant-size copy regardless of payload size.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual time at which the sender put it on the wire.
    pub sent_at: SimTime,
    /// Virtual time at which it reaches the destination.
    pub arrive_at: SimTime,
    /// Per-link sequence number stamped by the sender's reliable
    /// layer (1-based; 0 marks an unsequenced raw envelope). Duplicate
    /// deliveries reuse the original's number so the receiver can
    /// suppress them.
    pub seq: u64,
    /// The message body.
    pub payload: M,
}

/// Total delivery order of one inbox: virtual arrival time, then source
/// node, then per-link sequence number. `push` (inbox insertion order)
/// is a final physical tie-break reachable only by unsequenced raw
/// envelopes — engine traffic never ties on the first three keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Per-link sequence number (0 for raw envelopes).
    pub seq: u64,
    /// Inbox insertion order (raw-envelope FIFO tie-break only).
    push: u64,
}

/// A published lower bound on a node's future send departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Watermark {
    /// The node may still send, but not before this virtual time.
    Promise(SimTime),
    /// The node is parked in a blocking receive: it cannot send
    /// anything until its next delivery (equivalent to a promise of
    /// infinity; its inbox term still bounds its reply departures).
    Idle,
}

impl Watermark {
    fn as_time(self) -> SimTime {
        match self {
            Watermark::Promise(t) => t,
            Watermark::Idle => SimTime::MAX,
        }
    }
}

/// Whether a node still participates in the delivery bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Liveness {
    /// Running: its floor and inbox constrain every peer's deliveries.
    Live,
    /// Finished its program and retired cleanly; sends to it yield
    /// [`SimError::PeerStopped`].
    Stopped,
    /// Vanished mid-run (panic); sends to it yield
    /// [`SimError::Disconnected`].
    Dead,
}

/// Inbox entry: rank + envelope. Ordered by rank alone.
struct Pending<M> {
    rank: Rank,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum rank.
        other.rank.cmp(&self.rank)
    }
}

/// Pad a shard to its own cache lines so neighboring shard locks don't
/// false-share.
#[repr(align(128))]
struct Align128<T>(T);

/// One node's inbox shard: everything a sender to this node must touch.
/// Liveness is duplicated here (authoritative copy for the send-path
/// error check) so the common send never takes the watermark lock.
struct Shard<M> {
    heap: BinaryHeap<Pending<M>>,
    live: Liveness,
    pushes: u64,
}

impl<M> Shard<M> {
    fn new() -> Shard<M> {
        Shard {
            heap: BinaryHeap::new(),
            live: Liveness::Live,
            pushes: 0,
        }
    }

    fn head_at(&self) -> SimTime {
        self.heap.peek().map_or(SimTime::MAX, |p| p.rank.at)
    }
}

/// What a parked receiver is waiting for, so wakeups can be targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParkWait {
    /// Empty inbox in a blocking receive: only a first arrival (or a
    /// peer retiring toward the all-retired disconnect) matters.
    Arrival,
    /// Waiting for the conservative bound to reach this virtual time —
    /// the head candidate's rank, or the poll horizon in `recv_upto`.
    Bound(SimTime),
}

/// Flat-array tournament tree maintaining the minimum of `n` leaves
/// with O(log n) point updates, O(1) global min, and O(log n)
/// min-excluding-one-leaf (fold the sibling values on the leaf-to-root
/// path).
struct MinTree {
    cap: usize,
    v: Vec<u64>,
}

impl MinTree {
    fn new(n: usize) -> MinTree {
        let cap = n.next_power_of_two().max(1);
        MinTree {
            cap,
            v: vec![u64::MAX; 2 * cap],
        }
    }

    fn leaf(&self, i: usize) -> u64 {
        self.v[self.cap + i]
    }

    fn set(&mut self, i: usize, val: u64) {
        let mut x = self.cap + i;
        if self.v[x] == val {
            return;
        }
        self.v[x] = val;
        x >>= 1;
        while x >= 1 {
            let m = self.v[2 * x].min(self.v[2 * x + 1]);
            if self.v[x] == m {
                break;
            }
            self.v[x] = m;
            x >>= 1;
        }
    }

    fn min(&self) -> u64 {
        self.v[1]
    }

    fn min_excluding(&self, i: usize) -> u64 {
        let mut x = self.cap + i;
        let mut m = u64::MAX;
        while x > 1 {
            m = m.min(self.v[x ^ 1]);
            x >>= 1;
        }
        m
    }
}

/// The shared watermark table: the scheduler-global state every
/// admissibility decision reads. Kept deliberately small — floors,
/// cached inbox-head ranks, liveness, the min-tree over `local(i)`, and
/// the park registry — so the lock is held for microseconds.
struct WmTable {
    floors: Vec<Watermark>,
    /// Cached min arrival rank of each node's inbox heap (`SimTime::MAX`
    /// when empty): the inbox term of `local(i)`. Written only while
    /// holding that node's shard lock, which serializes sender pushes
    /// against receiver pops.
    heads: Vec<SimTime>,
    live: Vec<Liveness>,
    live_count: usize,
    /// `tree.leaf(i) == local(i)` for live nodes, `u64::MAX` otherwise.
    tree: MinTree,
    parked: Vec<Option<ParkWait>>,
    parked_count: usize,
    /// Reusable wake-list buffer (avoids an allocation per scan).
    scratch: Vec<NodeId>,
}

impl WmTable {
    fn new(n: usize) -> WmTable {
        let mut wm = WmTable {
            // Nothing has run yet: a fresh node may send at any time.
            floors: vec![Watermark::Promise(SimTime::ZERO); n],
            heads: vec![SimTime::MAX; n],
            live: vec![Liveness::Live; n],
            live_count: n,
            tree: MinTree::new(n),
            parked: vec![None; n],
            parked_count: 0,
            scratch: Vec::new(),
        };
        for i in 0..n {
            wm.refresh(i);
        }
        wm
    }

    /// Earliest possible departure of node `i`'s next send: program
    /// sends respect the floor, service replies depart no earlier than
    /// the arrival of the inbox message that triggers them.
    fn local_of(&self, i: NodeId) -> SimTime {
        self.floors[i].as_time().min(self.heads[i])
    }

    /// Recompute node `i`'s min-tree leaf from its floor/head/liveness.
    fn refresh(&mut self, i: NodeId) {
        let leaf = if self.live[i] == Liveness::Live {
            self.local_of(i).0
        } else {
            u64::MAX
        };
        self.tree.set(i, leaf);
    }

    /// How many *other* live nodes constrain node `j`.
    fn live_peers(&self, j: NodeId) -> usize {
        self.live_count - usize::from(self.live[j] == Liveness::Live)
    }

    /// Is a candidate with rank `(t, s)` at receiver `j` safe to
    /// deliver — i.e. can no live peer still produce an earlier-ranked
    /// message for `j`? See the module docs for the bound derivation.
    /// With `s == usize::MAX` this degenerates to "no live peer can
    /// reach `j` at or before `t` at all" (the pump's stop condition).
    ///
    /// Incremental form of the per-peer loop: the minimum peer bound is
    /// `min(min over live i != j of local(i), M1 + L) + L`, both terms
    /// O(log N) from the min-tree. Strictly above `t` means every peer
    /// bound is; strictly below means some peer bound is. Only an exact
    /// tie (engine traffic cannot tie, so raw-envelope tests and the
    /// occasional bound collision only) falls back to the O(N) scan to
    /// apply the `i >= s` source tie-break per peer.
    fn clears(&self, j: NodeId, t: SimTime, s: NodeId, lookahead: SimDuration) -> bool {
        if self.live_peers(j) == 0 {
            return true;
        }
        let horizon = SimTime(self.tree.min()) + lookahead;
        let b = SimTime(self.tree.min_excluding(j)).min(horizon) + lookahead;
        if b != t {
            return b > t;
        }
        if s == usize::MAX {
            return false;
        }
        for (i, &live) in self.live.iter().enumerate() {
            if i == j || live != Liveness::Live {
                continue;
            }
            let bound = self.local_of(i).min(horizon) + lookahead;
            let ok = bound > t || (bound == t && i >= s);
            if !ok {
                return false;
            }
        }
        true
    }

    /// Which parked nodes' wait conditions are (conservatively) met,
    /// given the current table — the targeted replacement for a
    /// cluster-wide broadcast. `Bound(t)` waiters wake once the minimum
    /// peer bound reaches `t` (ties may still fail the exact source
    /// check; the woken node re-evaluates and re-parks). `Arrival`
    /// waiters are woken directly by sends and liveness changes, never
    /// by floor movement.
    fn due_wakes(&self, skip: NodeId, lookahead: SimDuration, out: &mut Vec<NodeId>) {
        let horizon = SimTime(self.tree.min()) + lookahead;
        for (k, w) in self.parked.iter().enumerate() {
            let t = match w {
                Some(ParkWait::Bound(t)) if k != skip => *t,
                _ => continue,
            };
            let b = SimTime(self.tree.min_excluding(k)).min(horizon) + lookahead;
            if b >= t {
                out.push(k);
            }
        }
    }

    /// Wake the parked nodes whose bound-wait became satisfiable, if
    /// node `j`'s `local()` rose across this critical section (from
    /// `before`, its leaf at entry). Falls (sends, deliveries at the
    /// old floor) can only tighten peer bounds and never unblock
    /// anyone, so they skip the scan entirely. `j` itself is excluded:
    /// its own bound tie would otherwise wake it right back up.
    fn scan_if_raised(
        &mut self,
        j: NodeId,
        before: u64,
        lookahead: SimDuration,
        cells: &[WaitCell],
    ) {
        if self.parked_count == 0 || self.tree.leaf(j) <= before {
            return;
        }
        let mut wake = std::mem::take(&mut self.scratch);
        self.due_wakes(j, lookahead, &mut wake);
        for k in wake.drain(..) {
            self.unpark(k, cells);
        }
        self.scratch = wake;
    }

    /// Register node `j` as parked; returns the wake-seq ticket to wait
    /// on. Reading the ticket under the `wm` lock is what makes the
    /// park race-free: wakers bump it only while holding `wm`, so any
    /// wake decided after this call is observed by the waiter.
    fn park(&mut self, j: NodeId, wait: ParkWait, cells: &[WaitCell]) -> u64 {
        if self.parked[j].is_none() {
            self.parked_count += 1;
        }
        self.parked[j] = Some(wait);
        *cells[j].seq.lock().unwrap()
    }

    fn unpark(&mut self, k: NodeId, cells: &[WaitCell]) {
        if self.parked[k].take().is_some() {
            self.parked_count -= 1;
            let mut g = cells[k].seq.lock().unwrap();
            *g = g.wrapping_add(1);
            drop(g);
            cells[k].cv.notify_one();
        }
    }

    fn unpark_all(&mut self, cells: &[WaitCell]) {
        for k in 0..self.parked.len() {
            self.unpark(k, cells);
        }
    }
}

/// One node's wakeup channel: a wake sequence number and its condvar.
/// The seq is bumped (under `wm` + this leaf lock) on every targeted
/// wake, so a parked thread can detect wakes decided between releasing
/// `wm` and entering the wait.
struct WaitCell {
    seq: Mutex<u64>,
    cv: Condvar,
}

/// The shared interconnect: per-node inbox shards plus the shared
/// watermark table the conservative scheduler runs on.
struct Fabric<M> {
    shards: Vec<Align128<Mutex<Shard<M>>>>,
    wm: Mutex<WmTable>,
    cells: Vec<WaitCell>,
    /// Bumped on every scheduler mutation; the deadlock watchdog fires
    /// only when a full timeout passes with no change anywhere.
    version: AtomicU64,
    /// Minimum virtual latency of any cross-node transfer (conservative
    /// lookahead `L`).
    lookahead: SimDuration,
}

impl<M> Fabric<M> {
    fn shard(&self, j: NodeId) -> &Mutex<Shard<M>> {
        &self.shards[j].0
    }

    fn touch(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Human-readable scheduler snapshot for the deadlock watchdog.
    /// Called with no locks held; shards are `try_lock`ed because a
    /// panicking watchdog must not deadlock against a stuck holder.
    fn dump(&self) -> String {
        use std::fmt::Write;
        let wm = self.wm.lock().unwrap();
        let mut s = String::new();
        for i in 0..wm.floors.len() {
            let inbox = match self.shard(i).try_lock() {
                Ok(sh) => {
                    let head = sh
                        .heap
                        .peek()
                        .map_or("-".to_string(), |p| format!("{:?}", p.rank));
                    format!("inbox_len={} inbox_head={head}", sh.heap.len())
                }
                Err(_) => "inbox=<locked>".to_string(),
            };
            let _ = write!(
                s,
                "\n  node {i}: {:?} floor={:?} head_at={:?} parked={:?} {inbox}",
                wm.live[i], wm.floors[i], wm.heads[i], wm.parked[i]
            );
        }
        s
    }
}

/// One node's attachment to the cluster interconnect.
pub struct Endpoint<M> {
    id: NodeId,
    n_nodes: usize,
    fabric: Arc<Fabric<M>>,
    /// Receive calls that had to park at least once waiting for peer
    /// watermarks to advance (physical-layer telemetry; never part of
    /// the deterministic virtual-time surface).
    stalls: AtomicU64,
    /// Wall-clock nanoseconds spent parked, one sample per park
    /// (physical-layer telemetry, same caveat as `stalls`).
    park_hist: Mutex<Histogram>,
}

impl<M> Drop for Endpoint<M> {
    fn drop(&mut self) {
        // A panicking node does not count as a clean exit: sends to it
        // must keep surfacing as `Disconnected` (a real bug). Either
        // way the node stops constraining peer deliveries, so every
        // parked receiver must re-evaluate its bound.
        let fabric = &*self.fabric;
        let mode = if std::thread::panicking() {
            Liveness::Dead
        } else {
            Liveness::Stopped
        };
        let mut sh = fabric.shard(self.id).lock().unwrap();
        sh.live = mode;
        drop(sh);
        let mut wm = fabric.wm.lock().unwrap();
        wm.live[self.id] = mode;
        wm.live_count -= 1;
        wm.refresh(self.id);
        fabric.touch();
        // Retirement relaxes every bound and feeds the all-retired
        // disconnect: the one event that still wakes the whole cluster.
        wm.unpark_all(&fabric.cells);
    }
}

impl<M> Endpoint<M> {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cluster size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Receive calls so far that parked on the watermark scheme, reset
    /// to zero. Physical-layer overhead telemetry: two identical runs
    /// may stall differently without any virtual-time observable
    /// changing.
    pub fn take_stalls(&self) -> u64 {
        self.stalls.swap(0, Ordering::Relaxed)
    }

    /// Wall-clock park durations (ns) recorded since the last call,
    /// reset to empty. Physical-layer telemetry, like
    /// [`take_stalls`](Endpoint::take_stalls).
    pub fn take_park_hist(&self) -> Histogram {
        std::mem::take(&mut *self.park_hist.lock().unwrap())
    }

    /// Deliver an envelope to its destination's inbox.
    ///
    /// A destination that finished its program and retired cleanly
    /// yields [`SimError::PeerStopped`] (expected under failure
    /// injection — the sender counts and drops the message); a
    /// destination that vanished any other way is a torn-down cluster
    /// and yields [`SimError::Disconnected`].
    ///
    /// Fast path: only the destination's shard lock. The watermark
    /// table is touched only when the push changes the destination's
    /// head-of-line rank (it can only lower `local(dst)`, so no other
    /// node's wait can become satisfiable — no wake scan). The shard
    /// lock is held across the table update so the message is never
    /// visible in the heap before its head rank is visible to
    /// admissibility checks.
    pub fn send(&self, env: Envelope<M>) -> SimResult<()> {
        let dst = env.dst;
        if dst >= self.n_nodes {
            return Err(SimError::UnknownNode(dst));
        }
        let fabric = &*self.fabric;
        let mut sh = fabric.shard(dst).lock().unwrap();
        match sh.live {
            Liveness::Stopped => return Err(SimError::PeerStopped(dst)),
            Liveness::Dead => return Err(SimError::Disconnected),
            Liveness::Live => {}
        }
        let push = sh.pushes;
        sh.pushes += 1;
        let rank = Rank {
            at: env.arrive_at,
            src: env.src,
            seq: env.seq,
            push,
        };
        let head_changed = sh.heap.peek().is_none_or(|p| rank < p.rank);
        sh.heap.push(Pending { rank, env });
        fabric.touch();
        if head_changed {
            let mut wm = fabric.wm.lock().unwrap();
            if rank.at < wm.heads[dst] {
                wm.heads[dst] = rank.at;
                wm.refresh(dst);
            }
            // Wake dst on *any* head rank change, including an
            // equal-arrival (src, seq) change: the source tie-break
            // `i >= s` is easier for a smaller source, so a parked dst
            // could clear the new head even where the old one stalled.
            wm.unpark(dst, &fabric.cells);
        }
        drop(sh);
        Ok(())
    }

    /// Block until the earliest-ranked envelope in this node's inbox is
    /// safe to deliver, then deliver it. While parked the node
    /// publishes [`Watermark::Idle`]; on delivery it publishes the
    /// arrival time (asynchronous service replies depart relative to
    /// request arrival, which may lag the node's own clock).
    ///
    /// Errs with [`SimError::Disconnected`] only when the inbox is
    /// empty and every peer has retired — nothing can ever arrive.
    pub fn recv(&self) -> SimResult<Envelope<M>> {
        let fabric = &*self.fabric;
        let mut stalled = false;
        let mut spins = 0usize;
        loop {
            let mut sh = fabric.shard(self.id).lock().unwrap();
            let mut wm = fabric.wm.lock().unwrap();
            let before = wm.tree.leaf(self.id);
            if wm.floors[self.id] != Watermark::Idle {
                wm.floors[self.id] = Watermark::Idle;
                wm.refresh(self.id);
                fabric.touch();
            }
            if let Some(rank) = sh.heap.peek().map(|p| p.rank) {
                if wm.clears(self.id, rank.at, rank.src, fabric.lookahead) {
                    let p = sh.heap.pop().expect("peeked");
                    wm.heads[self.id] = sh.head_at();
                    wm.floors[self.id] = Watermark::Promise(rank.at);
                    wm.refresh(self.id);
                    fabric.touch();
                    wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
                    drop(wm);
                    drop(sh);
                    if stalled {
                        self.stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(p.env);
                }
                wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
                if spins < SPINS_BEFORE_PARK {
                    spins += 1;
                    drop(wm);
                    drop(sh);
                    std::thread::yield_now();
                    continue;
                }
                let seen = wm.park(self.id, ParkWait::Bound(rank.at), &fabric.cells);
                drop(wm);
                drop(sh);
                stalled = true;
                spins = 0;
                self.wait(seen);
            } else {
                if wm.live_peers(self.id) == 0 {
                    return Err(SimError::Disconnected);
                }
                wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
                if spins < SPINS_BEFORE_PARK {
                    spins += 1;
                    drop(wm);
                    drop(sh);
                    std::thread::yield_now();
                    continue;
                }
                let seen = wm.park(self.id, ParkWait::Arrival, &fabric.cells);
                drop(wm);
                drop(sh);
                stalled = true;
                spins = 0;
                self.wait(seen);
            }
        }
    }

    /// Deliver the earliest-ranked envelope with `arrive_at <= upto`,
    /// or return `None` once no live peer can produce one (the engine's
    /// pump: "service everything that has arrived by now"). Blocks only
    /// as long as the answer is genuinely unknown — until peer
    /// watermarks either release the head-of-line candidate or prove
    /// that nothing can arrive at or before `upto`.
    pub fn recv_upto(&self, upto: SimTime) -> Option<Envelope<M>> {
        let mut out = Vec::new();
        self.recv_upto_inner(upto, 1, &mut out);
        out.pop()
    }

    /// Batch form of [`recv_upto`](Endpoint::recv_upto): drain *every*
    /// already-admissible envelope with `arrive_at <= upto` under one
    /// lock acquisition, appending them (in delivery order) to `out`.
    /// Returns how many were delivered; `0` means the drained condition
    /// — no live peer can produce an arrival at or before `upto`.
    ///
    /// The batch promise: after popping the first envelope at rank
    /// `t1`, the floor is pinned at `Promise(t1)` (not at the last
    /// popped rank) while later candidates are evaluated, because the
    /// caller may reply to *any* batched message and those replies
    /// depart no earlier than `t1`. Under that floor, `local(self) =
    /// t1` participates in every bound, so a candidate `t2` clearing
    /// here also cleared in the one-message-per-call schedule: any
    /// response chain through a peer lands at or after `t1 + 2L ≥` the
    /// bound that admitted `t2`, and the caller's own loopback sends
    /// depart at or after its clock (`≥ upto ≥ t2`), so nothing the
    /// batch delays can ever rank before a batched envelope. Same
    /// deliveries, same order, one lock hold.
    pub fn recv_upto_batch(&self, upto: SimTime, out: &mut Vec<Envelope<M>>) -> usize {
        self.recv_upto_inner(upto, usize::MAX, out)
    }

    fn recv_upto_inner(&self, upto: SimTime, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        let fabric = &*self.fabric;
        let mut stalled = false;
        let mut spins = 0usize;
        let delivered = loop {
            let mut sh = fabric.shard(self.id).lock().unwrap();
            let mut wm = fabric.wm.lock().unwrap();
            let before = wm.tree.leaf(self.id);
            // While polling, the node promises not to send before its
            // own clock (`upto`); program execution resumes from there.
            if wm.floors[self.id] != Watermark::Promise(upto) {
                wm.floors[self.id] = Watermark::Promise(upto);
                wm.refresh(self.id);
                fabric.touch();
            }
            let mut delivered = 0usize;
            while delivered < max {
                let head = sh.heap.peek().map(|p| p.rank);
                let Some(rank) = head.filter(|r| r.at <= upto) else {
                    break;
                };
                if !wm.clears(self.id, rank.at, rank.src, fabric.lookahead) {
                    break;
                }
                let p = sh.heap.pop().expect("peeked");
                if delivered == 0 {
                    wm.floors[self.id] = Watermark::Promise(rank.at);
                }
                wm.heads[self.id] = sh.head_at();
                wm.refresh(self.id);
                out.push(p.env);
                delivered += 1;
            }
            if delivered > 0 {
                fabric.touch();
                wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
                break delivered;
            }
            if wm.clears(self.id, upto, usize::MAX, fabric.lookahead) {
                // Every live peer's bound strictly exceeds `upto`:
                // nothing more can arrive by now.
                wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
                break 0;
            }
            wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
            if spins < SPINS_BEFORE_PARK {
                spins += 1;
                drop(wm);
                drop(sh);
                std::thread::yield_now();
                continue;
            }
            let wait = match sh.heap.peek().map(|p| p.rank.at) {
                Some(t) if t <= upto => ParkWait::Bound(t),
                _ => ParkWait::Bound(upto),
            };
            let seen = wm.park(self.id, wait, &fabric.cells);
            drop(wm);
            drop(sh);
            stalled = true;
            spins = 0;
            self.wait(seen);
        };
        if stalled {
            self.stalls.fetch_add(1, Ordering::Relaxed);
        }
        delivered
    }

    /// Non-blocking inbox poll: the head-of-line envelope, if it is
    /// already safe to deliver.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        let fabric = &*self.fabric;
        let mut sh = fabric.shard(self.id).lock().unwrap();
        let rank = sh.heap.peek().map(|p| p.rank)?;
        let mut wm = fabric.wm.lock().unwrap();
        if !wm.clears(self.id, rank.at, rank.src, fabric.lookahead) {
            return None;
        }
        let before = wm.tree.leaf(self.id);
        let p = sh.heap.pop().expect("peeked");
        wm.heads[self.id] = sh.head_at();
        wm.floors[self.id] = Watermark::Promise(rank.at);
        wm.refresh(self.id);
        fabric.touch();
        wm.scan_if_raised(self.id, before, fabric.lookahead, &fabric.cells);
        drop(wm);
        drop(sh);
        Some(p.env)
    }

    /// Wait on this node's wake cell until a targeted wake arrives
    /// (seq moves past `seen`), recording the park duration. The
    /// deadlock watchdog rides along: a full timeout during which the
    /// *whole fabric's* version never moved means the cluster is
    /// quiescent with an undeliverable candidate — a protocol bug
    /// worth a loud dump, not a hang.
    fn wait(&self, seen: u64) {
        let fabric = &*self.fabric;
        let cell = &fabric.cells[self.id];
        let t0 = std::time::Instant::now();
        let mut v0 = fabric.version.load(Ordering::Relaxed);
        let mut g = cell.seq.lock().unwrap();
        while *g == seen {
            let (ng, to) = cell.cv.wait_timeout(g, WATCHDOG).unwrap();
            g = ng;
            if to.timed_out() && *g == seen {
                let v = fabric.version.load(Ordering::Relaxed);
                if v == v0 {
                    // Drop the cell guard before dumping: `dump` takes
                    // the wm lock, which wakers hold while bumping
                    // cells — never hold a cell across that.
                    drop(g);
                    panic!(
                        "watermark deadlock: node {} made no progress for {:?};\
                         scheduler state:{}",
                        self.id,
                        WATCHDOG,
                        fabric.dump()
                    );
                }
                v0 = v;
            }
        }
        drop(g);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.park_hist.lock().unwrap().record(ns);
    }
}

/// Build fully connected endpoints for an `n`-node cluster with an
/// explicit conservative lookahead: the minimum virtual latency of any
/// cross-node transfer. [`run_cluster`](crate::run_cluster) passes the
/// network model's base latency.
pub fn make_endpoints_with_lookahead<M>(n: usize, lookahead: SimDuration) -> Vec<Endpoint<M>> {
    let fabric = Arc::new(Fabric {
        shards: (0..n).map(|_| Align128(Mutex::new(Shard::new()))).collect(),
        wm: Mutex::new(WmTable::new(n)),
        cells: (0..n)
            .map(|_| WaitCell {
                seq: Mutex::new(0),
                cv: Condvar::new(),
            })
            .collect(),
        version: AtomicU64::new(0),
        lookahead,
    });
    (0..n)
        .map(|id| Endpoint {
            id,
            n_nodes: n,
            fabric: Arc::clone(&fabric),
            stalls: AtomicU64::new(0),
            park_hist: Mutex::new(Histogram::new()),
        })
        .collect()
}

/// Build fully connected endpoints for an `n`-node cluster.
///
/// Uses an effectively unbounded lookahead, under which the bound check
/// always clears and delivery degenerates to pure rank order over
/// whatever is queued — the right semantics for raw envelopes with
/// hand-stamped times and no cost model. Engine clusters go through
/// [`make_endpoints_with_lookahead`] with the real network latency.
pub fn make_endpoints<M>(n: usize) -> Vec<Endpoint<M>> {
    make_endpoints_with_lookahead(n, SimDuration::from_secs(1 << 20))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u32);

    impl WireSized for Ping {
        fn wire_size(&self) -> usize {
            4
        }
    }

    fn env(src: NodeId, dst: NodeId, p: Ping) -> Envelope<Ping> {
        Envelope {
            src,
            dst,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(100),
            seq: 0,
            payload: p,
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let eps = make_endpoints::<Ping>(3);
        eps[0].send(env(0, 2, Ping(7))).unwrap();
        let got = eps[2].recv().unwrap();
        assert_eq!(got.payload, Ping(7));
        assert_eq!(got.src, 0);
        assert_eq!(got.arrive_at, SimTime(100));
    }

    #[test]
    fn self_send_works() {
        let eps = make_endpoints::<Ping>(1);
        eps[0].send(env(0, 0, Ping(1))).unwrap();
        assert_eq!(eps[0].recv().unwrap().payload, Ping(1));
    }

    #[test]
    fn unknown_destination_rejected() {
        let eps = make_endpoints::<Ping>(2);
        let e = eps[0].send(env(0, 9, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::UnknownNode(9));
    }

    #[test]
    fn try_recv_nonblocking() {
        let eps = make_endpoints::<Ping>(2);
        assert!(eps[1].try_recv().is_none());
        eps[0].send(env(0, 1, Ping(3))).unwrap();
        assert_eq!(eps[1].try_recv().unwrap().payload, Ping(3));
    }

    #[test]
    fn fifo_per_pair() {
        let eps = make_endpoints::<Ping>(2);
        for i in 0..10 {
            eps[0].send(env(0, 1, Ping(i))).unwrap();
        }
        for i in 0..10 {
            assert_eq!(eps[1].recv().unwrap().payload, Ping(i));
        }
    }

    #[test]
    fn send_to_cleanly_stopped_peer_is_peer_stopped() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        drop(b); // clean retirement (this thread is not panicking)
        let e = eps[0].send(env(0, 1, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::PeerStopped(1));
    }

    #[test]
    fn send_to_panicked_peer_is_disconnected() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        // Drop the endpoint during an unwind: that is how a panicking
        // node retires, and it must NOT count as a clean stop.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(move || {
            let _hold = b;
            panic!("node dies");
        });
        std::panic::set_hook(hook);
        assert!(r.is_err());
        let e = eps[0].send(env(0, 1, Ping(0)));
        assert_eq!(e.unwrap_err(), SimError::Disconnected);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = make_endpoints::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(env(0, 1, Ping(42))).unwrap();
            });
            let got = b.recv().unwrap();
            assert_eq!(got.payload, Ping(42));
        });
    }

    /// The tentpole property at transport level: queued envelopes leave
    /// the inbox in `(arrive_at, src, seq)` order regardless of the
    /// physical order they were pushed in.
    #[test]
    fn delivery_follows_virtual_rank_not_push_order() {
        let eps = make_endpoints::<Ping>(3);
        let stamped = |src: NodeId, at: u64, seq: u64, p: Ping| Envelope {
            src,
            dst: 2,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(at),
            seq,
            payload: p,
        };
        // Pushed out of order, from interleaved sources.
        eps[1].send(stamped(1, 300, 1, Ping(4))).unwrap();
        eps[0].send(stamped(0, 300, 7, Ping(3))).unwrap();
        eps[1].send(stamped(1, 100, 2, Ping(1))).unwrap();
        eps[0].send(stamped(0, 200, 9, Ping(2))).unwrap();
        eps[0].send(stamped(0, 100, 5, Ping(0))).unwrap();
        for want in 0..5 {
            assert_eq!(eps[2].recv().unwrap().payload, Ping(want));
        }
    }

    /// A candidate must wait for a peer whose floor still allows an
    /// earlier-ranked send, and clear once that peer goes idle.
    #[test]
    fn candidate_blocks_on_lagging_watermark() {
        let lookahead = SimDuration::from_nanos(10);
        let mut eps = make_endpoints_with_lookahead::<Ping>(3, lookahead);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.send(Envelope {
            src: 1,
            dst: 2,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(100),
            seq: 1,
            payload: Ping(9),
        })
        .unwrap();
        drop(b); // node 1 retires: only node 0 constrains node 2 now
                 // Node 0's floor is still Promise(0): it could send something
                 // arriving at 0 + 2*10 = 20 < 100, so node 2 must wait.
        assert!(c.try_recv().is_none(), "cleared through a lagging peer");
        std::thread::scope(|s| {
            s.spawn(|| {
                // Node 0 parks in a blocking receive: floor goes Idle,
                // its empty inbox stops constraining node 2, and the
                // candidate clears.
                let got = a.recv();
                // Woken by node 2's sentinel below.
                assert_eq!(got.unwrap().payload, Ping(55));
            });
            let got = c.recv().unwrap();
            assert_eq!(got.payload, Ping(9));
            c.send(Envelope {
                src: 2,
                dst: 0,
                sent_at: SimTime(100),
                arrive_at: SimTime(200),
                seq: 1,
                payload: Ping(55),
            })
            .unwrap();
            drop(c); // node 2 retires so its floor stops gating node 0
        });
    }

    /// The batch drain must deliver exactly the rank-order prefix the
    /// one-message-at-a-time pump would, and report drained (0) only
    /// when nothing at or below `upto` can arrive.
    #[test]
    fn recv_upto_batch_drains_in_rank_order() {
        let eps = make_endpoints::<Ping>(3);
        let stamped = |src: NodeId, at: u64, seq: u64, p: Ping| Envelope {
            src,
            dst: 2,
            sent_at: SimTime::ZERO,
            arrive_at: SimTime(at),
            seq,
            payload: p,
        };
        eps[1].send(stamped(1, 300, 1, Ping(3))).unwrap();
        eps[0].send(stamped(0, 100, 1, Ping(0))).unwrap();
        eps[1].send(stamped(1, 100, 2, Ping(1))).unwrap();
        eps[0].send(stamped(0, 250, 2, Ping(2))).unwrap();
        let mut out = Vec::new();
        assert_eq!(eps[2].recv_upto_batch(SimTime(250), &mut out), 3);
        let got: Vec<u32> = out.iter().map(|e| e.payload.0).collect();
        assert_eq!(got, vec![0, 1, 2]);
        out.clear();
        assert_eq!(eps[2].recv_upto_batch(SimTime(250), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(eps[2].recv_upto(SimTime(300)).unwrap().payload, Ping(3));
    }

    // ---- watermark-core invariants (satellite coverage) -------------

    /// Brute-force recomputation of what the min-tree leaves must hold,
    /// straight from the definition in the module docs.
    fn assert_wm_matches_rescan(eps: &[Option<Endpoint<Ping>>]) {
        let fabric = match eps.iter().flatten().next() {
            Some(ep) => &ep.fabric,
            None => return,
        };
        let n = fabric.shards.len();
        // Lock order: shards strictly before wm (never hold two shards —
        // this single-threaded checker takes them one at a time).
        let heads: Vec<SimTime> = (0..n)
            .map(|i| fabric.shard(i).lock().unwrap().head_at())
            .collect();
        let wm = fabric.wm.lock().unwrap();
        let mut expect = Vec::with_capacity(n);
        for (i, &head) in heads.iter().enumerate() {
            assert_eq!(
                wm.heads[i], head,
                "cached head of node {i} diverged from its heap"
            );
            let leaf = if wm.live[i] == Liveness::Live {
                wm.floors[i].as_time().min(head).0
            } else {
                u64::MAX
            };
            assert_eq!(wm.tree.leaf(i), leaf, "stale leaf for node {i}");
            expect.push(leaf);
        }
        let brute_min = expect.iter().copied().min().unwrap_or(u64::MAX);
        assert_eq!(wm.tree.min(), brute_min, "incremental global min drifted");
        for j in 0..n {
            let brute = expect
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, &v)| v)
                .min()
                .unwrap_or(u64::MAX);
            assert_eq!(
                wm.tree.min_excluding(j),
                brute,
                "min_excluding({j}) drifted"
            );
        }
        assert_eq!(
            wm.live_count,
            wm.live.iter().filter(|&&l| l == Liveness::Live).count(),
            "live_count drifted"
        );
    }

    /// Satellite property: under random send / receive / retire / crash
    /// interleavings, the incrementally maintained global minimum (and
    /// every min-excluding-one read) always equals a from-scratch O(N)
    /// recomputation.
    #[test]
    fn incremental_min_matches_rescan_under_random_ops() {
        minicheck::check("wm_incremental_min", 64, |rng| {
            let n = rng.usize_in(2, 9);
            let lookahead = SimDuration::from_nanos(rng.u64_in(1, 1_000));
            let mut eps: Vec<Option<Endpoint<Ping>>> =
                make_endpoints_with_lookahead::<Ping>(n, lookahead)
                    .into_iter()
                    .map(Some)
                    .collect();
            let mut seq = vec![vec![0u64; n]; n];
            for _ in 0..48 {
                let src = rng.usize_in(0, n - 1);
                let dst = rng.usize_in(0, n - 1);
                match rng.u64_in(0, 9) {
                    // Weighted toward sends so inboxes actually fill.
                    0..=4 => {
                        if let Some(ep) = &eps[src] {
                            seq[src][dst] += 1;
                            let at = rng.u64_in(1, 1 << 20);
                            let _ = ep.send(Envelope {
                                src,
                                dst,
                                sent_at: SimTime(at.saturating_sub(1)),
                                arrive_at: SimTime(at),
                                seq: seq[src][dst],
                                payload: Ping(at as u32),
                            });
                        }
                    }
                    5..=7 => {
                        if let Some(ep) = &eps[dst] {
                            let _ = ep.try_recv();
                        }
                    }
                    8 => {
                        // Retire (clean stop) — keep at least one node.
                        if eps.iter().flatten().count() > 1 {
                            drop(eps[dst].take());
                        }
                    }
                    _ => {
                        // Crash: drop the endpoint mid-unwind, the way
                        // a panicking node retires.
                        if eps.iter().flatten().count() > 1 {
                            if let Some(ep) = eps[dst].take() {
                                let hook = std::panic::take_hook();
                                std::panic::set_hook(Box::new(|_| {}));
                                let r = std::panic::catch_unwind(move || {
                                    let _hold = ep;
                                    panic!("crash");
                                });
                                std::panic::set_hook(hook);
                                assert!(r.is_err());
                            }
                        }
                    }
                }
                assert_wm_matches_rescan(&eps);
            }
        });
    }

    /// Satellite unit test: a floor move produces wakeups *only* for
    /// parked nodes whose head candidate now clears (conservatively) —
    /// not a cluster-wide broadcast.
    #[test]
    fn floor_move_wakes_only_clearable_parks() {
        let lookahead = SimDuration::from_nanos(10);
        let eps = make_endpoints_with_lookahead::<Ping>(4, lookahead);
        let fabric = &eps[0].fabric;
        let mut wm = fabric.wm.lock().unwrap();
        // Node 1 parked on a near candidate, node 2 on a far one, node
        // 3 parked on an empty inbox (Arrival).
        wm.park(1, ParkWait::Bound(SimTime(25)), &fabric.cells);
        wm.park(2, ParkWait::Bound(SimTime(1_000)), &fabric.cells);
        wm.park(3, ParkWait::Arrival, &fabric.cells);
        // Node 0 raises its floor to 10: every peer bound becomes
        // min(local, M1+L) + L = min over {10,...} + 10 = 20 < 25 — no
        // one wakes yet.
        wm.floors[0] = Watermark::Promise(SimTime(10));
        for i in 1..4 {
            wm.floors[i] = Watermark::Idle;
        }
        for i in 0..4 {
            wm.refresh(i);
        }
        let mut due = Vec::new();
        wm.due_wakes(0, lookahead, &mut due);
        assert_eq!(due, Vec::<NodeId>::new(), "bound 20 must wake nobody");
        // Floor to 15: bound 25 reaches node 1's candidate exactly —
        // wake it (the exact source tie-break happens on re-check).
        // Node 2 (candidate 1000) and node 3 (Arrival) stay parked.
        wm.floors[0] = Watermark::Promise(SimTime(15));
        wm.refresh(0);
        due.clear();
        wm.due_wakes(0, lookahead, &mut due);
        assert_eq!(due, vec![1], "only the clearable park wakes");
        // A raise past everything still leaves Arrival parks alone:
        // floor movement cannot fill an empty inbox.
        wm.floors[0] = Watermark::Promise(SimTime(10_000));
        wm.refresh(0);
        due.clear();
        wm.due_wakes(0, lookahead, &mut due);
        assert_eq!(due, vec![1, 2], "arrival park must not wake on floors");
        // Drain the park registry so Drop's unpark_all bookkeeping
        // stays balanced.
        wm.unpark_all(&fabric.cells);
        drop(wm);
    }
}
