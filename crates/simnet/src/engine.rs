//! Protocol-agnostic coherence engine.
//!
//! Every software-DSM node — home-based or homeless, logging or not —
//! runs the same outer loop: drain the inbox and service peer requests
//! whenever the application blocks, reply relative to request arrival
//! (the "communication processor" of the paper's testbed), defer
//! traffic while replaying a log after a crash, and charge every clock
//! advance to an accounting category. [`CoherenceProtocol`] captures
//! that loop once; the protocol crates implement only message service
//! and state transitions.
//!
//! The engine also defines the structured run-telemetry stream: every
//! coherence-relevant action emits a [`TraceEvent`] (page fault, fetch,
//! diff flush, write notice, log append/flush, lock/barrier phase,
//! crash/recovery step), and the per-node accounting rolls up into a
//! [`PhaseBreakdown`] whose components sum exactly to the node's finish
//! time.

use crate::node::NodeCtx;
use crate::router::{Envelope, NodeId, WireSized};
use crate::stats::NodeStats;
use crate::time::{SimDuration, SimTime};

/// One structured telemetry record: something coherence-relevant
/// happened on `node` at virtual time `at`.
///
/// Events are stamped with the node's own clock at emission, so the
/// per-node stream is nondecreasing in `at` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at the emitting node.
    pub at: SimTime,
    /// The emitting node.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The coherence object a logged record belongs to: what a
/// [`TraceKind::LogAppend`] is *about*. The blame engine keys its
/// per-object log-byte attribution on this tag; `Meta` marks protocol
/// bookkeeping that belongs to no single page, lock, or barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogObj {
    /// The record carries (part of) one page's data or diff.
    Page {
        /// Page id.
        page: u32,
    },
    /// The record describes a lock-acquire synchronization episode.
    Lock {
        /// Lock id.
        lock: u32,
    },
    /// The record describes a barrier synchronization episode.
    Barrier {
        /// Barrier episode.
        epoch: u32,
    },
    /// Protocol bookkeeping attributable to no single object
    /// (framing overhead assigned to whole-message records, etc.).
    Meta,
}

/// The kind of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A read page-protection fault was taken.
    ReadFault {
        /// Faulting page.
        page: u32,
    },
    /// A write page-protection fault was taken.
    WriteFault {
        /// Faulting page.
        page: u32,
    },
    /// A full page copy was fetched from another node.
    PageFetch {
        /// Fetched page.
        page: u32,
        /// Node the copy came from (home, or owner of the base copy).
        from: NodeId,
        /// Virtual nanoseconds the faulting node stalled, request to
        /// installed copy (the blame engine's fetch wait-span).
        wait_ns: u64,
    },
    /// Diffs for one closed interval were flushed to a remote node.
    DiffFlush {
        /// Destination (home in HLRC, requester in homeless LRC).
        to: NodeId,
        /// Encoded diff payload bytes.
        bytes: u64,
    },
    /// Write notices from a remote interval were applied locally.
    NoticesApplied {
        /// Number of notices applied.
        count: u32,
    },
    /// A record was appended to the volatile (in-memory) log.
    LogAppend {
        /// Encoded record bytes.
        bytes: u64,
        /// The coherence object the record is about (multi-object
        /// records emit one `LogAppend` per object, bytes split by
        /// encoded size, so per-object attribution stays exact).
        obj: LogObj,
    },
    /// The volatile log was flushed to stable storage.
    LogFlush {
        /// Bytes written.
        bytes: u64,
        /// True if the write was overlapped with communication (its
        /// latency charged only where it exceeded the wait it hid
        /// behind).
        overlapped: bool,
    },
    /// A checkpoint was written to stable storage.
    Checkpoint {
        /// Bytes written.
        bytes: u64,
    },
    /// A lock was acquired (notices from the grant already applied).
    LockAcquire {
        /// Lock id.
        lock: u32,
        /// Virtual nanoseconds from lock request to applied grant (the
        /// blame engine's lock wait-span).
        wait_ns: u64,
    },
    /// A lock was released.
    LockRelease {
        /// Lock id.
        lock: u32,
    },
    /// The lock manager granted `lock` to `to`. Emitted manager-side so
    /// the blame engine knows *who to blame* for the grantee's wait:
    /// `holder` is the previous grantee (the node whose release this
    /// grant waited on); `holder == to` means the grant was uncontended.
    LockGranted {
        /// Lock id.
        lock: u32,
        /// The node the grant went to.
        to: NodeId,
        /// The previous grantee (equals `to` when uncontended).
        holder: NodeId,
    },
    /// The node arrived at a barrier (interval closed, diffs flushed).
    BarrierEnter {
        /// Barrier episode.
        epoch: u32,
    },
    /// The node was released from a barrier.
    BarrierExit {
        /// Barrier episode.
        epoch: u32,
    },
    /// The barrier manager released episode `epoch`. Emitted
    /// manager-side once per episode so the blame engine can name the
    /// straggler: every other node's barrier wait is attributable to
    /// the last arrival.
    BarrierReleased {
        /// Barrier episode.
        epoch: u32,
        /// The last node to arrive (deterministic: arrivals are
        /// consumed in virtual-time order).
        straggler: NodeId,
        /// Virtual nanoseconds between the first and last arrival.
        spread_ns: u64,
    },
    /// An interval close stalled waiting for diff-flush acks. Emitted
    /// by the writer after the last ack lands; `home` is the node whose
    /// ack arrived last (the slowest home — the blame target).
    FlushAckWait {
        /// The home whose ack completed the wait.
        home: NodeId,
        /// Virtual nanoseconds from first flush sent to last ack.
        wait_ns: u64,
    },
    /// The node crashed (volatile state lost).
    Crash,
    /// Log replay began.
    RecoveryBegin,
    /// One logged synchronization episode was replayed.
    RecoveryReplay {
        /// Write notices reapplied by this episode.
        notices: u32,
    },
    /// Log replay finished; the node resumed live service.
    RecoveryEnd,
    /// A retransmission timeout expired while sending to `to` (the
    /// reliable layer's timer fired at least once for one send).
    Timeout {
        /// Destination of the delayed transmission.
        to: NodeId,
    },
    /// The reliable layer retransmitted a dropped message.
    Retransmit {
        /// Destination of the retransmitted message.
        to: NodeId,
        /// Number of dropped attempts before delivery succeeded.
        attempts: u32,
    },
    /// A duplicate delivery was suppressed by sequence number.
    DupSuppressed {
        /// Sender whose duplicate was discarded.
        from: NodeId,
    },
    /// This node's log device failed permanently; logging stopped and
    /// its fault tolerance degraded to re-execution.
    LogDeviceFailed,
    /// Recovery ran without a usable log (device failed before the
    /// crash): only the persisted log prefix was replayed.
    RecoveryDegraded,
    /// A protocol message left this node. Together with the matching
    /// [`MsgRecv`](TraceKind::MsgRecv) at the destination (same link,
    /// same per-link sequence number) this forms one causal edge of the
    /// run's message graph — the basis for exported trace flows.
    MsgSend {
        /// Destination node.
        to: NodeId,
        /// Per-link sequence number stamped by the reliable layer.
        seq: u64,
        /// Encoded wire bytes of the payload.
        bytes: u32,
        /// Stable payload-kind label (see [`WireSized::msg_label`]).
        msg: &'static str,
    },
    /// A protocol message was accepted at this node (duplicates are
    /// suppressed before this event fires). Pairs with the `MsgSend` of
    /// the same `(sender, receiver, seq)` triple.
    MsgRecv {
        /// Originating node.
        from: NodeId,
        /// Per-link sequence number from the sender's reliable layer.
        seq: u64,
        /// Stable payload-kind label (see [`WireSized::msg_label`]).
        msg: &'static str,
    },
    /// The log device hit its capacity bound: the flush was refused and
    /// logging is paused until a checkpoint truncates the log.
    LogDeviceFull,
    /// A recovery scan found a torn tail (mid-flush crash): the stream
    /// was cut to its longest verified prefix.
    TornTailDetected {
        /// The damaged stable stream.
        stream: &'static str,
        /// Records in the verified prefix that was salvaged.
        salvaged: u32,
        /// Records discarded (the torn frame and everything after it).
        discarded: u32,
    },
    /// A recovery scan found a frame whose CRC (or magic) check failed:
    /// latent bit rot or a garbled write.
    CrcMismatch {
        /// The damaged stable stream.
        stream: &'static str,
    },
    /// A stable stream was cut down to a verified prefix (salvage
    /// repair) — distinct from the free post-checkpoint truncation.
    LogTruncated {
        /// The repaired stream.
        stream: &'static str,
        /// Records surviving the cut.
        records: u32,
    },
    /// A coordinated checkpoint completed, with its compaction effect.
    CheckpointTaken {
        /// Page images written by this checkpoint.
        pages: u32,
        /// Superseded page images dropped from `CKPT_PAGES`.
        compacted: u32,
    },
    /// A recovering home whose log was damaged refetched the updates
    /// its pages were missing from the surviving writers' stable logs.
    HomeRepair {
        /// Missing write notices reconciled against the release history.
        notices: u32,
        /// Logged diffs actually fetched and re-applied.
        diffs: u32,
    },
    /// A recovering node whose log lost its tail synthesized the missing
    /// barrier `Sync` records from the barrier manager's release history
    /// so replay extends to the true pre-crash horizon.
    SyncSynthesized {
        /// Barrier records appended to the replay sequence.
        records: u32,
    },
    /// A demand fault's batched request carried history-predicted extra
    /// pages (emitted by the faulting node, once per batch).
    PrefetchIssued {
        /// The demand-faulting page the batch piggybacked on.
        page: u32,
        /// Predicted extra pages requested alongside it.
        count: u32,
    },
    /// A predicted copy was touched while still valid: the fetch round
    /// trip this access would have stalled on was hidden entirely.
    PrefetchHit {
        /// The page whose fault was avoided.
        page: u32,
    },
    /// A predicted copy was invalidated by a write notice before its
    /// first use: the prediction bought nothing but bytes.
    PrefetchWasted {
        /// The invalidated predicted page.
        page: u32,
    },
    /// A barrier-committed home migration was executed (emitted by the
    /// old home as it hands the page over).
    HomeMigrated {
        /// The migrated page.
        page: u32,
        /// The old home (the emitting node).
        from: NodeId,
        /// The new home.
        to: NodeId,
    },
}

impl TraceKind {
    /// Stable machine-readable label for this event kind (used by the
    /// JSON telemetry emitters).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::ReadFault { .. } => "read_fault",
            TraceKind::WriteFault { .. } => "write_fault",
            TraceKind::PageFetch { .. } => "page_fetch",
            TraceKind::DiffFlush { .. } => "diff_flush",
            TraceKind::NoticesApplied { .. } => "notices_applied",
            TraceKind::LogAppend { .. } => "log_append",
            TraceKind::LogFlush { .. } => "log_flush",
            TraceKind::Checkpoint { .. } => "checkpoint",
            TraceKind::LockAcquire { .. } => "lock_acquire",
            TraceKind::LockRelease { .. } => "lock_release",
            TraceKind::LockGranted { .. } => "lock_granted",
            TraceKind::BarrierEnter { .. } => "barrier_enter",
            TraceKind::BarrierExit { .. } => "barrier_exit",
            TraceKind::BarrierReleased { .. } => "barrier_released",
            TraceKind::FlushAckWait { .. } => "flush_ack_wait",
            TraceKind::Crash => "crash",
            TraceKind::RecoveryBegin => "recovery_begin",
            TraceKind::RecoveryReplay { .. } => "recovery_replay",
            TraceKind::RecoveryEnd => "recovery_end",
            TraceKind::Timeout { .. } => "timeout",
            TraceKind::Retransmit { .. } => "retransmit",
            TraceKind::DupSuppressed { .. } => "dup_suppressed",
            TraceKind::LogDeviceFailed => "log_device_failed",
            TraceKind::RecoveryDegraded => "recovery_degraded",
            TraceKind::MsgSend { .. } => "msg_send",
            TraceKind::MsgRecv { .. } => "msg_recv",
            TraceKind::LogDeviceFull => "log_device_full",
            TraceKind::TornTailDetected { .. } => "torn_tail_detected",
            TraceKind::CrcMismatch { .. } => "crc_mismatch",
            TraceKind::LogTruncated { .. } => "log_truncated",
            TraceKind::CheckpointTaken { .. } => "checkpoint_taken",
            TraceKind::HomeRepair { .. } => "home_repair",
            TraceKind::SyncSynthesized { .. } => "sync_synthesized",
            TraceKind::PrefetchIssued { .. } => "prefetch_issued",
            TraceKind::PrefetchHit { .. } => "prefetch_hit",
            TraceKind::PrefetchWasted { .. } => "prefetch_wasted",
            TraceKind::HomeMigrated { .. } => "home_migrated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One sample of every `TraceKind` variant. `ordinal` below is a
    /// wildcard-free match, so adding a variant without extending this
    /// list fails to compile rather than silently escaping the label
    /// checks (the report keys on these strings).
    fn every_kind() -> Vec<TraceKind> {
        vec![
            TraceKind::ReadFault { page: 1 },
            TraceKind::WriteFault { page: 1 },
            TraceKind::PageFetch {
                page: 1,
                from: 0,
                wait_ns: 1,
            },
            TraceKind::DiffFlush { to: 0, bytes: 8 },
            TraceKind::NoticesApplied { count: 1 },
            TraceKind::LogAppend {
                bytes: 8,
                obj: LogObj::Page { page: 1 },
            },
            TraceKind::LogFlush {
                bytes: 8,
                overlapped: false,
            },
            TraceKind::Checkpoint { bytes: 8 },
            TraceKind::LockAcquire {
                lock: 1,
                wait_ns: 1,
            },
            TraceKind::LockRelease { lock: 1 },
            TraceKind::LockGranted {
                lock: 1,
                to: 1,
                holder: 0,
            },
            TraceKind::BarrierEnter { epoch: 1 },
            TraceKind::BarrierExit { epoch: 1 },
            TraceKind::BarrierReleased {
                epoch: 1,
                straggler: 0,
                spread_ns: 1,
            },
            TraceKind::FlushAckWait {
                home: 0,
                wait_ns: 1,
            },
            TraceKind::Crash,
            TraceKind::RecoveryBegin,
            TraceKind::RecoveryReplay { notices: 1 },
            TraceKind::RecoveryEnd,
            TraceKind::Timeout { to: 0 },
            TraceKind::Retransmit { to: 0, attempts: 1 },
            TraceKind::DupSuppressed { from: 0 },
            TraceKind::LogDeviceFailed,
            TraceKind::RecoveryDegraded,
            TraceKind::MsgSend {
                to: 0,
                seq: 1,
                bytes: 8,
                msg: "m",
            },
            TraceKind::MsgRecv {
                from: 0,
                seq: 1,
                msg: "m",
            },
            TraceKind::LogDeviceFull,
            TraceKind::TornTailDetected {
                stream: "s",
                salvaged: 1,
                discarded: 1,
            },
            TraceKind::CrcMismatch { stream: "s" },
            TraceKind::LogTruncated {
                stream: "s",
                records: 1,
            },
            TraceKind::CheckpointTaken {
                pages: 1,
                compacted: 1,
            },
            TraceKind::HomeRepair {
                notices: 1,
                diffs: 1,
            },
            TraceKind::SyncSynthesized { records: 1 },
            TraceKind::PrefetchIssued { page: 1, count: 1 },
            TraceKind::PrefetchHit { page: 1 },
            TraceKind::PrefetchWasted { page: 1 },
            TraceKind::HomeMigrated {
                page: 1,
                from: 0,
                to: 1,
            },
        ]
    }

    fn ordinal(k: &TraceKind) -> usize {
        match k {
            TraceKind::ReadFault { .. } => 0,
            TraceKind::WriteFault { .. } => 1,
            TraceKind::PageFetch { .. } => 2,
            TraceKind::DiffFlush { .. } => 3,
            TraceKind::NoticesApplied { .. } => 4,
            TraceKind::LogAppend { .. } => 5,
            TraceKind::LogFlush { .. } => 6,
            TraceKind::Checkpoint { .. } => 7,
            TraceKind::LockAcquire { .. } => 8,
            TraceKind::LockRelease { .. } => 9,
            TraceKind::LockGranted { .. } => 10,
            TraceKind::BarrierEnter { .. } => 11,
            TraceKind::BarrierExit { .. } => 12,
            TraceKind::BarrierReleased { .. } => 13,
            TraceKind::FlushAckWait { .. } => 14,
            TraceKind::Crash => 15,
            TraceKind::RecoveryBegin => 16,
            TraceKind::RecoveryReplay { .. } => 17,
            TraceKind::RecoveryEnd => 18,
            TraceKind::Timeout { .. } => 19,
            TraceKind::Retransmit { .. } => 20,
            TraceKind::DupSuppressed { .. } => 21,
            TraceKind::LogDeviceFailed => 22,
            TraceKind::RecoveryDegraded => 23,
            TraceKind::MsgSend { .. } => 24,
            TraceKind::MsgRecv { .. } => 25,
            TraceKind::LogDeviceFull => 26,
            TraceKind::TornTailDetected { .. } => 27,
            TraceKind::CrcMismatch { .. } => 28,
            TraceKind::LogTruncated { .. } => 29,
            TraceKind::CheckpointTaken { .. } => 30,
            TraceKind::HomeRepair { .. } => 31,
            TraceKind::SyncSynthesized { .. } => 32,
            TraceKind::PrefetchIssued { .. } => 33,
            TraceKind::PrefetchHit { .. } => 34,
            TraceKind::PrefetchWasted { .. } => 35,
            TraceKind::HomeMigrated { .. } => 36,
        }
    }

    #[test]
    fn every_variant_has_a_unique_snake_case_label() {
        let kinds = every_kind();
        // The sample list covers each variant exactly once.
        let mut seen = vec![false; kinds.len()];
        for k in &kinds {
            let i = ordinal(k);
            assert!(!seen[i], "variant {i} sampled twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "some variant never sampled");
        // Labels are non-empty, snake_case, and pairwise distinct.
        let mut labels: Vec<&'static str> = kinds.iter().map(|k| k.label()).collect();
        for l in &labels {
            assert!(!l.is_empty());
            assert!(
                l.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "label {l:?} is not snake_case"
            );
            assert!(!l.starts_with('_') && !l.ends_with('_'), "label {l:?}");
        }
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate trace-kind labels");
    }
}

/// Where one node's virtual time went, as a partition of its finish
/// time: `compute + wait + disk + hidden` equals the node's final clock
/// exactly (every clock advance in the engine is charged to exactly one
/// category).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Application arithmetic plus protocol CPU overhead.
    pub compute: SimDuration,
    /// Blocked on remote replies or synchronization, not counting the
    /// portion that hid overlapped disk writes.
    pub wait: SimDuration,
    /// Stalled on stable-storage accesses (synchronous log/checkpoint
    /// writes and backpressure from a busy disk).
    pub disk: SimDuration,
    /// Disk work hidden behind communication wait (the CCL overlap win:
    /// this portion of the wait was doing useful logging).
    pub hidden: SimDuration,
}

impl PhaseBreakdown {
    /// Partition `stats`' time counters into phases.
    ///
    /// Overlapped disk time is carved out of the wait that hid it, so
    /// the four components still sum to the node's finish time.
    ///
    /// `stats` is fully destructured (no `..` rest pattern): adding a
    /// `NodeStats` field without deciding whether it belongs in the
    /// phase partition is a compile error here, which is what keeps the
    /// `compute + wait + disk + hidden == finish` invariant honest.
    pub fn from_stats(stats: &NodeStats) -> PhaseBreakdown {
        let NodeStats {
            compute_time,
            wait_time,
            disk_time,
            disk_time_overlapped,
            // Event counters: no time dimension, nothing to partition.
            msgs_sent: _,
            msgs_recv: _,
            bytes_sent: _,
            bytes_recv: _,
            read_faults: _,
            write_faults: _,
            page_fetches: _,
            prefetch_issued: _,
            prefetch_hits: _,
            prefetch_wasted: _,
            home_migrations: _,
            msgs_by_kind: _,
            bytes_by_kind: _,
            diffs_created: _,
            diff_bytes: _,
            twins_created: _,
            log_flushes: _,
            log_bytes: _,
            lock_acquires: _,
            barriers: _,
            timeouts: _,
            retransmits: _,
            dups_suppressed: _,
            sends_to_stopped: _,
            sched_stalls: _,
        } = *stats;
        let hidden = disk_time_overlapped.min(wait_time);
        PhaseBreakdown {
            compute: compute_time,
            wait: wait_time.saturating_sub(hidden),
            disk: disk_time,
            hidden,
        }
    }

    /// Sum of all components (equals the node's finish time).
    pub fn total(&self) -> SimDuration {
        self.compute + self.wait + self.disk + self.hidden
    }
}

/// A coherence protocol runnable by the engine.
///
/// Implementors provide protocol state behind [`ctx`](Self::ctx), the
/// per-message service routine, and the deferral predicate; the engine
/// provides the message pump, the reply-while-blocked receive loop, the
/// service-while-gathering loop used by synchronization managers, and
/// the crash/resume lifecycle.
pub trait CoherenceProtocol<M: WireSized> {
    /// The node's machine context (clock, endpoint, disk, stats, trace).
    fn ctx(&mut self) -> &mut NodeCtx<M>;

    /// Service one asynchronous protocol message. `deferred` marks
    /// messages replayed after recovery, whose service time is "now"
    /// rather than their (long past) arrival time; implementations
    /// should base reply timing on
    /// [`NodeCtx::async_service_base`].
    fn service(&mut self, env: Envelope<M>, deferred: bool);

    /// True while incoming traffic must be deferred instead of serviced
    /// (log replay after a crash: serving a peer from a half-restored
    /// memory image would hand out corrupt data).
    fn deferring(&self) -> bool {
        false
    }

    /// Per-message deferral predicate. Defaults to the blanket
    /// [`deferring`](Self::deferring) flag; protocols that can serve a
    /// subset of traffic from stable state even mid-replay (recovery
    /// page and logged-diff requests, which must keep flowing when two
    /// nodes recover concurrently) override this to let those messages
    /// through.
    fn must_defer(&self, _payload: &M) -> bool {
        self.deferring()
    }

    /// Drain every message that has already arrived in virtual time,
    /// servicing (or deferring) each. Called at fault/synchronization
    /// points and whenever the node blocks. Bounded by the node's own
    /// clock: the conservative scheduler only releases envelopes the
    /// node could observe "now", so pumping never waits on peers that
    /// are merely behind. [`NodeCtx::recv_arrived`] pulls whole batches
    /// of admissible envelopes out of the sharded fabric under one lock
    /// acquisition and replays them from a local buffer, so a busy
    /// service pump costs one fabric visit per burst, not per message.
    fn pump(&mut self) {
        while let Some(env) = self.ctx().recv_arrived() {
            if self.must_defer(&env.payload) {
                self.ctx().defer(env);
            } else {
                self.service(env, false);
            }
        }
    }

    /// Block until a message matching `pred` arrives (absorbing its
    /// arrival time as wait), servicing all other traffic
    /// asynchronously — or deferring it during recovery.
    fn wait_for<F: Fn(&M) -> bool>(&mut self, pred: F) -> Envelope<M> {
        loop {
            let env = self.ctx().recv().expect("cluster channel closed");
            if pred(&env.payload) {
                self.ctx().absorb(&env);
                return env;
            }
            if self.must_defer(&env.payload) {
                self.ctx().defer(env);
            } else {
                self.service(env, false);
            }
        }
    }

    /// Service messages until `more` returns false. Synchronization
    /// managers use this to gather arrivals: each incoming message is
    /// serviced normally (updating manager state), and the loop exits
    /// once the gather condition is met.
    fn service_while<F: Fn(&Self) -> bool>(&mut self, more: F) {
        while more(self) {
            let env = self.ctx().recv().expect("cluster channel closed");
            self.service(env, false);
        }
    }

    /// Log replay has finished: stamp the recovery end time, emit the
    /// telemetry event, and service everything deferred while replaying
    /// (in arrival order, timed from "now").
    fn resume_live(&mut self) {
        let ctx = self.ctx();
        if ctx.recovery_exit.is_none() {
            ctx.recovery_exit = Some(ctx.now());
            ctx.trace(TraceKind::RecoveryEnd);
        }
        for env in self.ctx().take_deferred() {
            self.service(env, true);
        }
    }
}
