//! Per-node runtime context and cluster launcher.
//!
//! A [`NodeCtx`] bundles everything a DSM process owns on its machine:
//! its virtual clock, its network endpoint, its local disk, its hardware
//! cost model, and its statistics. One OS thread runs each node;
//! [`run_cluster`] spawns them and joins their results.

use std::collections::VecDeque;
use std::thread;

use crate::disk::SimDisk;
use crate::engine::{TraceEvent, TraceKind};
use crate::error::{SimError, SimResult};
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::NodeMetrics;
use crate::models::CostModel;
use crate::router::{make_endpoints_with_lookahead, Endpoint, Envelope, NodeId, WireSized};
use crate::stats::NodeStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceSink;

/// The local machine of one DSM process.
pub struct NodeCtx<M> {
    id: NodeId,
    n_nodes: usize,
    clock: SimTime,
    /// Hardware cost model (shared by all nodes in a homogeneous cluster).
    pub cost: CostModel,
    ep: Endpoint<M>,
    /// This node's local stable storage.
    pub disk: SimDisk,
    /// Execution counters.
    pub stats: NodeStats,
    /// Hot-path distribution metrics (log-binned histograms).
    pub metrics: NodeMetrics,
    /// Messages deferred while replaying from the log after a crash.
    deferred: Vec<Envelope<M>>,
    /// Already-admitted deliveries batch-drained from the fabric but
    /// not yet consumed by the protocol. Strictly earlier-ranked than
    /// anything still in (or yet to reach) the endpoint's inbox, so
    /// every receive path must empty this before touching the fabric.
    /// Lives in the transport layer: it survives a simulated crash of
    /// the DSM process above it, like [`FaultState`].
    arrived: VecDeque<Envelope<M>>,
    /// Scratch buffer handed to [`Endpoint::recv_upto_batch`] (reused
    /// to keep the pump allocation-free).
    batch: Vec<Envelope<M>>,
    /// Structured telemetry stream, in emission (= virtual time) order.
    trace: TraceSink,
    /// Virtual time of the simulated crash, if one was injected.
    pub crashed_at: Option<SimTime>,
    /// Virtual time at which log replay finished and the node resumed
    /// live operation (recovery time = `recovery_exit - crashed_at`).
    pub recovery_exit: Option<SimTime>,
    /// Fault-injection state: the plan plus per-link PRNG streams and
    /// sequence counters. Lives in the transport layer, so it survives
    /// a simulated crash of the DSM process above it.
    faults: FaultState,
    /// Rank of the last delivery, as a soundness witness for the
    /// conservative scheduler: per-receiver delivery order must be
    /// nondecreasing in `(arrive_at, src, seq)` (checked in debug
    /// builds).
    last_rank: (SimTime, NodeId, u64),
}

impl<M: WireSized> NodeCtx<M> {
    fn new(ep: Endpoint<M>, cost: CostModel) -> NodeCtx<M> {
        NodeCtx {
            id: ep.id(),
            n_nodes: ep.n_nodes(),
            clock: SimTime::ZERO,
            cost,
            disk: SimDisk::new(cost.disk),
            faults: FaultState::new(ep.id(), ep.n_nodes(), FaultPlan::none()),
            ep,
            stats: NodeStats::default(),
            metrics: NodeMetrics::default(),
            deferred: Vec::new(),
            arrived: VecDeque::new(),
            batch: Vec::new(),
            trace: TraceSink::default(),
            crashed_at: None,
            recovery_exit: None,
            last_rank: (SimTime::ZERO, 0, 0),
        }
    }

    /// Arm a network-fault schedule. Call before any traffic flows;
    /// the per-link PRNG streams restart from the plan's seed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(self.id, self.n_nodes, plan);
    }

    /// The armed network-fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// This node's id in the cluster.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the cluster.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Current virtual time at this node.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advance the clock by protocol CPU overhead (fault traps, handler
    /// entry, recovery bookkeeping), accounted as compute time.
    pub fn charge_overhead(&mut self, d: SimDuration) {
        self.stats.compute_time += d;
        self.clock += d;
    }

    /// Advance the clock by a synchronous stable-storage stall (log or
    /// checkpoint writes, and backpressure from a busy disk), accounted
    /// as disk time.
    pub fn charge_disk(&mut self, d: SimDuration) {
        self.stats.disk_time += d;
        self.clock += d;
    }

    /// Advance the clock by a blocked interval of known length
    /// (e.g. the crash-detection timeout), accounted as wait time.
    pub fn charge_wait(&mut self, d: SimDuration) {
        self.stats.wait_time += d;
        self.clock += d;
    }

    /// Move the clock forward to `t` (no-op if already past it) and
    /// account the jump as wait time.
    pub fn wait_until(&mut self, t: SimTime) {
        if t > self.clock {
            self.stats.wait_time += t - self.clock;
            self.clock = t;
        }
    }

    /// Charge application arithmetic.
    pub fn charge_flops(&mut self, n: u64) {
        let d = self.cost.cpu.flops(n);
        self.stats.compute_time += d;
        self.clock += d;
    }

    /// Charge a memory copy/compare of `bytes`.
    pub fn charge_copy(&mut self, bytes: usize) {
        let d = self.cost.cpu.copy(bytes);
        self.stats.compute_time += d;
        self.clock += d;
    }

    /// Block until the next envelope in virtual-time order is safe to
    /// deliver. Does not touch the clock; the caller decides whether
    /// the arrival is synchronous (absorb its arrival time) or served
    /// asynchronously. Duplicate deliveries are suppressed here by
    /// sequence number, invisibly to the protocol.
    pub fn recv(&mut self) -> SimResult<Envelope<M>> {
        loop {
            // Deliveries batched by `recv_arrived` rank before anything
            // the fabric can still produce: a blocking receive nested
            // inside batch service must see them first.
            let env = match self.arrived.pop_front() {
                Some(env) => env,
                None => {
                    let env = self.ep.recv();
                    self.drain_sched_telemetry();
                    env?
                }
            };
            if self.faults.is_duplicate(env.src, env.seq) {
                self.stats.dups_suppressed += 1;
                self.trace(TraceKind::DupSuppressed { from: env.src });
                continue;
            }
            self.accept(&env);
            return Ok(env);
        }
    }

    /// Deliver the next envelope that has already arrived by this
    /// node's clock, if any (used to service requests at sync points
    /// mid-run). Blocks only until the conservative scheduler can
    /// answer definitively; the answer itself is a pure function of
    /// virtual time. Suppresses duplicates like [`NodeCtx::recv`].
    pub fn recv_arrived(&mut self) -> Option<Envelope<M>> {
        loop {
            let env = match self.arrived.pop_front() {
                Some(env) => env,
                None => {
                    // Batch-drain everything already admissible under
                    // one fabric lock hold; later calls consume the
                    // buffer without touching the fabric at all.
                    let mut batch = std::mem::take(&mut self.batch);
                    let n = self.ep.recv_upto_batch(self.clock, &mut batch);
                    self.drain_sched_telemetry();
                    self.arrived.extend(batch.drain(..));
                    self.batch = batch;
                    if n == 0 {
                        return None;
                    }
                    self.arrived.pop_front().expect("nonempty batch")
                }
            };
            if self.faults.is_duplicate(env.src, env.seq) {
                self.stats.dups_suppressed += 1;
                self.trace(TraceKind::DupSuppressed { from: env.src });
                continue;
            }
            self.accept(&env);
            return Some(env);
        }
    }

    /// Fold the endpoint's physical-layer scheduler telemetry (stall
    /// count, park durations) into this node's stats after a fabric
    /// call. A call that never parked has nothing to drain.
    fn drain_sched_telemetry(&mut self) {
        let stalls = self.ep.take_stalls();
        if stalls > 0 {
            self.stats.sched_stalls += stalls;
            self.metrics.park_ns.merge(&self.ep.take_park_hist());
        }
    }

    /// Account an accepted (non-duplicate) delivery: traffic counters
    /// plus the `MsgRecv` half of the envelope's causal edge, keyed by
    /// the same `(src, dst, seq)` triple the sender stamped.
    fn accept(&mut self, env: &Envelope<M>) {
        let rank = (env.arrive_at, env.src, env.seq);
        debug_assert!(
            rank >= self.last_rank,
            "delivery order regressed at node {}: {:?} after {:?}",
            self.id,
            rank,
            self.last_rank
        );
        self.last_rank = rank;
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.payload.wire_size() as u64;
        self.trace(TraceKind::MsgRecv {
            from: env.src,
            seq: env.seq,
            msg: env.payload.msg_label(),
        });
    }

    /// Absorb a synchronously awaited message: the node was blocked, so
    /// its clock jumps to the arrival time (counted as wait).
    pub fn absorb(&mut self, env: &Envelope<M>) {
        self.wait_until(env.arrive_at);
    }

    /// Time at which an asynchronous handler finishes servicing `env`
    /// (arrival + fixed handler entry cost), before any per-byte work.
    pub fn service_time(&self, env: &Envelope<M>) -> SimTime {
        env.arrive_at + self.cost.cpu.message_handler
    }

    /// Logical start time for asynchronously servicing `env`: its
    /// arrival time, or "now" for a message replayed from the deferred
    /// queue after recovery (its arrival is long past).
    pub fn async_service_base(&self, env: &Envelope<M>, deferred: bool) -> SimTime {
        if deferred {
            env.arrive_at.max(self.clock)
        } else {
            env.arrive_at
        }
    }

    /// Queue `env` for service after recovery finishes.
    pub fn defer(&mut self, env: Envelope<M>) {
        self.deferred.push(env);
    }

    /// Take the messages deferred during recovery, in arrival order.
    pub fn take_deferred(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.deferred)
    }

    /// Block until a message matching `pred` arrives, deferring every
    /// other message. Used only during crash recovery, where all normal
    /// protocol service is postponed until replay finishes.
    pub fn wait_for_deferring<F: Fn(&M) -> bool>(&mut self, pred: F) -> Envelope<M> {
        loop {
            let env = self.recv().expect("cluster channel closed");
            if pred(&env.payload) {
                self.absorb(&env);
                return env;
            }
            self.deferred.push(env);
        }
    }

    /// Emit a telemetry event stamped with this node's current clock.
    /// Per-node streams are therefore nondecreasing in time.
    pub fn trace(&mut self, kind: TraceKind) {
        self.trace.push(TraceEvent {
            at: self.clock,
            node: self.id,
            kind,
        });
    }

    /// The telemetry emitted so far.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Take ownership of the telemetry stream (used when assembling the
    /// run output).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Events discarded after the trace sink reached its capacity
    /// (0 on every sized workload in the repo; nonzero means the export
    /// is a prefix and the run output says so).
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Bound the telemetry stream to at most `capacity` events
    /// (defaults to [`crate::DEFAULT_TRACE_CAPACITY`]).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Record a crash at the current virtual time. The telemetry
    /// survives (it models an external observer, not node memory).
    pub fn mark_crashed(&mut self) {
        self.crashed_at = Some(self.clock);
        self.trace(TraceKind::Crash);
    }
}

/// Send paths. `Clone` is needed only to materialize duplicate
/// deliveries under fault injection.
impl<M: WireSized + Clone> NodeCtx<M> {
    /// Send `payload` to `dst`, stamping departure now and arrival per
    /// the network model.
    pub fn send(&mut self, dst: NodeId, payload: M) -> SimResult<()> {
        let sent_at = self.clock;
        self.send_from(sent_at, dst, payload)
    }

    /// Send with an explicit logical departure time.
    ///
    /// Asynchronous protocol handlers (the "communication processor")
    /// reply relative to the *request's arrival*, not to wherever the
    /// host application happens to have advanced its own clock.
    ///
    /// The armed [`FaultPlan`] judges every cross-node transmission:
    /// simulated drops and partitions surface as retransmission delay
    /// (plus `Timeout`/`Retransmit` telemetry), duplicates as a second
    /// physical delivery with the same sequence number. Sends to a peer
    /// that already finished its program are counted and dropped, not
    /// errors — under failure injection such stragglers are expected.
    pub fn send_from(&mut self, sent_at: SimTime, dst: NodeId, payload: M) -> SimResult<()> {
        let size = payload.wire_size();
        // Traffic statistics (and hence the paper's tables) depend on
        // wire_size being exact: header plus encoded body, no estimate.
        #[cfg(debug_assertions)]
        if let Some(body) = payload.encoded_len() {
            debug_assert_eq!(
                size,
                payload.header_len() + body,
                "wire_size disagrees with encoded length"
            );
        }
        // Loopback messages (manager talking to itself) skip the wire:
        // a real implementation short-circuits these in memory.
        let (nominal, fate) = if dst == self.id {
            (sent_at + SimDuration::from_micros(1), Default::default())
        } else {
            let transfer = self.cost.net.transfer_time(size);
            (sent_at + transfer, self.faults.judge(self.id, dst, sent_at))
        };
        let arrive_at = nominal + fate.delay;
        let seq = self.faults.next_seq(dst);
        if fate.attempts > 0 {
            self.stats.timeouts += fate.attempts as u64;
            self.stats.retransmits += fate.attempts as u64;
            self.metrics
                .retransmit_backoff_ns
                .record(fate.delay.as_nanos());
            self.trace(TraceKind::Timeout { to: dst });
            self.trace(TraceKind::Retransmit {
                to: dst,
                attempts: fate.attempts,
            });
        }
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += size as u64;
        self.stats.count_kind(payload.kind_ordinal(), size as u64);
        self.trace(TraceKind::MsgSend {
            to: dst,
            seq,
            bytes: size as u32,
            msg: payload.msg_label(),
        });
        let duplicate = fate.duplicate.then(|| Envelope {
            src: self.id,
            dst,
            sent_at,
            // The duplicate trails the original by one more transfer.
            arrive_at: arrive_at + self.cost.net.transfer_time(size),
            seq,
            payload: payload.clone(),
        });
        let sent = self
            .ep
            .send(Envelope {
                src: self.id,
                dst,
                sent_at,
                arrive_at,
                seq,
                payload,
            })
            .and_then(|()| match duplicate {
                Some(d) => self.ep.send(d),
                None => Ok(()),
            });
        match sent {
            Err(SimError::PeerStopped(_)) => {
                self.stats.sends_to_stopped += 1;
                Ok(())
            }
            other => other,
        }
    }
}

/// Spawn `n` node threads, run `f` on each, and collect the results in
/// node order. Panics in a node propagate after all threads are joined.
pub fn run_cluster<M, R, F>(n: usize, cost: CostModel, f: F) -> Vec<R>
where
    M: WireSized + Send + 'static,
    R: Send,
    F: Fn(NodeCtx<M>) -> R + Send + Sync,
{
    let eps = make_endpoints_with_lookahead::<M>(n, cost.net.latency);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let ctx = NodeCtx::new(ep, cost);
                s.spawn(move || f(ctx))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Blob(usize);

    impl WireSized for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn clock_charges_accumulate() {
        let results = run_cluster::<Blob, _, _>(1, CostModel::default(), |mut ctx| {
            ctx.charge_flops(1000);
            ctx.charge_copy(4096);
            (ctx.now(), ctx.stats)
        });
        let (now, stats) = results[0];
        assert_eq!(now.as_nanos(), 45 * 1000 + 3 * 4096);
        assert_eq!(stats.compute_time.as_nanos(), now.as_nanos());
    }

    #[test]
    fn request_reply_advances_requester_clock() {
        // Node 0 asks node 1 for a 4 KB page; node 1 services it
        // asynchronously. Node 0's clock must land at
        // request transfer + handler + reply transfer.
        let results = run_cluster::<Blob, _, _>(2, CostModel::default(), |mut ctx| {
            if ctx.id() == 0 {
                ctx.send(1, Blob(64)).unwrap();
                let reply = ctx.recv().unwrap();
                ctx.absorb(&reply);
                ctx.now().as_nanos()
            } else {
                let req = ctx.recv().unwrap();
                let done = ctx.service_time(&req);
                ctx.send_from(done, req.src, Blob(4096)).unwrap();
                0
            }
        });
        let m = CostModel::default();
        let expect = (m.net.transfer_time(64) + m.cpu.message_handler + m.net.transfer_time(4096))
            .as_nanos();
        assert_eq!(results[0], expect);
    }

    #[test]
    fn wait_until_never_moves_backwards() {
        run_cluster::<Blob, _, _>(1, CostModel::default(), |mut ctx| {
            ctx.charge_overhead(SimDuration::from_millis(5));
            let before = ctx.now();
            ctx.wait_until(SimTime(1));
            assert_eq!(ctx.now(), before);
            ctx.wait_until(before + SimDuration::from_millis(1));
            assert_eq!(ctx.now(), before + SimDuration::from_millis(1));
            assert_eq!(ctx.stats.wait_time, SimDuration::from_millis(1));
        });
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let results = run_cluster::<Blob, _, _>(2, CostModel::default(), |mut ctx| {
            if ctx.id() == 0 {
                ctx.send(1, Blob(100)).unwrap();
                ctx.stats
            } else {
                ctx.recv().unwrap();
                ctx.stats
            }
        });
        assert_eq!(results[0].msgs_sent, 1);
        assert_eq!(results[0].bytes_sent, 100);
        assert_eq!(results[1].msgs_recv, 1);
        assert_eq!(results[1].bytes_recv, 100);
    }

    #[test]
    fn all_pairs_exchange() {
        const N: usize = 4;
        let results = run_cluster::<Blob, _, _>(N, CostModel::default(), |mut ctx| {
            for dst in 0..N {
                if dst != ctx.id() {
                    ctx.send(dst, Blob(8)).unwrap();
                }
            }
            let mut got = 0;
            while got < N - 1 {
                ctx.recv().unwrap();
                got += 1;
            }
            got
        });
        assert!(results.iter().all(|&g| g == N - 1));
    }
}
