//! Error type for the cluster substrate.

use std::fmt;

/// Errors raised by the simulated cluster runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The peer's channel is gone without a clean exit — the node
    /// panicked or the cluster is being torn down. Always a bug.
    Disconnected,
    /// The peer finished its program and retired cleanly; late traffic
    /// addressed to it is expected under failure injection and should
    /// be counted, not propagated.
    PeerStopped(usize),
    /// A message was addressed to a node id outside the cluster.
    UnknownNode(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Disconnected => write!(f, "peer channel disconnected"),
            SimError::PeerStopped(id) => write!(f, "peer node {id} already finished"),
            SimError::UnknownNode(id) => write!(f, "unknown node id {id}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for substrate operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::Disconnected.to_string(),
            "peer channel disconnected"
        );
        assert_eq!(
            SimError::PeerStopped(1).to_string(),
            "peer node 1 already finished"
        );
        assert_eq!(SimError::UnknownNode(3).to_string(), "unknown node id 3");
    }
}
