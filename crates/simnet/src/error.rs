//! Error type for the cluster substrate.

use std::fmt;

/// Errors raised by the simulated cluster runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The peer's channel is gone — the node exited or panicked.
    Disconnected,
    /// A message was addressed to a node id outside the cluster.
    UnknownNode(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Disconnected => write!(f, "peer channel disconnected"),
            SimError::UnknownNode(id) => write!(f, "unknown node id {id}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for substrate operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::Disconnected.to_string(),
            "peer channel disconnected"
        );
        assert_eq!(SimError::UnknownNode(3).to_string(), "unknown node id 3");
    }
}
