//! Cost models for the simulated cluster hardware.
//!
//! The defaults are calibrated to the paper's testbed: eight Sun Ultra-5
//! workstations (270 MHz UltraSPARC-IIi, 64 MB RAM) connected by a
//! 100 Mbps fast-Ethernet switch, with late-1990s local disks used for
//! stable storage. Absolute values only set the scale of reported times;
//! the protocol *comparisons* depend on the ratios (network round-trip
//! vs. disk access vs. per-byte costs), which these defaults preserve.

use crate::time::SimDuration;

/// Point-to-point network cost model: `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// One-way message latency (wire + protocol stack).
    pub latency: SimDuration,
    /// Transfer cost per payload byte (inverse bandwidth).
    pub ns_per_byte: u64,
}

impl NetworkModel {
    /// 100 Mbps switched Ethernet with a UDP/IP software stack of the era:
    /// ~120 us one-way latency, 80 ns/byte (= 100 Mbps).
    pub const FAST_ETHERNET: NetworkModel = NetworkModel {
        latency: SimDuration::from_micros(120),
        ns_per_byte: 80,
    };

    /// Time for one message carrying `bytes` of payload to cross the wire.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.latency + SimDuration::from_nanos(self.ns_per_byte.saturating_mul(bytes as u64))
    }

    /// A full request/reply round trip with the given payload sizes.
    #[inline]
    pub fn round_trip(&self, request_bytes: usize, reply_bytes: usize) -> SimDuration {
        self.transfer_time(request_bytes) + self.transfer_time(reply_bytes)
    }
}

/// Stable-storage (local disk) cost model: `access latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModel {
    /// Positioning cost per access (seek + rotational delay + syscall).
    pub access_latency: SimDuration,
    /// Sequential transfer cost per byte (device bandwidth).
    pub ns_per_byte: u64,
    /// CPU cost per byte of a *buffered* write: the `write()` syscall
    /// copies the log into the OS page cache; the device drains it in
    /// the background. This is the part of a log flush that is always
    /// on the critical path, even with write-behind.
    pub buffered_write_ns_per_byte: u64,
}

impl DiskModel {
    /// A late-1990s local disk: ~8 ms per random access, ~16 MB/s
    /// sequential bandwidth (60 ns/byte), ~30 ns/byte for the buffered
    /// write() copy into the OS page cache.
    pub const ULTRA5_LOCAL: DiskModel = DiskModel {
        access_latency: SimDuration::from_millis(8),
        ns_per_byte: 60,
        buffered_write_ns_per_byte: 30,
    };

    /// Time to synchronously write `bytes` in one access.
    #[inline]
    pub fn write_time(&self, bytes: usize) -> SimDuration {
        self.access_latency + SimDuration::from_nanos(self.ns_per_byte.saturating_mul(bytes as u64))
    }

    /// Time to read `bytes` in one access.
    #[inline]
    pub fn read_time(&self, bytes: usize) -> SimDuration {
        // Reads and writes cost the same at the device under this model.
        self.write_time(bytes)
    }

    /// CPU cost of handing `bytes` to the OS page cache (buffered
    /// `write()`), independent of when the device drains them.
    #[inline]
    pub fn buffered_write_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.buffered_write_ns_per_byte.saturating_mul(bytes as u64))
    }

    /// Background drain time of `bytes` of *sequential log appends*:
    /// bandwidth only — the append-only log needs no per-flush seek
    /// (the cache coalesces adjacent writes).
    #[inline]
    pub fn drain_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.ns_per_byte.saturating_mul(bytes as u64))
    }
}

/// Processor-side cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Cost of one unit of application arithmetic (a "flop" charge).
    pub ns_per_flop: u64,
    /// Cost per byte of memory copy / comparison (twin creation,
    /// diff encode and apply).
    pub ns_per_byte_copy: u64,
    /// Fixed cost of taking a page-protection fault and entering the
    /// DSM handler (SIGSEGV + context switch on the paper's testbed).
    pub fault_trap: SimDuration,
    /// Fixed cost of servicing one incoming protocol message
    /// (interrupt-driven handler entry/exit).
    pub message_handler: SimDuration,
}

impl CpuModel {
    /// A 270 MHz UltraSPARC-IIi: ~12 cycles (45 ns) per application
    /// operation once cache misses, addressing and loop overhead are
    /// folded in, ~3 ns/byte for in-memory copies, ~60 us per VM trap,
    /// ~25 us per asynchronous message handler.
    pub const ULTRASPARC_270: CpuModel = CpuModel {
        ns_per_flop: 45,
        ns_per_byte_copy: 3,
        fault_trap: SimDuration::from_micros(60),
        message_handler: SimDuration::from_micros(25),
    };

    /// Cost of `n` application arithmetic units.
    #[inline]
    pub fn flops(&self, n: u64) -> SimDuration {
        SimDuration::from_nanos(self.ns_per_flop.saturating_mul(n))
    }

    /// Cost of copying or comparing `bytes` bytes of memory.
    #[inline]
    pub fn copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.ns_per_byte_copy.saturating_mul(bytes as u64))
    }
}

/// The complete hardware model for one cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Network cost model.
    pub net: NetworkModel,
    /// Stable-storage cost model.
    pub disk: DiskModel,
    /// Processor cost model.
    pub cpu: CpuModel,
}

impl CostModel {
    /// The paper's testbed: Ultra-5 nodes, fast Ethernet, local disks.
    pub const ULTRA5_CLUSTER: CostModel = CostModel {
        net: NetworkModel::FAST_ETHERNET,
        disk: DiskModel::ULTRA5_LOCAL,
        cpu: CpuModel::ULTRASPARC_270,
    };
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ULTRA5_CLUSTER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_transfer_scales_with_size() {
        let net = NetworkModel::FAST_ETHERNET;
        let small = net.transfer_time(64);
        let page = net.transfer_time(4096);
        assert!(page > small);
        // 4 KB page at 100 Mbps ~= 327 us of occupancy + 120 us latency.
        assert_eq!(page.as_nanos(), 120_000 + 4096 * 80);
    }

    #[test]
    fn round_trip_is_sum_of_legs() {
        let net = NetworkModel::FAST_ETHERNET;
        assert_eq!(
            net.round_trip(64, 4096),
            net.transfer_time(64) + net.transfer_time(4096)
        );
    }

    #[test]
    fn disk_latency_dominates_small_writes() {
        let disk = DiskModel::ULTRA5_LOCAL;
        let w = disk.write_time(512);
        // positioning cost >> transfer cost at this size
        assert!(w.as_nanos() > 8_000_000);
        assert!(w.as_nanos() < 9_000_000);
    }

    #[test]
    fn disk_read_equals_write() {
        let disk = DiskModel::ULTRA5_LOCAL;
        assert_eq!(disk.read_time(4096), disk.write_time(4096));
    }

    #[test]
    fn cpu_charges() {
        let cpu = CpuModel::ULTRASPARC_270;
        assert_eq!(cpu.flops(1000).as_nanos(), 45_000);
        assert_eq!(cpu.copy(4096).as_nanos(), 3 * 4096);
    }

    #[test]
    fn paper_scale_sanity_disk_slower_than_net_roundtrip() {
        // The key ratio behind the paper's overlap argument: one disk
        // access costs more than a diff round-trip, so overlapping the
        // flush with communication hides most of the communication, and
        // serial flushing (ML) pays the full disk latency on the
        // critical path.
        let m = CostModel::default();
        let diff_rt = m.net.round_trip(256, 32);
        let flush = m.disk.write_time(1024);
        assert!(flush > diff_rt);
    }
}
