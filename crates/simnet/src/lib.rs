//! # simnet — simulated cluster substrate for the CCL reproduction
//!
//! This crate stands in for the physical testbed of Kongmunvattana &
//! Tzeng's ICPP'99 paper (eight Sun Ultra-5 workstations on 100 Mbps
//! Ethernet with local disks): it provides
//!
//! * **virtual time** ([`SimTime`], [`SimDuration`]) — per-node clocks
//!   advanced by explicit, deterministic cost charges;
//! * **hardware cost models** ([`CostModel`]: network, disk, CPU),
//!   calibrated to the paper's 1999 hardware;
//! * **a message transport** ([`Endpoint`], [`Envelope`]) with
//!   share-nothing node isolation — every cross-node interaction is an
//!   explicit message, as over sockets;
//! * **simulated stable storage** ([`SimDisk`]) holding byte-exact log
//!   and checkpoint streams that survive a simulated node crash;
//! * **a node runtime** ([`NodeCtx`], [`run_cluster`]) running one OS
//!   thread per DSM process;
//! * **a coherence engine** ([`CoherenceProtocol`]) owning the message
//!   pump, reply-while-blocked loop, crash/resume lifecycle, and the
//!   structured telemetry stream ([`TraceEvent`], [`PhaseBreakdown`]).
//!
//! Higher layers (`hlrc`, `ftlog`, `ccl-core`) implement the actual DSM
//! protocols on top of these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod engine;
mod error;
mod fault;
mod metrics;
mod models;
mod node;
mod router;
mod stats;
mod time;
mod trace;

pub use disk::{DiskCounters, SimDisk};
pub use engine::{CoherenceProtocol, LogObj, PhaseBreakdown, TraceEvent, TraceKind};
pub use error::{SimError, SimResult};
pub use fault::{DiskFaultPlan, FaultPlan, Partition, SendFate, MAX_RETRANSMITS};
pub use metrics::{Histogram, NodeMetrics, HIST_BINS};
pub use models::{CostModel, CpuModel, DiskModel, NetworkModel};
pub use node::{run_cluster, NodeCtx};
pub use router::{make_endpoints, Endpoint, Envelope, NodeId, WireSized};
pub use stats::{NodeStats, TRAFFIC_KINDS};
pub use time::{SimDuration, SimTime};
pub use trace::{recycle_trace_buffer, TraceSink, DEFAULT_TRACE_CAPACITY};
