//! Per-node execution statistics.
//!
//! These counters feed the paper's Table 2 (log sizes, flush counts,
//! execution times) and the message/traffic analysis behind Figures 4–5.

use crate::time::SimDuration;

/// Counters accumulated by one DSM node over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Protocol messages sent / received.
    pub msgs_sent: u64,
    /// Protocol messages received.
    pub msgs_recv: u64,
    /// Payload bytes sent / received.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Page-protection faults taken (read + write).
    pub read_faults: u64,
    /// Write faults taken.
    pub write_faults: u64,
    /// Full pages fetched from a home node.
    pub page_fetches: u64,
    /// Diffs created at releases/barriers, and their encoded bytes.
    pub diffs_created: u64,
    /// Diff bytes encoded at releases/barriers.
    pub diff_bytes: u64,
    /// Twin copies made.
    pub twins_created: u64,
    /// Volatile-log flushes to stable storage, and the bytes flushed.
    pub log_flushes: u64,
    /// Bytes flushed to the log.
    pub log_bytes: u64,
    /// Lock acquisitions and barrier episodes completed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Retransmission-timeout expiries at this sender (reliable layer).
    pub timeouts: u64,
    /// Transmissions resent after a simulated drop or partition.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by sequence number on receive.
    pub dups_suppressed: u64,
    /// Sends addressed to a peer that had already finished its program
    /// (tolerated under failure injection, not an error).
    pub sends_to_stopped: u64,
    /// Virtual time spent in application compute charges.
    pub compute_time: SimDuration,
    /// Virtual time spent blocked on remote replies / synchronization.
    pub wait_time: SimDuration,
    /// Virtual time spent on (non-overlapped) stable-storage accesses.
    pub disk_time: SimDuration,
    /// Disk time that was hidden behind communication (CCL overlap).
    pub disk_time_overlapped: SimDuration,
}

impl NodeStats {
    /// Merge another node's counters into this one (cluster totals).
    pub fn merge(&mut self, other: &NodeStats) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.read_faults += other.read_faults;
        self.write_faults += other.write_faults;
        self.page_fetches += other.page_fetches;
        self.diffs_created += other.diffs_created;
        self.diff_bytes += other.diff_bytes;
        self.twins_created += other.twins_created;
        self.log_flushes += other.log_flushes;
        self.log_bytes += other.log_bytes;
        self.lock_acquires += other.lock_acquires;
        self.barriers += other.barriers;
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.dups_suppressed += other.dups_suppressed;
        self.sends_to_stopped += other.sends_to_stopped;
        self.compute_time += other.compute_time;
        self.wait_time += other.wait_time;
        self.disk_time += other.disk_time;
        self.disk_time_overlapped += other.disk_time_overlapped;
    }

    /// Total page faults (read + write).
    pub fn faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Partition this node's time counters into the four-way phase
    /// breakdown (compute / wait / disk / hidden-behind-wait).
    pub fn phases(&self) -> crate::engine::PhaseBreakdown {
        crate::engine::PhaseBreakdown::from_stats(self)
    }

    /// Mean flushed-log size in bytes (Table 2's "Mean Log Size" column).
    pub fn mean_log_flush_bytes(&self) -> f64 {
        if self.log_flushes == 0 {
            0.0
        } else {
            self.log_bytes as f64 / self.log_flushes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = NodeStats {
            msgs_sent: 3,
            log_bytes: 100,
            compute_time: SimDuration::from_nanos(5),
            ..Default::default()
        };
        let b = NodeStats {
            msgs_sent: 4,
            log_bytes: 50,
            compute_time: SimDuration::from_nanos(7),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 7);
        assert_eq!(a.log_bytes, 150);
        assert_eq!(a.compute_time.as_nanos(), 12);
    }

    #[test]
    fn mean_log_flush_handles_zero() {
        let s = NodeStats::default();
        assert_eq!(s.mean_log_flush_bytes(), 0.0);
        let s = NodeStats {
            log_flushes: 4,
            log_bytes: 1000,
            ..Default::default()
        };
        assert_eq!(s.mean_log_flush_bytes(), 250.0);
    }

    #[test]
    fn faults_sum_read_and_write() {
        let s = NodeStats {
            read_faults: 2,
            write_faults: 5,
            ..Default::default()
        };
        assert_eq!(s.faults(), 7);
    }
}
