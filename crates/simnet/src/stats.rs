//! Per-node execution statistics.
//!
//! These counters feed the paper's Table 2 (log sizes, flush counts,
//! execution times) and the message/traffic analysis behind Figures 4–5.

use crate::time::SimDuration;

/// Width of the per-message-kind traffic histograms: one slot per wire
/// ordinal (see [`WireSized::kind_ordinal`](crate::WireSized)), sized
/// with headroom above any current protocol's kind count. Out-of-range
/// ordinals are clamped into the last slot rather than dropped.
pub const TRAFFIC_KINDS: usize = 24;

/// Counters accumulated by one DSM node over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Protocol messages sent / received.
    pub msgs_sent: u64,
    /// Protocol messages received.
    pub msgs_recv: u64,
    /// Payload bytes sent / received.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Page-protection faults taken (read + write).
    pub read_faults: u64,
    /// Write faults taken.
    pub write_faults: u64,
    /// Full pages fetched from a home node.
    pub page_fetches: u64,
    /// Predicted extra pages requested on batched fetches.
    pub prefetch_issued: u64,
    /// Predicted copies touched while still valid (fetch stalls hidden).
    pub prefetch_hits: u64,
    /// Predicted copies invalidated before first use (wasted bytes).
    pub prefetch_wasted: u64,
    /// Barrier-committed home migrations executed by this node as the
    /// old home.
    pub home_migrations: u64,
    /// Messages sent, bucketed by wire-kind ordinal.
    pub msgs_by_kind: [u64; TRAFFIC_KINDS],
    /// Payload bytes sent, bucketed by wire-kind ordinal.
    pub bytes_by_kind: [u64; TRAFFIC_KINDS],
    /// Diffs created at releases/barriers, and their encoded bytes.
    pub diffs_created: u64,
    /// Diff bytes encoded at releases/barriers.
    pub diff_bytes: u64,
    /// Twin copies made.
    pub twins_created: u64,
    /// Volatile-log flushes to stable storage, and the bytes flushed.
    pub log_flushes: u64,
    /// Bytes flushed to the log.
    pub log_bytes: u64,
    /// Lock acquisitions and barrier episodes completed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Retransmission-timeout expiries at this sender (reliable layer).
    pub timeouts: u64,
    /// Transmissions resent after a simulated drop or partition.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by sequence number on receive.
    pub dups_suppressed: u64,
    /// Sends addressed to a peer that had already finished its program
    /// (tolerated under failure injection, not an error).
    pub sends_to_stopped: u64,
    /// Times a receive parked waiting for the conservative scheduler's
    /// watermark bound to clear. Physical-layer telemetry: the count
    /// depends on real thread interleaving, so it is reported alongside
    /// the deterministic counters but excluded from `phases_json`.
    pub sched_stalls: u64,
    /// Virtual time spent in application compute charges.
    pub compute_time: SimDuration,
    /// Virtual time spent blocked on remote replies / synchronization.
    pub wait_time: SimDuration,
    /// Virtual time spent on (non-overlapped) stable-storage accesses.
    pub disk_time: SimDuration,
    /// Disk time that was hidden behind communication (CCL overlap).
    pub disk_time_overlapped: SimDuration,
}

impl NodeStats {
    /// Merge another node's counters into this one (cluster totals).
    ///
    /// `other` is fully destructured (no `..` rest pattern), so adding
    /// a counter to `NodeStats` without deciding how it merges is a
    /// compile error here rather than a silently-dropped column in
    /// every cluster total.
    pub fn merge(&mut self, other: &NodeStats) {
        let NodeStats {
            msgs_sent,
            msgs_recv,
            bytes_sent,
            bytes_recv,
            read_faults,
            write_faults,
            page_fetches,
            prefetch_issued,
            prefetch_hits,
            prefetch_wasted,
            home_migrations,
            msgs_by_kind,
            bytes_by_kind,
            diffs_created,
            diff_bytes,
            twins_created,
            log_flushes,
            log_bytes,
            lock_acquires,
            barriers,
            timeouts,
            retransmits,
            dups_suppressed,
            sends_to_stopped,
            sched_stalls,
            compute_time,
            wait_time,
            disk_time,
            disk_time_overlapped,
        } = *other;
        self.msgs_sent += msgs_sent;
        self.msgs_recv += msgs_recv;
        self.bytes_sent += bytes_sent;
        self.bytes_recv += bytes_recv;
        self.read_faults += read_faults;
        self.write_faults += write_faults;
        self.page_fetches += page_fetches;
        self.prefetch_issued += prefetch_issued;
        self.prefetch_hits += prefetch_hits;
        self.prefetch_wasted += prefetch_wasted;
        self.home_migrations += home_migrations;
        for k in 0..TRAFFIC_KINDS {
            self.msgs_by_kind[k] += msgs_by_kind[k];
            self.bytes_by_kind[k] += bytes_by_kind[k];
        }
        self.diffs_created += diffs_created;
        self.diff_bytes += diff_bytes;
        self.twins_created += twins_created;
        self.log_flushes += log_flushes;
        self.log_bytes += log_bytes;
        self.lock_acquires += lock_acquires;
        self.barriers += barriers;
        self.timeouts += timeouts;
        self.retransmits += retransmits;
        self.dups_suppressed += dups_suppressed;
        self.sends_to_stopped += sends_to_stopped;
        self.sched_stalls += sched_stalls;
        self.compute_time += compute_time;
        self.wait_time += wait_time;
        self.disk_time += disk_time;
        self.disk_time_overlapped += disk_time_overlapped;
    }

    /// Total page faults (read + write).
    pub fn faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Bucket one sent message into the per-kind traffic histograms.
    /// Ordinals beyond the histogram width land in the last slot.
    pub fn count_kind(&mut self, ordinal: usize, bytes: u64) {
        let k = ordinal.min(TRAFFIC_KINDS - 1);
        self.msgs_by_kind[k] += 1;
        self.bytes_by_kind[k] += bytes;
    }

    /// Partition this node's time counters into the four-way phase
    /// breakdown (compute / wait / disk / hidden-behind-wait).
    pub fn phases(&self) -> crate::engine::PhaseBreakdown {
        crate::engine::PhaseBreakdown::from_stats(self)
    }

    /// Mean flushed-log size in bytes (Table 2's "Mean Log Size" column).
    pub fn mean_log_flush_bytes(&self) -> f64 {
        if self.log_flushes == 0 {
            0.0
        } else {
            self.log_bytes as f64 / self.log_flushes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stats value with every field populated and no two fields
    /// equal, seeded from `base` so two instances never collide.
    fn fully_populated(base: u64) -> NodeStats {
        NodeStats {
            msgs_sent: base + 1,
            msgs_recv: base + 2,
            bytes_sent: base + 3,
            bytes_recv: base + 4,
            read_faults: base + 5,
            write_faults: base + 6,
            page_fetches: base + 7,
            diffs_created: base + 8,
            diff_bytes: base + 9,
            twins_created: base + 10,
            log_flushes: base + 11,
            log_bytes: base + 12,
            lock_acquires: base + 13,
            barriers: base + 14,
            timeouts: base + 15,
            retransmits: base + 16,
            dups_suppressed: base + 17,
            sends_to_stopped: base + 18,
            sched_stalls: base + 19,
            compute_time: SimDuration::from_nanos(base + 20),
            wait_time: SimDuration::from_nanos(base + 21),
            disk_time: SimDuration::from_nanos(base + 22),
            disk_time_overlapped: SimDuration::from_nanos(base + 23),
            prefetch_issued: base + 24,
            prefetch_hits: base + 25,
            prefetch_wasted: base + 26,
            home_migrations: base + 27,
            msgs_by_kind: std::array::from_fn(|i| base + 28 + i as u64),
            bytes_by_kind: std::array::from_fn(|i| base + 28 + TRAFFIC_KINDS as u64 + i as u64),
        }
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = fully_populated(100);
        let b = fully_populated(1000);
        a.merge(&b);
        let expect = |off: u64| 100 + 1000 + 2 * off;
        let NodeStats {
            msgs_sent,
            msgs_recv,
            bytes_sent,
            bytes_recv,
            read_faults,
            write_faults,
            page_fetches,
            prefetch_issued,
            prefetch_hits,
            prefetch_wasted,
            home_migrations,
            msgs_by_kind,
            bytes_by_kind,
            diffs_created,
            diff_bytes,
            twins_created,
            log_flushes,
            log_bytes,
            lock_acquires,
            barriers,
            timeouts,
            retransmits,
            dups_suppressed,
            sends_to_stopped,
            sched_stalls,
            compute_time,
            wait_time,
            disk_time,
            disk_time_overlapped,
        } = a;
        assert_eq!(msgs_sent, expect(1));
        assert_eq!(msgs_recv, expect(2));
        assert_eq!(bytes_sent, expect(3));
        assert_eq!(bytes_recv, expect(4));
        assert_eq!(read_faults, expect(5));
        assert_eq!(write_faults, expect(6));
        assert_eq!(page_fetches, expect(7));
        assert_eq!(diffs_created, expect(8));
        assert_eq!(diff_bytes, expect(9));
        assert_eq!(twins_created, expect(10));
        assert_eq!(log_flushes, expect(11));
        assert_eq!(log_bytes, expect(12));
        assert_eq!(lock_acquires, expect(13));
        assert_eq!(barriers, expect(14));
        assert_eq!(timeouts, expect(15));
        assert_eq!(retransmits, expect(16));
        assert_eq!(dups_suppressed, expect(17));
        assert_eq!(sends_to_stopped, expect(18));
        assert_eq!(sched_stalls, expect(19));
        assert_eq!(compute_time.as_nanos(), expect(20));
        assert_eq!(wait_time.as_nanos(), expect(21));
        assert_eq!(disk_time.as_nanos(), expect(22));
        assert_eq!(disk_time_overlapped.as_nanos(), expect(23));
        assert_eq!(prefetch_issued, expect(24));
        assert_eq!(prefetch_hits, expect(25));
        assert_eq!(prefetch_wasted, expect(26));
        assert_eq!(home_migrations, expect(27));
        for i in 0..TRAFFIC_KINDS {
            assert_eq!(msgs_by_kind[i], expect(28 + i as u64));
            assert_eq!(
                bytes_by_kind[i],
                expect(28 + TRAFFIC_KINDS as u64 + i as u64)
            );
        }
    }

    #[test]
    fn count_kind_buckets_and_clamps() {
        let mut s = NodeStats::default();
        s.count_kind(3, 100);
        s.count_kind(3, 50);
        s.count_kind(TRAFFIC_KINDS + 7, 9);
        assert_eq!(s.msgs_by_kind[3], 2);
        assert_eq!(s.bytes_by_kind[3], 150);
        assert_eq!(s.msgs_by_kind[TRAFFIC_KINDS - 1], 1);
        assert_eq!(s.bytes_by_kind[TRAFFIC_KINDS - 1], 9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NodeStats {
            msgs_sent: 3,
            log_bytes: 100,
            compute_time: SimDuration::from_nanos(5),
            ..Default::default()
        };
        let b = NodeStats {
            msgs_sent: 4,
            log_bytes: 50,
            compute_time: SimDuration::from_nanos(7),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 7);
        assert_eq!(a.log_bytes, 150);
        assert_eq!(a.compute_time.as_nanos(), 12);
    }

    #[test]
    fn mean_log_flush_handles_zero() {
        let s = NodeStats::default();
        assert_eq!(s.mean_log_flush_bytes(), 0.0);
        let s = NodeStats {
            log_flushes: 4,
            log_bytes: 1000,
            ..Default::default()
        };
        assert_eq!(s.mean_log_flush_bytes(), 250.0);
    }

    #[test]
    fn faults_sum_read_and_write() {
        let s = NodeStats {
            read_faults: 2,
            write_faults: 5,
            ..Default::default()
        };
        assert_eq!(s.faults(), 7);
    }
}
