//! Shared application utilities: deterministic initialization and
//! checksums.
//!
//! Every application must be piecewise deterministic (the recovery
//! protocols replay execution), so initialization uses a fixed-seed
//! SplitMix64 generator and all order-sensitive accumulations use
//! fixed-point integers.

/// Deterministic 64-bit generator (SplitMix64) for reproducible
/// application data.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in [-1, 1).
    pub fn next_signed(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }
}

/// Fixed-point scale used for order-insensitive shared accumulations
/// (integer addition commutes; floating addition does not).
pub const FIXED_SCALE: f64 = 1.0e9;

/// Convert a float to fixed-point.
pub fn to_fixed(v: f64) -> i64 {
    (v * FIXED_SCALE).round() as i64
}

/// Convert fixed-point back to a float.
pub fn from_fixed(v: i64) -> f64 {
    v as f64 / FIXED_SCALE
}

/// Order-stable checksum combinator over f64 values: folds the exact
/// bit patterns so any numeric drift is caught, not averaged away.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    acc: u64,
    count: u64,
}

impl Checksum {
    /// Fresh checksum.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Fold one value (order matters; feed in a fixed order).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Fold one integer value.
    pub fn push_u64(&mut self, v: u64) {
        self.count += 1;
        // FNV-ish mixing keeps transpositions visible.
        self.acc = (self.acc ^ v).wrapping_mul(0x100_0000_01B3);
        self.acc = self.acc.rotate_left(17).wrapping_add(self.count);
    }

    /// Final digest.
    pub fn digest(&self) -> u64 {
        self.acc ^ self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = g.next_f64();
            assert!((0.0..1.0).contains(&f));
            let s = g.next_signed();
            assert!((-1.0..1.0).contains(&s));
        }
    }

    #[test]
    fn fixed_point_roundtrip() {
        for v in [0.0, 1.5, -2.25, 0.123456789] {
            assert!((from_fixed(to_fixed(v)) - v).abs() < 1e-8);
        }
    }

    #[test]
    fn fixed_point_addition_commutes() {
        let xs = [0.1, 0.7, -0.3, 2.5];
        let a: i64 = xs.iter().map(|&v| to_fixed(v)).sum();
        let b: i64 = xs.iter().rev().map(|&v| to_fixed(v)).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn checksum_detects_changes_and_order() {
        let mut a = Checksum::new();
        a.push_f64(1.0);
        a.push_f64(2.0);
        let mut b = Checksum::new();
        b.push_f64(2.0);
        b.push_f64(1.0);
        assert_ne!(a.digest(), b.digest(), "transposition must be visible");
        let mut c = Checksum::new();
        c.push_f64(1.0);
        c.push_f64(2.0);
        assert_eq!(a.digest(), c.digest());
    }
}
