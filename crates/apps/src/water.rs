//! Water — the SPLASH molecular-dynamics benchmark (n-squared variant).
//!
//! N molecules interact pairwise; each timestep computes forces over
//! the O(N²/2) pair list, accumulates them into shared force arrays
//! under per-block **locks**, then integrates positions — the only
//! program in the paper's suite that synchronizes with locks *and*
//! barriers (Table 1).
//!
//! Force accumulation and the potential-energy reduction use fixed-point
//! integers so the result is independent of lock-acquisition order
//! (integer addition commutes), keeping the program piecewise
//! deterministic for replay.

use ccl_core::Dsm;

use crate::common::{from_fixed, to_fixed, Checksum, SplitMix64};

/// Water problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct WaterConfig {
    /// Number of molecules.
    pub molecules: usize,
    /// Number of timesteps.
    pub steps: usize,
}

impl WaterConfig {
    /// The paper's data set: 512 molecules.
    pub fn paper() -> WaterConfig {
        WaterConfig {
            molecules: 512,
            steps: 4,
        }
    }

    /// Tiny instance for tests.
    pub fn tiny() -> WaterConfig {
        WaterConfig {
            molecules: 32,
            steps: 3,
        }
    }

    /// Shared pages: positions + velocities (f64 x3) and forces (i64 x3)
    /// plus the energy cell.
    pub fn shared_pages(&self, page_size: usize) -> u32 {
        let per = (3 * self.molecules * 8).div_ceil(page_size) as u32 + 1;
        3 * per + 1
    }
}

const DT: f64 = 0.002;
const CUTOFF2: f64 = 6.25; // squared interaction cutoff
const BOX: f64 = 10.0;

/// Deterministic initial position of molecule `i` (identical arithmetic
/// in the parallel kernel and the serial reference).
pub fn initial_position(i: usize) -> [f64; 3] {
    let mut g = SplitMix64::new(0x3A7E5_u64 ^ (i as u64) << 3);
    [g.next_f64() * BOX, g.next_f64() * BOX, g.next_f64() * BOX]
}

/// Pairwise force contribution and potential energy for molecules at
/// `a` and `b` (soft Lennard-Jones with cutoff, minimum image).
pub fn pair_force(a: &[f64; 3], b: &[f64; 3]) -> Option<([f64; 3], f64)> {
    let mut d = [0.0f64; 3];
    let mut r2 = 0.0;
    for k in 0..3 {
        let mut dk = a[k] - b[k];
        if dk > BOX / 2.0 {
            dk -= BOX;
        } else if dk < -BOX / 2.0 {
            dk += BOX;
        }
        d[k] = dk;
        r2 += dk * dk;
    }
    if !(1e-12..CUTOFF2).contains(&r2) {
        return None;
    }
    let inv2 = 1.0 / (r2 + 0.1); // softened to keep the integrator stable
    let inv6 = inv2 * inv2 * inv2;
    let mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
    let energy = 4.0 * inv6 * (inv6 - 1.0);
    Some(([d[0] * mag, d[1] * mag, d[2] * mag], energy))
}

fn my_block(n: usize, me: usize, nodes: usize) -> (usize, usize) {
    let per = n.div_ceil(nodes);
    ((me * per).min(n), ((me + 1) * per).min(n))
}

/// Run Water on the DSM; every node returns the same digest.
pub fn run(dsm: &mut Dsm, cfg: &WaterConfig) -> u64 {
    let n = cfg.molecules;
    let me = dsm.me();
    let nodes = dsm.nodes();
    let pos = dsm.alloc_blocked::<f64>(3 * n);
    let vel = dsm.alloc_blocked::<f64>(3 * n);
    let force = dsm.alloc_blocked::<i64>(3 * n);
    let energy = dsm.alloc_at::<i64>(1, 0);
    let (lo, hi) = my_block(n, me, nodes);

    // Initialize own block.
    for i in lo..hi {
        let p = initial_position(i);
        for (k, &coord) in p.iter().enumerate() {
            dsm.write(&pos, 3 * i + k, coord);
            dsm.write(&vel, 3 * i + k, 0.0);
        }
    }
    if me == 0 {
        dsm.write(&energy, 0, 0i64);
    }
    dsm.barrier();

    let mut local_force = vec![0i64; 3 * n];
    let mut positions = vec![[0.0f64; 3]; n];

    for _step in 0..cfg.steps {
        // Zero the shared forces (own block) and snapshot positions.
        for i in lo..hi {
            for k in 0..3 {
                dsm.write(&force, 3 * i + k, 0i64);
            }
        }
        dsm.barrier();
        for (i, item) in positions.iter_mut().enumerate() {
            for (k, c) in item.iter_mut().enumerate() {
                *c = dsm.read(&pos, 3 * i + k);
            }
        }

        // Pairwise forces for pairs led by own molecules; accumulate
        // locally in fixed point, then merge under per-block locks.
        local_force.iter_mut().for_each(|f| *f = 0);
        let mut local_energy = 0i64;
        for i in lo..hi {
            for j in i + 1..n {
                if let Some((f, e)) = pair_force(&positions[i], &positions[j]) {
                    for k in 0..3 {
                        let fk = to_fixed(f[k]);
                        local_force[3 * i + k] += fk;
                        local_force[3 * j + k] -= fk;
                    }
                    local_energy += to_fixed(e);
                }
                // A real SPLASH water molecule has three interaction
                // sites: ~9 site-site terms per molecule pair.
                dsm.charge_flops(280);
            }
        }
        for block in 0..nodes {
            let (blo, bhi) = my_block(n, block, nodes);
            if blo == bhi {
                continue;
            }
            let any = local_force[3 * blo..3 * bhi].iter().any(|&f| f != 0);
            if !any {
                continue;
            }
            dsm.acquire(block as u32);
            for i in blo..bhi {
                for k in 0..3 {
                    let idx = 3 * i + k;
                    if local_force[idx] != 0 {
                        let cur = dsm.read(&force, idx);
                        dsm.write(&force, idx, cur + local_force[idx]);
                    }
                }
            }
            dsm.release(block as u32);
        }
        if local_energy != 0 {
            dsm.acquire(nodes as u32); // energy lock
            let cur = dsm.read(&energy, 0);
            dsm.write(&energy, 0, cur + local_energy);
            dsm.release(nodes as u32);
        }
        dsm.barrier();

        // Integrate own block (leapfrog-ish Euler).
        for i in lo..hi {
            for k in 0..3 {
                let f = from_fixed(dsm.read(&force, 3 * i + k));
                let v = dsm.read(&vel, 3 * i + k) + f * DT;
                dsm.write(&vel, 3 * i + k, v);
                let mut x = dsm.read(&pos, 3 * i + k) + v * DT;
                x = x.rem_euclid(BOX);
                dsm.write(&pos, 3 * i + k, x);
            }
            dsm.charge_flops(18);
        }
        dsm.barrier();
    }

    let mut sum = Checksum::new();
    for i in 0..n {
        for k in 0..3 {
            sum.push_f64(dsm.read(&pos, 3 * i + k));
        }
    }
    sum.push_u64(dsm.read(&energy, 0) as u64);
    dsm.barrier();
    sum.digest()
}

/// Serial reference with identical arithmetic and fixed-point
/// accumulation.
pub fn reference_digest(cfg: &WaterConfig) -> u64 {
    let n = cfg.molecules;
    let mut pos: Vec<[f64; 3]> = (0..n).map(initial_position).collect();
    let mut vel = vec![[0.0f64; 3]; n];
    let mut energy = 0i64;
    for _ in 0..cfg.steps {
        let mut force = vec![0i64; 3 * n];
        for i in 0..n {
            for j in i + 1..n {
                if let Some((f, e)) = pair_force(&pos[i], &pos[j]) {
                    for k in 0..3 {
                        let fk = to_fixed(f[k]);
                        force[3 * i + k] += fk;
                        force[3 * j + k] -= fk;
                    }
                    energy += to_fixed(e);
                }
            }
        }
        for i in 0..n {
            for k in 0..3 {
                let f = from_fixed(force[3 * i + k]);
                vel[i][k] += f * DT;
                pos[i][k] = (pos[i][k] + vel[i][k] * DT).rem_euclid(BOX);
            }
        }
    }
    let mut sum = Checksum::new();
    for p in &pos {
        for &coord in p.iter().take(3) {
            sum.push_f64(coord);
        }
    }
    sum.push_u64(energy as u64);
    sum.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let cfg = WaterConfig::tiny();
        assert_eq!(reference_digest(&cfg), reference_digest(&cfg));
    }

    #[test]
    fn pair_force_is_antisymmetric_in_distance() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 1.0, 1.0];
        let (fab, e1) = pair_force(&a, &b).unwrap();
        let (fba, e2) = pair_force(&b, &a).unwrap();
        for k in 0..3 {
            assert!((fab[k] + fba[k]).abs() < 1e-12);
        }
        assert_eq!(e1, e2);
    }

    #[test]
    fn cutoff_excludes_distant_pairs() {
        let a = [0.0, 0.0, 0.0];
        let b = [4.9, 0.0, 0.0]; // min-image distance 4.9 > cutoff 2.5
        assert!(pair_force(&a, &b).is_none());
    }

    #[test]
    fn minimum_image_wraps() {
        let a = [0.1, 0.0, 0.0];
        let b = [9.9, 0.0, 0.0]; // 0.2 apart through the boundary
        assert!(pair_force(&a, &b).is_some());
    }

    #[test]
    fn positions_stay_in_box() {
        let cfg = WaterConfig::tiny();
        let n = cfg.molecules;
        let mut pos: Vec<[f64; 3]> = (0..n).map(initial_position).collect();
        assert!(pos
            .iter()
            .all(|p| p.iter().all(|&c| (0.0..BOX).contains(&c))));
        // one reference step keeps them in the box
        let mut vel = vec![[0.0f64; 3]; n];
        let mut force = vec![0i64; 3 * n];
        for i in 0..n {
            for j in i + 1..n {
                if let Some((f, _)) = pair_force(&pos[i], &pos[j]) {
                    for k in 0..3 {
                        force[3 * i + k] += to_fixed(f[k]);
                        force[3 * j + k] -= to_fixed(f[k]);
                    }
                }
            }
        }
        for i in 0..n {
            for k in 0..3 {
                vel[i][k] += from_fixed(force[3 * i + k]) * DT;
                pos[i][k] = (pos[i][k] + vel[i][k] * DT).rem_euclid(BOX);
            }
        }
        assert!(pos
            .iter()
            .all(|p| p.iter().all(|&c| (0.0..BOX).contains(&c))));
    }
}
