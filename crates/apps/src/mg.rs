//! MG — the NAS multigrid kernel: V-cycles of a damped-Jacobi multigrid
//! solver for the 3-D Poisson problem with zero Dirichlet boundaries.
//!
//! Grids are z-major (`index = (z*n + y)*n + x`) and block-distributed
//! by z-planes, so each node's plane slab is homed locally and the
//! 7-point stencil fetches only the two halo planes from neighbours —
//! the paper's classic nearest-neighbour sharing pattern, with barriers
//! separating every sweep.

use ccl_core::{ArrayHandle, Dsm};

use crate::common::{Checksum, SplitMix64};

/// MG problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Finest grid extent per dimension (power of two).
    pub n: usize,
    /// Number of multigrid levels (level k has extent n >> k).
    pub levels: usize,
    /// Number of V-cycles.
    pub cycles: usize,
}

impl MgConfig {
    /// Harness-scale instance of the paper's data set (64^3 grid).
    pub fn paper() -> MgConfig {
        MgConfig {
            n: 64,
            levels: 3,
            cycles: 2,
        }
    }

    /// Tiny instance for tests.
    pub fn tiny() -> MgConfig {
        MgConfig {
            n: 8,
            levels: 2,
            cycles: 2,
        }
    }

    fn extent(&self, level: usize) -> usize {
        self.n >> level
    }

    fn points(&self, level: usize) -> usize {
        let e = self.extent(level);
        e * e * e
    }

    /// Shared pages needed: u, f, tmp arrays at every level.
    pub fn shared_pages(&self, page_size: usize) -> u32 {
        let mut pages = 0u32;
        for l in 0..self.levels {
            let per_array = (self.points(l) * 8).div_ceil(page_size) as u32 + 1;
            pages += 3 * per_array;
        }
        pages
    }
}

const OMEGA: f64 = 0.8;

#[inline]
fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
    (z * n + y) * n + x
}

/// Deterministic right-hand side at fine-grid point `(x,y,z)`.
pub fn rhs_value(n: usize, x: usize, y: usize, z: usize) -> f64 {
    let mut g = SplitMix64::new(0x3A6_0000 ^ idx(n, x, y, z) as u64);
    g.next_signed()
}

struct Level {
    u: ArrayHandle<f64>,
    f: ArrayHandle<f64>,
    tmp: ArrayHandle<f64>,
    n: usize,
}

/// z-plane range owned by `me` at a grid extent of `n` planes.
fn my_planes(n: usize, me: usize, nodes: usize) -> (usize, usize) {
    let per = n.div_ceil(nodes);
    let lo = (me * per).min(n);
    let hi = ((me + 1) * per).min(n);
    (lo, hi)
}

/// One damped-Jacobi sweep at `level`, reading the `src` generation of
/// u and writing the `dst` generation; one barrier per sweep (ping-pong
/// buffering, as the NAS code does). Interior points only (zero
/// Dirichlet boundary).
fn sweep(dsm: &mut Dsm, lv: &Level, src: bool, me: usize, nodes: usize) {
    let n = lv.n;
    let (from, to) = if src {
        (&lv.u, &lv.tmp)
    } else {
        (&lv.tmp, &lv.u)
    };
    let (zlo, zhi) = my_planes(n, me, nodes);
    for z in zlo..zhi {
        for y in 0..n {
            for x in 0..n {
                let i = idx(n, x, y, z);
                let interior = x > 0 && x < n - 1 && y > 0 && y < n - 1 && z > 0 && z < n - 1;
                if !interior {
                    dsm.write(to, i, 0.0);
                    continue;
                }
                let u = dsm.read(from, i);
                let nb = dsm.read(from, idx(n, x - 1, y, z))
                    + dsm.read(from, idx(n, x + 1, y, z))
                    + dsm.read(from, idx(n, x, y - 1, z))
                    + dsm.read(from, idx(n, x, y + 1, z))
                    + dsm.read(from, idx(n, x, y, z - 1))
                    + dsm.read(from, idx(n, x, y, z + 1));
                let f = dsm.read(&lv.f, i);
                let r = f - (6.0 * u - nb);
                dsm.write(to, i, u + OMEGA * r / 6.0);
            }
        }
        dsm.charge_flops(12 * n as u64 * n as u64);
    }
    dsm.barrier();
}

/// Two ping-ponged Jacobi sweeps (u -> tmp -> u), leaving the result in
/// `u`: the unit of smoothing used at every level.
fn smooth_pair(dsm: &mut Dsm, lv: &Level, me: usize, nodes: usize) {
    sweep(dsm, lv, true, me, nodes);
    sweep(dsm, lv, false, me, nodes);
}

/// Residual r = f - A u of `fine`, injected as the RHS of `coarse`.
fn restrict(dsm: &mut Dsm, fine: &Level, coarse: &Level, me: usize, nodes: usize) {
    let nc = coarse.n;
    let nf = fine.n;
    let (zlo, zhi) = my_planes(nc, me, nodes);
    for zc in zlo..zhi {
        for yc in 0..nc {
            for xc in 0..nc {
                let (x, y, z) = (xc * 2, yc * 2, zc * 2);
                let interior = x > 0 && x < nf - 1 && y > 0 && y < nf - 1 && z > 0 && z < nf - 1;
                let r = if interior {
                    let i = idx(nf, x, y, z);
                    let u = dsm.read(&fine.u, i);
                    let nb = dsm.read(&fine.u, idx(nf, x - 1, y, z))
                        + dsm.read(&fine.u, idx(nf, x + 1, y, z))
                        + dsm.read(&fine.u, idx(nf, x, y - 1, z))
                        + dsm.read(&fine.u, idx(nf, x, y + 1, z))
                        + dsm.read(&fine.u, idx(nf, x, y, z - 1))
                        + dsm.read(&fine.u, idx(nf, x, y, z + 1));
                    dsm.read(&fine.f, i) - (6.0 * u - nb)
                } else {
                    0.0
                };
                dsm.write(&coarse.f, idx(nc, xc, yc, zc), r);
                dsm.write(&coarse.u, idx(nc, xc, yc, zc), 0.0);
            }
        }
        dsm.charge_flops(12 * nc as u64 * nc as u64);
    }
    dsm.barrier();
}

/// Piecewise-constant prolongation: add the coarse correction to every
/// fine point of its coarse cell.
fn prolongate(dsm: &mut Dsm, coarse: &Level, fine: &Level, me: usize, nodes: usize) {
    let nf = fine.n;
    let nc = coarse.n;
    let (zlo, zhi) = my_planes(nf, me, nodes);
    for z in zlo..zhi {
        for y in 0..nf {
            for x in 0..nf {
                let c = idx(
                    nc,
                    (x / 2).min(nc - 1),
                    (y / 2).min(nc - 1),
                    (z / 2).min(nc - 1),
                );
                let corr = dsm.read(&coarse.u, c);
                if corr != 0.0 {
                    let i = idx(nf, x, y, z);
                    let u = dsm.read(&fine.u, i);
                    dsm.write(&fine.u, i, u + corr);
                }
            }
        }
        dsm.charge_flops(2 * nf as u64 * nf as u64);
    }
    dsm.barrier();
}

/// Run MG on the DSM; every node returns the same digest.
pub fn run(dsm: &mut Dsm, cfg: &MgConfig) -> u64 {
    let me = dsm.me();
    let nodes = dsm.nodes();
    assert!(cfg.extent(cfg.levels - 1) >= 4, "coarsest grid too small");
    let levels: Vec<Level> = (0..cfg.levels)
        .map(|l| Level {
            u: dsm.alloc_blocked::<f64>(cfg.points(l)),
            f: dsm.alloc_blocked::<f64>(cfg.points(l)),
            tmp: dsm.alloc_blocked::<f64>(cfg.points(l)),
            n: cfg.extent(l),
        })
        .collect();

    // Initialize the fine RHS (own planes).
    let n = cfg.n;
    let (zlo, zhi) = my_planes(n, me, nodes);
    for z in zlo..zhi {
        for y in 0..n {
            for x in 0..n {
                dsm.write(&levels[0].f, idx(n, x, y, z), rhs_value(n, x, y, z));
                dsm.write(&levels[0].u, idx(n, x, y, z), 0.0);
            }
        }
    }
    dsm.barrier();

    for _cycle in 0..cfg.cycles {
        // Down-sweep.
        for l in 0..cfg.levels - 1 {
            smooth_pair(dsm, &levels[l], me, nodes);
            restrict(dsm, &levels[l], &levels[l + 1], me, nodes);
        }
        // Coarsest solve: extra smoothing.
        for _ in 0..2 {
            smooth_pair(dsm, &levels[cfg.levels - 1], me, nodes);
        }
        // Up-sweep.
        for l in (0..cfg.levels - 1).rev() {
            prolongate(dsm, &levels[l + 1], &levels[l], me, nodes);
            smooth_pair(dsm, &levels[l], me, nodes);
        }
    }

    let mut sum = Checksum::new();
    let pts = cfg.points(0);
    let stride = (pts / 64).max(1);
    let mut i = 0;
    while i < pts {
        sum.push_f64(dsm.read(&levels[0].u, i));
        i += stride;
    }
    dsm.barrier();
    sum.digest()
}

/// Serial reference with identical arithmetic.
pub fn reference_digest(cfg: &MgConfig) -> u64 {
    struct SLevel {
        u: Vec<f64>,
        f: Vec<f64>,
        n: usize,
    }
    let mut levels: Vec<SLevel> = (0..cfg.levels)
        .map(|l| SLevel {
            u: vec![0.0; cfg.points(l)],
            f: vec![0.0; cfg.points(l)],
            n: cfg.extent(l),
        })
        .collect();
    let n = cfg.n;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                levels[0].f[idx(n, x, y, z)] = rhs_value(n, x, y, z);
            }
        }
    }
    fn s_smooth(lv: &mut SLevel) {
        let n = lv.n;
        let mut tmp = vec![0.0; lv.u.len()];
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = idx(n, x, y, z);
                    let u = lv.u[i];
                    let nb = lv.u[idx(n, x - 1, y, z)]
                        + lv.u[idx(n, x + 1, y, z)]
                        + lv.u[idx(n, x, y - 1, z)]
                        + lv.u[idx(n, x, y + 1, z)]
                        + lv.u[idx(n, x, y, z - 1)]
                        + lv.u[idx(n, x, y, z + 1)];
                    let r = lv.f[i] - (6.0 * u - nb);
                    tmp[i] = u + OMEGA * r / 6.0;
                }
            }
        }
        lv.u = tmp;
    }
    for _ in 0..cfg.cycles {
        for l in 0..cfg.levels - 1 {
            s_smooth(&mut levels[l]);
            s_smooth(&mut levels[l]);
            let nf = levels[l].n;
            let nc = levels[l + 1].n;
            let mut coarse_f = vec![0.0; levels[l + 1].f.len()];
            for zc in 0..nc {
                for yc in 0..nc {
                    for xc in 0..nc {
                        let (x, y, z) = (xc * 2, yc * 2, zc * 2);
                        let interior =
                            x > 0 && x < nf - 1 && y > 0 && y < nf - 1 && z > 0 && z < nf - 1;
                        if interior {
                            let i = idx(nf, x, y, z);
                            let u = levels[l].u[i];
                            let nb = levels[l].u[idx(nf, x - 1, y, z)]
                                + levels[l].u[idx(nf, x + 1, y, z)]
                                + levels[l].u[idx(nf, x, y - 1, z)]
                                + levels[l].u[idx(nf, x, y + 1, z)]
                                + levels[l].u[idx(nf, x, y, z - 1)]
                                + levels[l].u[idx(nf, x, y, z + 1)];
                            coarse_f[idx(nc, xc, yc, zc)] = levels[l].f[i] - (6.0 * u - nb);
                        }
                    }
                }
            }
            levels[l + 1].f = coarse_f;
            levels[l + 1].u.iter_mut().for_each(|v| *v = 0.0);
        }
        for _ in 0..4 {
            s_smooth(&mut levels[cfg.levels - 1]);
        }
        for l in (0..cfg.levels - 1).rev() {
            let nf = levels[l].n;
            let nc = levels[l + 1].n;
            for z in 0..nf {
                for y in 0..nf {
                    for x in 0..nf {
                        let c = idx(
                            nc,
                            (x / 2).min(nc - 1),
                            (y / 2).min(nc - 1),
                            (z / 2).min(nc - 1),
                        );
                        let corr = levels[l + 1].u[c];
                        if corr != 0.0 {
                            levels[l].u[idx(nf, x, y, z)] += corr;
                        }
                    }
                }
            }
            s_smooth(&mut levels[l]);
            s_smooth(&mut levels[l]);
        }
    }
    let mut sum = Checksum::new();
    let pts = cfg.points(0);
    let stride = (pts / 64).max(1);
    let mut i = 0;
    while i < pts {
        sum.push_f64(levels[0].u[i]);
        i += stride;
    }
    sum.digest()
}

/// Residual L2 norm of the serial solve (convergence sanity check).
pub fn reference_residual_norm(cfg: &MgConfig, cycles: usize) -> f64 {
    let n = cfg.n;
    let mut u = vec![0.0f64; cfg.points(0)];
    let mut f = vec![0.0f64; cfg.points(0)];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                f[idx(n, x, y, z)] = rhs_value(n, x, y, z);
            }
        }
    }
    // Plain Jacobi sweeps stand in for the V-cycle here: we only need a
    // monotone-ish residual to sanity-check the operator.
    for _ in 0..cycles * 8 {
        let mut tmp = vec![0.0; u.len()];
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = idx(n, x, y, z);
                    let nb = u[idx(n, x - 1, y, z)]
                        + u[idx(n, x + 1, y, z)]
                        + u[idx(n, x, y - 1, z)]
                        + u[idx(n, x, y + 1, z)]
                        + u[idx(n, x, y, z - 1)]
                        + u[idx(n, x, y, z + 1)];
                    let r = f[i] - (6.0 * u[i] - nb);
                    tmp[i] = u[i] + OMEGA * r / 6.0;
                }
            }
        }
        u = tmp;
    }
    let mut norm = 0.0;
    for z in 1..n - 1 {
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = idx(n, x, y, z);
                let nb = u[idx(n, x - 1, y, z)]
                    + u[idx(n, x + 1, y, z)]
                    + u[idx(n, x, y - 1, z)]
                    + u[idx(n, x, y + 1, z)]
                    + u[idx(n, x, y, z - 1)]
                    + u[idx(n, x, y, z + 1)];
                let r = f[i] - (6.0 * u[i] - nb);
                norm += r * r;
            }
        }
    }
    norm.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let cfg = MgConfig::tiny();
        assert_eq!(reference_digest(&cfg), reference_digest(&cfg));
    }

    #[test]
    fn jacobi_reduces_residual() {
        let cfg = MgConfig::tiny();
        let early = reference_residual_norm(&cfg, 1);
        let late = reference_residual_norm(&cfg, 4);
        assert!(late < early, "residual must decrease: {early} -> {late}");
    }

    #[test]
    fn plane_partition_covers_grid() {
        for n in [8, 16, 32] {
            for nodes in [1, 2, 4, 8] {
                let mut covered = 0;
                for me in 0..nodes {
                    let (lo, hi) = my_planes(n, me, nodes);
                    covered += hi - lo;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn config_page_math() {
        let cfg = MgConfig::tiny();
        assert!(cfg.shared_pages(256) > 0);
        assert_eq!(cfg.extent(1), 4);
    }
}
