//! # ccl-apps — the paper's evaluation applications
//!
//! The four parallel programs of Table 1, ported to the DSM API:
//!
//! | Program | Origin | Synchronization |
//! |---|---|---|
//! | [`fft3d`] | NAS 3D Fast Fourier Transform | barriers |
//! | [`mg`] | NAS multigrid Poisson solver | barriers |
//! | [`shallow`] | NCAR shallow-water weather kernel | barriers |
//! | [`water`] | SPLASH molecular dynamics | locks **and** barriers |
//!
//! Each module exposes a `Config` (with `paper()`-scaled and `tiny()`
//! test instances), a `run(dsm, &cfg) -> u64` entry point returning a
//! bit-exact digest, and a `reference_digest` serial implementation with
//! identical arithmetic that pins the parallel kernel's output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod fft3d;
pub mod mg;
pub mod shallow;
pub mod water;

use ccl_core::Dsm;

/// Which benchmark application to run (harness plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// NAS 3D-FFT.
    Fft3d,
    /// NAS MG.
    Mg,
    /// NCAR Shallow.
    Shallow,
    /// SPLASH Water.
    Water,
}

impl App {
    /// All four applications, in the paper's order.
    pub const ALL: [App; 4] = [App::Fft3d, App::Mg, App::Shallow, App::Water];

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            App::Fft3d => "3D-FFT",
            App::Mg => "MG",
            App::Shallow => "Shallow",
            App::Water => "Water",
        }
    }

    /// Shared pages the paper-scale instance needs.
    pub fn paper_pages(self, page_size: usize) -> u32 {
        match self {
            App::Fft3d => fft3d::FftConfig::paper().shared_pages(page_size),
            App::Mg => mg::MgConfig::paper().shared_pages(page_size),
            App::Shallow => shallow::ShallowConfig::paper().shared_pages(page_size),
            App::Water => water::WaterConfig::paper().shared_pages(page_size),
        }
    }

    /// Run the paper-scale instance.
    pub fn run_paper(self, dsm: &mut Dsm) -> u64 {
        match self {
            App::Fft3d => fft3d::run(dsm, &fft3d::FftConfig::paper()),
            App::Mg => mg::run(dsm, &mg::MgConfig::paper()),
            App::Shallow => shallow::run(dsm, &shallow::ShallowConfig::paper()),
            App::Water => water::run(dsm, &water::WaterConfig::paper()),
        }
    }

    /// Shared pages the tiny test instance needs.
    pub fn tiny_pages(self, page_size: usize) -> u32 {
        match self {
            App::Fft3d => fft3d::FftConfig::tiny().shared_pages(page_size),
            App::Mg => mg::MgConfig::tiny().shared_pages(page_size),
            App::Shallow => shallow::ShallowConfig::tiny().shared_pages(page_size),
            App::Water => water::WaterConfig::tiny().shared_pages(page_size),
        }
    }

    /// Run the tiny test instance.
    pub fn run_tiny(self, dsm: &mut Dsm) -> u64 {
        match self {
            App::Fft3d => fft3d::run(dsm, &fft3d::FftConfig::tiny()),
            App::Mg => mg::run(dsm, &mg::MgConfig::tiny()),
            App::Shallow => shallow::run(dsm, &shallow::ShallowConfig::tiny()),
            App::Water => water::run(dsm, &water::WaterConfig::tiny()),
        }
    }

    /// Serial reference digest of the tiny instance.
    pub fn tiny_reference(self) -> u64 {
        match self {
            App::Fft3d => fft3d::reference_digest(&fft3d::FftConfig::tiny()),
            App::Mg => mg::reference_digest(&mg::MgConfig::tiny()),
            App::Shallow => shallow::reference_digest(&shallow::ShallowConfig::tiny()),
            App::Water => water::reference_digest(&water::WaterConfig::tiny()),
        }
    }

    /// Table 1's "Synchronization" column.
    pub fn sync_kind(self) -> &'static str {
        match self {
            App::Water => "locks and barriers",
            _ => "barriers",
        }
    }

    /// Table 1's "Data Set Size" column (paper-scale instance).
    pub fn data_set(self) -> String {
        match self {
            App::Fft3d => {
                let c = fft3d::FftConfig::paper();
                format!(
                    "{}x{}x{} grid, {} iterations",
                    c.nx, c.ny, c.nz, c.iterations
                )
            }
            App::Mg => {
                let c = mg::MgConfig::paper();
                format!("{n}x{n}x{n} grid, {} V-cycles", c.cycles, n = c.n)
            }
            App::Shallow => {
                let c = shallow::ShallowConfig::paper();
                format!("{n}x{n} grids, {} timesteps", c.steps, n = c.n)
            }
            App::Water => {
                let c = water::WaterConfig::paper();
                format!("{} molecules, {} timesteps", c.molecules, c.steps)
            }
        }
    }
}
