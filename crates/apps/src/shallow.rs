//! Shallow — the NCAR shallow-water weather prediction kernel.
//!
//! Thirteen N×N periodic grids (velocities u/v, pressure p, their old
//! and new generations, and the intermediates cu/cv/z/h) updated by
//! finite-difference stencils in three barrier-separated phases per
//! timestep, row-partitioned across the nodes — the structure of the
//! original Fortran benchmark the paper runs.

use ccl_core::{ArrayHandle, Dsm};

use crate::common::Checksum;

/// Shallow-water problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShallowConfig {
    /// Grid extent per dimension.
    pub n: usize,
    /// Number of timesteps.
    pub steps: usize,
}

impl ShallowConfig {
    /// Harness-scale instance of the paper's data set (256x256 grid).
    pub fn paper() -> ShallowConfig {
        ShallowConfig { n: 256, steps: 12 }
    }

    /// Tiny instance for tests.
    pub fn tiny() -> ShallowConfig {
        ShallowConfig { n: 16, steps: 3 }
    }

    /// Points per grid.
    pub fn points(&self) -> usize {
        self.n * self.n
    }

    /// Shared pages for the 13 grids.
    pub fn shared_pages(&self, page_size: usize) -> u32 {
        let per = (self.points() * 8).div_ceil(page_size) as u32 + 1;
        13 * per
    }
}

// Physical constants of the original benchmark.
const DT: f64 = 90.0;
const DX: f64 = 100_000.0;
const DY: f64 = 100_000.0;
const A: f64 = 1_000_000.0;
const ALPHA: f64 = 0.001;
const EL: f64 = 2_000_000.0; // domain extent used by the initial field
const PCF: f64 = 3.0;

#[inline]
fn at(n: usize, x: usize, y: usize) -> usize {
    y * n + x
}

#[inline]
fn wrap(n: usize, i: usize, d: isize) -> usize {
    (i as isize + d).rem_euclid(n as isize) as usize
}

/// Initial stream-function-derived fields, identical on every node.
pub fn initial_fields(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let di = 2.0 * std::f64::consts::PI / n as f64;
    let dj = 2.0 * std::f64::consts::PI / n as f64;
    let mut psi = vec![0.0; (n + 1) * (n + 1)];
    for j in 0..=n {
        for i in 0..=n {
            psi[j * (n + 1) + i] =
                A * ((i as f64 + 0.5) * di).sin() * ((j as f64 + 0.5) * dj).sin();
        }
    }
    let mut u = vec![0.0; n * n];
    let mut v = vec![0.0; n * n];
    let mut p = vec![0.0; n * n];
    for y in 0..n {
        for x in 0..n {
            u[at(n, x, y)] = -(psi[(y + 1) * (n + 1) + x] - psi[y * (n + 1) + x]) / DY;
            v[at(n, x, y)] = (psi[y * (n + 1) + x + 1] - psi[y * (n + 1) + x]) / DX;
            // Positive-definite pressure, as in the original kernel
            // (the z-field divides by a 4-point sum of p).
            p[at(n, x, y)] =
                PCF * (((x as f64) * di).cos() + ((y as f64) * dj).cos()) * (EL / 1000.0)
                    + 50_000.0;
        }
    }
    (u, v, p)
}

struct Grids {
    u: ArrayHandle<f64>,
    v: ArrayHandle<f64>,
    p: ArrayHandle<f64>,
    unew: ArrayHandle<f64>,
    vnew: ArrayHandle<f64>,
    pnew: ArrayHandle<f64>,
    uold: ArrayHandle<f64>,
    vold: ArrayHandle<f64>,
    pold: ArrayHandle<f64>,
    cu: ArrayHandle<f64>,
    cv: ArrayHandle<f64>,
    z: ArrayHandle<f64>,
    h: ArrayHandle<f64>,
}

fn my_rows(n: usize, me: usize, nodes: usize) -> (usize, usize) {
    let per = n.div_ceil(nodes);
    ((me * per).min(n), ((me + 1) * per).min(n))
}

/// Run Shallow on the DSM; every node returns the same digest.
pub fn run(dsm: &mut Dsm, cfg: &ShallowConfig) -> u64 {
    let n = cfg.n;
    let me = dsm.me();
    let nodes = dsm.nodes();
    let g = Grids {
        u: dsm.alloc_blocked::<f64>(cfg.points()),
        v: dsm.alloc_blocked::<f64>(cfg.points()),
        p: dsm.alloc_blocked::<f64>(cfg.points()),
        unew: dsm.alloc_blocked::<f64>(cfg.points()),
        vnew: dsm.alloc_blocked::<f64>(cfg.points()),
        pnew: dsm.alloc_blocked::<f64>(cfg.points()),
        uold: dsm.alloc_blocked::<f64>(cfg.points()),
        vold: dsm.alloc_blocked::<f64>(cfg.points()),
        pold: dsm.alloc_blocked::<f64>(cfg.points()),
        cu: dsm.alloc_blocked::<f64>(cfg.points()),
        cv: dsm.alloc_blocked::<f64>(cfg.points()),
        z: dsm.alloc_blocked::<f64>(cfg.points()),
        h: dsm.alloc_blocked::<f64>(cfg.points()),
    };
    let (ylo, yhi) = my_rows(n, me, nodes);

    // Initialization: each node writes its rows of the identical field.
    let (u0, v0, p0) = initial_fields(n);
    for y in ylo..yhi {
        let i = at(n, 0, y);
        dsm.write_slice(&g.u, i, &u0[i..i + n]);
        dsm.write_slice(&g.v, i, &v0[i..i + n]);
        dsm.write_slice(&g.p, i, &p0[i..i + n]);
        dsm.write_slice(&g.uold, i, &u0[i..i + n]);
        dsm.write_slice(&g.vold, i, &v0[i..i + n]);
        dsm.write_slice(&g.pold, i, &p0[i..i + n]);
    }
    dsm.barrier();

    let fsdx = 4.0 / DX;
    let fsdy = 4.0 / DY;
    let tdts8 = DT * DT / 8.0; // placeholder-free constants as in the kernel
    let tdtsdx = DT / DX;
    let tdtsdy = DT / DY;

    for _step in 0..cfg.steps {
        // Phase 1: cu, cv, z, h.
        for y in ylo..yhi {
            for x in 0..n {
                let xe = wrap(n, x, 1);
                let xw = wrap(n, x, -1);
                let yn = wrap(n, y, 1);
                let ys = wrap(n, y, -1);
                let p_c = dsm.read(&g.p, at(n, x, y));
                let p_w = dsm.read(&g.p, at(n, xw, y));
                let p_s = dsm.read(&g.p, at(n, x, ys));
                let u_c = dsm.read(&g.u, at(n, x, y));
                let u_e = dsm.read(&g.u, at(n, xe, y));
                let v_c = dsm.read(&g.v, at(n, x, y));
                let v_n = dsm.read(&g.v, at(n, x, yn));
                dsm.write(&g.cu, at(n, x, y), 0.5 * (p_c + p_w) * u_c);
                dsm.write(&g.cv, at(n, x, y), 0.5 * (p_c + p_s) * v_c);
                let zval = (fsdx * (v_c - dsm.read(&g.v, at(n, xw, y)))
                    - fsdy * (u_c - dsm.read(&g.u, at(n, x, ys))))
                    / (p_w + p_c + p_s + dsm.read(&g.p, at(n, xw, ys)));
                dsm.write(&g.z, at(n, x, y), zval);
                let hval = p_c + 0.25 * (u_e * u_e + u_c * u_c + v_n * v_n + v_c * v_c);
                dsm.write(&g.h, at(n, x, y), hval);
            }
            dsm.charge_flops(24 * n as u64);
        }
        dsm.barrier();

        // Phase 2: new generation from old + intermediates.
        for y in ylo..yhi {
            for x in 0..n {
                let xe = wrap(n, x, 1);
                let xw = wrap(n, x, -1);
                let yn = wrap(n, y, 1);
                let ys = wrap(n, y, -1);
                let unew = dsm.read(&g.uold, at(n, x, y))
                    + tdts8
                        * (dsm.read(&g.z, at(n, xe, y)) + dsm.read(&g.z, at(n, x, y)))
                        * (dsm.read(&g.cv, at(n, xe, y))
                            + dsm.read(&g.cv, at(n, xe, ys))
                            + dsm.read(&g.cv, at(n, x, ys))
                            + dsm.read(&g.cv, at(n, x, y)))
                        / 4.0
                    - tdtsdx * (dsm.read(&g.h, at(n, x, y)) - dsm.read(&g.h, at(n, xw, y)));
                let vnew = dsm.read(&g.vold, at(n, x, y))
                    - tdts8
                        * (dsm.read(&g.z, at(n, x, yn)) + dsm.read(&g.z, at(n, x, y)))
                        * (dsm.read(&g.cu, at(n, x, yn))
                            + dsm.read(&g.cu, at(n, xw, yn))
                            + dsm.read(&g.cu, at(n, xw, y))
                            + dsm.read(&g.cu, at(n, x, y)))
                        / 4.0
                    - tdtsdy * (dsm.read(&g.h, at(n, x, yn)) - dsm.read(&g.h, at(n, x, y)));
                let pnew = dsm.read(&g.pold, at(n, x, y))
                    - tdtsdx * (dsm.read(&g.cu, at(n, xe, y)) - dsm.read(&g.cu, at(n, x, y)))
                    - tdtsdy * (dsm.read(&g.cv, at(n, x, yn)) - dsm.read(&g.cv, at(n, x, y)));
                dsm.write(&g.unew, at(n, x, y), unew);
                dsm.write(&g.vnew, at(n, x, y), vnew);
                dsm.write(&g.pnew, at(n, x, y), pnew);
            }
            dsm.charge_flops(30 * n as u64);
        }
        dsm.barrier();

        // Phase 3: time smoothing and generation shift (row-local).
        for y in ylo..yhi {
            for x in 0..n {
                let i = at(n, x, y);
                let (uc, vc, pc) = (dsm.read(&g.u, i), dsm.read(&g.v, i), dsm.read(&g.p, i));
                let (un, vn, pn) = (
                    dsm.read(&g.unew, i),
                    dsm.read(&g.vnew, i),
                    dsm.read(&g.pnew, i),
                );
                let (uo, vo, po) = (
                    dsm.read(&g.uold, i),
                    dsm.read(&g.vold, i),
                    dsm.read(&g.pold, i),
                );
                dsm.write(&g.uold, i, uc + ALPHA * (un - 2.0 * uc + uo));
                dsm.write(&g.vold, i, vc + ALPHA * (vn - 2.0 * vc + vo));
                dsm.write(&g.pold, i, pc + ALPHA * (pn - 2.0 * pc + po));
                dsm.write(&g.u, i, un);
                dsm.write(&g.v, i, vn);
                dsm.write(&g.p, i, pn);
            }
            dsm.charge_flops(18 * n as u64);
        }
        dsm.barrier();
    }

    let mut sum = Checksum::new();
    let stride = (cfg.points() / 64).max(1);
    let mut i = 0;
    while i < cfg.points() {
        sum.push_f64(dsm.read(&g.p, i));
        sum.push_f64(dsm.read(&g.u, i));
        sum.push_f64(dsm.read(&g.v, i));
        i += stride;
    }
    dsm.barrier();
    sum.digest()
}

/// Serial reference with identical arithmetic.
pub fn reference_digest(cfg: &ShallowConfig) -> u64 {
    let n = cfg.n;
    let (mut u, mut v, mut p) = initial_fields(n);
    let (mut uold, mut vold, mut pold) = (u.clone(), v.clone(), p.clone());
    let mut cu = vec![0.0; n * n];
    let mut cv = vec![0.0; n * n];
    let mut z = vec![0.0; n * n];
    let mut h = vec![0.0; n * n];
    let fsdx = 4.0 / DX;
    let fsdy = 4.0 / DY;
    let tdts8 = DT * DT / 8.0;
    let tdtsdx = DT / DX;
    let tdtsdy = DT / DY;
    for _ in 0..cfg.steps {
        for y in 0..n {
            for x in 0..n {
                let xe = wrap(n, x, 1);
                let xw = wrap(n, x, -1);
                let yn = wrap(n, y, 1);
                let ys = wrap(n, y, -1);
                cu[at(n, x, y)] = 0.5 * (p[at(n, x, y)] + p[at(n, xw, y)]) * u[at(n, x, y)];
                cv[at(n, x, y)] = 0.5 * (p[at(n, x, y)] + p[at(n, x, ys)]) * v[at(n, x, y)];
                z[at(n, x, y)] = (fsdx * (v[at(n, x, y)] - v[at(n, xw, y)])
                    - fsdy * (u[at(n, x, y)] - u[at(n, x, ys)]))
                    / (p[at(n, xw, y)] + p[at(n, x, y)] + p[at(n, x, ys)] + p[at(n, xw, ys)]);
                h[at(n, x, y)] = p[at(n, x, y)]
                    + 0.25
                        * (u[at(n, xe, y)] * u[at(n, xe, y)]
                            + u[at(n, x, y)] * u[at(n, x, y)]
                            + v[at(n, x, yn)] * v[at(n, x, yn)]
                            + v[at(n, x, y)] * v[at(n, x, y)]);
            }
        }
        let mut unew = vec![0.0; n * n];
        let mut vnew = vec![0.0; n * n];
        let mut pnew = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                let xe = wrap(n, x, 1);
                let xw = wrap(n, x, -1);
                let yn = wrap(n, y, 1);
                let ys = wrap(n, y, -1);
                unew[at(n, x, y)] = uold[at(n, x, y)]
                    + tdts8
                        * (z[at(n, xe, y)] + z[at(n, x, y)])
                        * (cv[at(n, xe, y)]
                            + cv[at(n, xe, ys)]
                            + cv[at(n, x, ys)]
                            + cv[at(n, x, y)])
                        / 4.0
                    - tdtsdx * (h[at(n, x, y)] - h[at(n, xw, y)]);
                vnew[at(n, x, y)] = vold[at(n, x, y)]
                    - tdts8
                        * (z[at(n, x, yn)] + z[at(n, x, y)])
                        * (cu[at(n, x, yn)]
                            + cu[at(n, xw, yn)]
                            + cu[at(n, xw, y)]
                            + cu[at(n, x, y)])
                        / 4.0
                    - tdtsdy * (h[at(n, x, yn)] - h[at(n, x, y)]);
                pnew[at(n, x, y)] = pold[at(n, x, y)]
                    - tdtsdx * (cu[at(n, xe, y)] - cu[at(n, x, y)])
                    - tdtsdy * (cv[at(n, x, yn)] - cv[at(n, x, y)]);
            }
        }
        for i in 0..n * n {
            uold[i] = u[i] + ALPHA * (unew[i] - 2.0 * u[i] + uold[i]);
            vold[i] = v[i] + ALPHA * (vnew[i] - 2.0 * v[i] + vold[i]);
            pold[i] = p[i] + ALPHA * (pnew[i] - 2.0 * p[i] + pold[i]);
            u[i] = unew[i];
            v[i] = vnew[i];
            p[i] = pnew[i];
        }
    }
    let mut sum = Checksum::new();
    let stride = (cfg.points() / 64).max(1);
    let mut i = 0;
    while i < cfg.points() {
        sum.push_f64(p[i]);
        sum.push_f64(u[i]);
        sum.push_f64(v[i]);
        i += stride;
    }
    sum.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let cfg = ShallowConfig::tiny();
        assert_eq!(reference_digest(&cfg), reference_digest(&cfg));
    }

    #[test]
    fn initial_fields_have_structure() {
        let (u, v, p) = initial_fields(8);
        assert!(u.iter().any(|&x| x != 0.0));
        assert!(v.iter().any(|&x| x != 0.0));
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn wrap_is_periodic() {
        assert_eq!(wrap(8, 0, -1), 7);
        assert_eq!(wrap(8, 7, 1), 0);
        assert_eq!(wrap(8, 3, 0), 3);
    }

    #[test]
    fn fields_stay_finite() {
        // A few steps must not blow up (CFL-stable constants).
        let cfg = ShallowConfig { n: 16, steps: 10 };
        let d1 = reference_digest(&cfg);
        let d2 = reference_digest(&ShallowConfig { n: 16, steps: 11 });
        assert_ne!(d1, d2, "state must evolve");
    }
}
