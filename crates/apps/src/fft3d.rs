//! 3D-FFT — the NAS FT kernel (3-dimensional Fast Fourier Transform).
//!
//! The complex grid is stored as two shared f64 arrays (real and
//! imaginary), laid out `index(x,y,z) = (x*ny + y)*nz + z` and block-
//! distributed by x-slabs, so each node's slab is homed locally.
//!
//! Per iteration (NAS FT structure): a pointwise *evolve* step and 1-D
//! FFTs along z and y on the local x-slab; a barrier; then a
//! **transpose** into a second, y-slab-distributed array combined with
//! the x-direction FFTs — every node *reads* pencils that cross all
//! remote slabs and *writes only its own* slab of the transposed array;
//! finally the data is transposed back the same way. The all-to-all
//! read traffic (whole-array page fetches every iteration) makes 3D-FFT
//! the most communication-intensive program in the paper's suite
//! (largest ML overhead and log, largest recovery savings).

use ccl_core::{ArrayHandle, Dsm};

use crate::common::{Checksum, SplitMix64};

/// 3D-FFT problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct FftConfig {
    /// Grid extent in x (power of two).
    pub nx: usize,
    /// Grid extent in y (power of two).
    pub ny: usize,
    /// Grid extent in z (power of two).
    pub nz: usize,
    /// Number of evolve+FFT iterations.
    pub iterations: usize,
}

impl FftConfig {
    /// Harness-scale instance of the paper's data set (64x64x32 grid).
    pub fn paper() -> FftConfig {
        FftConfig {
            nx: 64,
            ny: 64,
            nz: 32,
            iterations: 5,
        }
    }

    /// Tiny instance for tests.
    pub fn tiny() -> FftConfig {
        FftConfig {
            nx: 8,
            ny: 8,
            nz: 8,
            iterations: 2,
        }
    }

    /// Total grid points.
    pub fn points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Shared pages needed (four f64 arrays: the grid and its transpose,
    /// real and imaginary, page-aligned each).
    pub fn shared_pages(&self, page_size: usize) -> u32 {
        let per_array = (self.points() * 8).div_ceil(page_size) as u32;
        4 * (per_array + 1)
    }
}

#[inline]
fn index(cfg: &FftConfig, x: usize, y: usize, z: usize) -> usize {
    (x * cfg.ny + y) * cfg.nz + z
}

/// In-place iterative radix-2 complex FFT.
///
/// Exposed so the serial reference and property tests can exercise the
/// exact arithmetic the parallel kernel runs.
pub fn fft_pencil(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert!(n.is_power_of_two(), "pencil length must be a power of two");
    assert_eq!(n, im.len());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cr - vi0 * ci;
                let vi = vr0 * ci + vi0 * cr;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Flop charge for one pencil FFT of length `n` (5 n log2 n, the
/// standard FFT operation count).
fn fft_flops(n: usize) -> u64 {
    5 * n as u64 * n.trailing_zeros() as u64
}

/// Deterministic initial value of grid point `i` (used by both the
/// parallel kernel and the serial reference).
pub fn initial_value(i: usize) -> (f64, f64) {
    let mut g = SplitMix64::new(0xF17_0000 ^ i as u64);
    (g.next_signed(), g.next_signed())
}

/// The evolve factor applied at iteration `it` to grid point `i`.
pub fn evolve_factor(it: usize, i: usize) -> (f64, f64) {
    let phase = (i as f64 * 0.001 + it as f64 * 0.1).sin() * 0.01;
    (phase.cos(), phase.sin())
}

struct Grids {
    /// x-major array `(x*ny + y)*nz + z`, blocked by x-slabs.
    a_re: ArrayHandle<f64>,
    a_im: ArrayHandle<f64>,
    /// y-major transpose array `(y*nx + x)*nz + z`, blocked by y-slabs.
    b_re: ArrayHandle<f64>,
    b_im: ArrayHandle<f64>,
}

#[inline]
fn index_b(cfg: &FftConfig, x: usize, y: usize, z: usize) -> usize {
    (y * cfg.nx + x) * cfg.nz + z
}

/// Run 3D-FFT on the DSM; every node returns the same digest.
pub fn run(dsm: &mut Dsm, cfg: &FftConfig) -> u64 {
    let n_nodes = dsm.nodes();
    let me = dsm.me();
    assert_eq!(cfg.nx % n_nodes, 0, "nx must divide by node count");
    assert_eq!(cfg.ny % n_nodes, 0, "ny must divide by node count");
    let grids = Grids {
        a_re: dsm.alloc_blocked::<f64>(cfg.points()),
        a_im: dsm.alloc_blocked::<f64>(cfg.points()),
        b_re: dsm.alloc_blocked::<f64>(cfg.points()),
        b_im: dsm.alloc_blocked::<f64>(cfg.points()),
    };
    let slab = cfg.nx / n_nodes;
    let x0 = me * slab;
    let y_chunk = cfg.ny / n_nodes;
    let y0 = me * y_chunk;

    // Initialize own slab.
    for x in x0..x0 + slab {
        for y in 0..cfg.ny {
            let base = index(cfg, x, y, 0);
            let mut re = vec![0.0; cfg.nz];
            let mut im = vec![0.0; cfg.nz];
            for z in 0..cfg.nz {
                let (r, i) = initial_value(base + z);
                re[z] = r;
                im[z] = i;
            }
            dsm.write_slice(&grids.a_re, base, &re);
            dsm.write_slice(&grids.a_im, base, &im);
        }
    }
    dsm.barrier();

    let mut zr = vec![0.0; cfg.nz];
    let mut zi = vec![0.0; cfg.nz];
    let mut yr = vec![0.0; cfg.ny];
    let mut yi = vec![0.0; cfg.ny];
    let mut xr = vec![0.0; cfg.nx];
    let mut xi = vec![0.0; cfg.nx];

    for it in 0..cfg.iterations {
        // Phase 1 (local): evolve + z and y FFTs on the own x-slab.
        for x in x0..x0 + slab {
            for y in 0..cfg.ny {
                let base = index(cfg, x, y, 0);
                dsm.read_slice(&grids.a_re, base, &mut zr);
                dsm.read_slice(&grids.a_im, base, &mut zi);
                for z in 0..cfg.nz {
                    let (fr, fi) = evolve_factor(it, base + z);
                    let (r, i) = (zr[z], zi[z]);
                    zr[z] = r * fr - i * fi;
                    zi[z] = r * fi + i * fr;
                }
                dsm.charge_flops(6 * cfg.nz as u64);
                fft_pencil(&mut zr, &mut zi);
                dsm.charge_flops(fft_flops(cfg.nz));
                dsm.write_slice(&grids.a_re, base, &zr);
                dsm.write_slice(&grids.a_im, base, &zi);
            }
            for z in 0..cfg.nz {
                for y in 0..cfg.ny {
                    let i = index(cfg, x, y, z);
                    yr[y] = dsm.read(&grids.a_re, i);
                    yi[y] = dsm.read(&grids.a_im, i);
                }
                fft_pencil(&mut yr, &mut yi);
                dsm.charge_flops(fft_flops(cfg.ny));
                for y in 0..cfg.ny {
                    let i = index(cfg, x, y, z);
                    dsm.write(&grids.a_re, i, yr[y]);
                    dsm.write(&grids.a_im, i, yi[y]);
                }
            }
        }
        dsm.barrier();
        // Phase 2: transpose + x FFTs. Read x-pencils across every
        // remote slab of A; FFT; write into the *own* y-slab of B.
        for y in y0..y0 + y_chunk {
            for z in 0..cfg.nz {
                for x in 0..cfg.nx {
                    let i = index(cfg, x, y, z);
                    xr[x] = dsm.read(&grids.a_re, i);
                    xi[x] = dsm.read(&grids.a_im, i);
                }
                fft_pencil(&mut xr, &mut xi);
                dsm.charge_flops(fft_flops(cfg.nx));
                for x in 0..cfg.nx {
                    let i = index_b(cfg, x, y, z);
                    dsm.write(&grids.b_re, i, xr[x]);
                    dsm.write(&grids.b_im, i, xi[x]);
                }
            }
        }
        dsm.barrier();
        // Phase 3: transpose back — read y-pencils across remote slabs
        // of B, write the own x-slab of A.
        for x in x0..x0 + slab {
            for z in 0..cfg.nz {
                for y in 0..cfg.ny {
                    let i = index_b(cfg, x, y, z);
                    yr[y] = dsm.read(&grids.b_re, i);
                    yi[y] = dsm.read(&grids.b_im, i);
                }
                dsm.charge_flops(2 * cfg.ny as u64);
                for y in 0..cfg.ny {
                    let i = index(cfg, x, y, z);
                    dsm.write(&grids.a_re, i, yr[y]);
                    dsm.write(&grids.a_im, i, yi[y]);
                }
            }
        }
        dsm.barrier();
    }

    // Every node digests the same probe subset (also exercises the
    // coherence of the final state).
    let mut sum = Checksum::new();
    let stride = (cfg.points() / 64).max(1);
    let mut i = 0;
    while i < cfg.points() {
        sum.push_f64(dsm.read(&grids.a_re, i));
        sum.push_f64(dsm.read(&grids.a_im, i));
        i += stride;
    }
    dsm.barrier();
    sum.digest()
}

/// Serial reference: identical arithmetic, no DSM. Used by tests to pin
/// the parallel kernel's output bit-for-bit.
pub fn reference_digest(cfg: &FftConfig) -> u64 {
    let n = cfg.points();
    let mut re = vec![0.0f64; n];
    let mut im = vec![0.0f64; n];
    for (i, (r, v)) in (0..n).map(initial_value).enumerate() {
        re[i] = r;
        im[i] = v;
    }
    let mut pr;
    let mut pi;
    for it in 0..cfg.iterations {
        for x in 0..cfg.nx {
            for y in 0..cfg.ny {
                let base = index(cfg, x, y, 0);
                for z in 0..cfg.nz {
                    let (fr, fi) = evolve_factor(it, base + z);
                    let (r, i) = (re[base + z], im[base + z]);
                    re[base + z] = r * fr - i * fi;
                    im[base + z] = r * fi + i * fr;
                }
                let (a, b) = (&mut re[base..base + cfg.nz], &mut im[base..base + cfg.nz]);
                fft_pencil(a, b);
            }
            for z in 0..cfg.nz {
                pr = (0..cfg.ny)
                    .map(|y| re[index(cfg, x, y, z)])
                    .collect::<Vec<_>>();
                pi = (0..cfg.ny)
                    .map(|y| im[index(cfg, x, y, z)])
                    .collect::<Vec<_>>();
                fft_pencil(&mut pr, &mut pi);
                for y in 0..cfg.ny {
                    re[index(cfg, x, y, z)] = pr[y];
                    im[index(cfg, x, y, z)] = pi[y];
                }
            }
        }
        for y in 0..cfg.ny {
            for z in 0..cfg.nz {
                pr = (0..cfg.nx)
                    .map(|x| re[index(cfg, x, y, z)])
                    .collect::<Vec<_>>();
                pi = (0..cfg.nx)
                    .map(|x| im[index(cfg, x, y, z)])
                    .collect::<Vec<_>>();
                fft_pencil(&mut pr, &mut pi);
                for x in 0..cfg.nx {
                    re[index(cfg, x, y, z)] = pr[x];
                    im[index(cfg, x, y, z)] = pi[x];
                }
            }
        }
    }
    let mut sum = Checksum::new();
    let stride = (n / 64).max(1);
    let mut i = 0;
    while i < n {
        sum.push_f64(re[i]);
        sum.push_f64(im[i]);
        i += stride;
    }
    sum.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_pencil(&mut re, &mut im);
        for i in 0..8 {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy_scaling() {
        let mut g = SplitMix64::new(3);
        let mut re: Vec<f64> = (0..16).map(|_| g.next_signed()).collect();
        let mut im: Vec<f64> = (0..16).map(|_| g.next_signed()).collect();
        let e_in: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        fft_pencil(&mut re, &mut im);
        let e_out: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!((e_out - 16.0 * e_in).abs() < 1e-9 * e_out.abs().max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft_pencil(&mut re, &mut im);
    }

    #[test]
    fn reference_is_deterministic() {
        let cfg = FftConfig::tiny();
        assert_eq!(reference_digest(&cfg), reference_digest(&cfg));
    }

    #[test]
    fn config_page_math() {
        let cfg = FftConfig::tiny();
        assert_eq!(cfg.points(), 512);
        assert!(cfg.shared_pages(256) >= 2 * (512 * 8 / 256) as u32);
    }
}
