//! # obsv — the run observatory
//!
//! Everything that turns a simulated-cluster run into reviewable
//! artifacts:
//!
//! * [`chrome`] — causal trace export: a [`ccl_core::RunOutput`]
//!   becomes a Chrome-trace / Perfetto JSON document with per-node
//!   tracks, phase-annotated run slices, and send→receive flow arrows
//!   that resolve to individual envelopes via the reliable layer's
//!   per-link sequence numbers.
//! * [`json`] — the dependency-free JSON model, writer, and parser the
//!   pipeline is built on (the container has no registry access, so no
//!   serde).
//! * [`report`] — the paper-artifact pipeline: run the full evaluation
//!   matrix, emit the Table 2 / Figure 4 / Figure 5 Markdown (spliced
//!   into `EXPERIMENTS.md`), and gate the machine-readable report
//!   against a committed baseline with explicit, reasoned tolerance
//!   annotations for the few legitimately nondeterministic fields.
//!
//! The `report` binary (`cargo run --release -p obsv --bin report`)
//! drives all three.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blame;
pub mod chrome;
pub mod json;
pub mod report;

pub use blame::{analyze, blame_json, Blame, BlameObj};
pub use chrome::chrome_trace;
pub use json::Json;
pub use report::{collect, compare, report_json, trace_fingerprint, Report, Scale};
