//! Chrome-trace / Perfetto export of a run's telemetry.
//!
//! One cluster run becomes one JSON document in the Chrome Trace Event
//! format (the `traceEvents` array flavor), loadable in the Perfetto UI
//! (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! * each node is a thread (`tid` = node id) of one process;
//! * the node's whole run is a `"X"` slice whose args carry the phase
//!   breakdown — compute, wait, disk, and the fault-hidden time
//!   (disk work overlapped behind communication) attributed to the span;
//! * the recovery window (crash → resumed live) is a nested slice;
//! * every coherence event is an instant (`"i"`) named by its
//!   [`TraceKind::label`];
//! * every accepted message is a causal edge: the sender's `MsgSend`
//!   emits a zero-width slice plus a flow-start (`"s"`), the receiver's
//!   `MsgRecv` a zero-width slice plus a flow-finish (`"f"`), joined by
//!   an id derived from the per-link sequence number stamped by the
//!   reliable layer — so arrows in the UI resolve to the exact
//!   envelope, not just to the node pair.
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision kept in the fraction.

use std::fmt::Write as _;

use ccl_core::{LogObj, NodeOutput, RunOutput, TraceKind};

use crate::blame::{Blame, BlameObj, SegmentKind};

/// Identity of one message envelope, shared by its send and receive
/// halves: per-link sequence numbers make `(src, dst, seq)` unique.
fn flow_id(src: usize, dst: usize, seq: u64) -> String {
    format!("{src}>{dst}#{seq}")
}

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(body);
}

fn node_events<R>(out: &mut String, first: &mut bool, n: &NodeOutput<R>) {
    let tid = n.node;
    push_event(
        out,
        first,
        &format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"node {tid}\"}}}}"
        ),
    );
    // The whole run as one slice; its args attribute the node's time,
    // including the fault-hidden portion (disk writes the CCL overlap
    // hid behind communication waits).
    push_event(
        out,
        first,
        &format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":0,\"dur\":{},\
             \"name\":\"node {tid} run\",\"cat\":\"run\",\"args\":{{\
             \"compute_ns\":{},\"wait_ns\":{},\"disk_ns\":{},\
             \"hidden_ns\":{},\"trace_dropped\":{}}}}}",
            us(n.finish.as_nanos()),
            n.phases.compute.as_nanos(),
            n.phases.wait.as_nanos(),
            n.phases.disk.as_nanos(),
            n.phases.hidden.as_nanos(),
            n.trace_dropped,
        ),
    );
    // Scheduler-health counter track: watermark stalls next to the
    // compute/wait/disk phases, so physical scheduler overhead is
    // visible in the same UI as the virtual-time story. Counters are
    // cumulative per node (0 at start, the final count at finish), and
    // the run slice's args carry the park-duration summary. Both are
    // wall-clock telemetry: they may differ between bit-identical runs,
    // which is fine because the chrome export is a debugging artifact,
    // never a determinism-gated golden.
    push_event(
        out,
        first,
        &format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":0,\
             \"name\":\"sched_stalls node {tid}\",\"cat\":\"sched\",\
             \"args\":{{\"stalls\":0}}}}"
        ),
    );
    push_event(
        out,
        first,
        &format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
             \"name\":\"sched_stalls node {tid}\",\"cat\":\"sched\",\
             \"args\":{{\"stalls\":{}}}}}",
            us(n.finish.as_nanos()),
            n.stats.sched_stalls,
        ),
    );
    push_event(
        out,
        first,
        &format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":0,\"dur\":0,\
             \"name\":\"sched park summary\",\"cat\":\"sched\",\"args\":{{\
             \"parks\":{},\"park_ns_sum\":{},\"park_ns_p50\":{},\
             \"park_ns_p99\":{},\"park_ns_max\":{}}}}}",
            n.metrics.park_ns.count(),
            n.metrics.park_ns.sum(),
            n.metrics.park_ns.quantile(0.5),
            n.metrics.park_ns.quantile(0.99),
            n.metrics.park_ns.max(),
        ),
    );
    if let (Some(crash), Some(exit)) = (n.crashed_at, n.recovery_exit) {
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"name\":\"recovery\",\"cat\":\"recovery\",\"args\":{{}}}}",
                us(crash.as_nanos()),
                us(exit.saturating_since(crash).as_nanos()),
            ),
        );
    }
    for ev in &n.trace {
        let ts = us(ev.at.as_nanos());
        match ev.kind {
            TraceKind::MsgSend {
                to,
                seq,
                bytes,
                msg,
            } => {
                let id = flow_id(tid, to, seq);
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":0,\
                         \"name\":\"{}\",\"cat\":\"msg\",\"args\":{{\"to\":{to},\
                         \"seq\":{seq},\"bytes\":{bytes}}}}}",
                        esc(msg)
                    ),
                );
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"ph\":\"s\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                         \"id\":\"{id}\",\"name\":\"{}\",\"cat\":\"msg\"}}",
                        esc(msg)
                    ),
                );
            }
            TraceKind::MsgRecv { from, seq, msg } => {
                let id = flow_id(from, tid, seq);
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":0,\
                         \"name\":\"{}\",\"cat\":\"msg\",\"args\":{{\"from\":{from},\
                         \"seq\":{seq}}}}}",
                        esc(msg)
                    ),
                );
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                         \"id\":\"{id}\",\"name\":\"{}\",\"cat\":\"msg\"}}",
                        esc(msg)
                    ),
                );
            }
            // Wildcard-free on purpose: a new `TraceKind` variant must
            // be added to this list (or get its own arm) before the
            // crate compiles, so no event kind can silently fall out of
            // the Perfetto export.
            kind @ (TraceKind::ReadFault { .. }
            | TraceKind::WriteFault { .. }
            | TraceKind::PageFetch { .. }
            | TraceKind::DiffFlush { .. }
            | TraceKind::NoticesApplied { .. }
            | TraceKind::LogAppend { .. }
            | TraceKind::LogFlush { .. }
            | TraceKind::Checkpoint { .. }
            | TraceKind::LockAcquire { .. }
            | TraceKind::LockRelease { .. }
            | TraceKind::LockGranted { .. }
            | TraceKind::BarrierEnter { .. }
            | TraceKind::BarrierExit { .. }
            | TraceKind::BarrierReleased { .. }
            | TraceKind::FlushAckWait { .. }
            | TraceKind::Crash
            | TraceKind::RecoveryBegin
            | TraceKind::RecoveryReplay { .. }
            | TraceKind::RecoveryEnd
            | TraceKind::Timeout { .. }
            | TraceKind::Retransmit { .. }
            | TraceKind::DupSuppressed { .. }
            | TraceKind::LogDeviceFailed
            | TraceKind::RecoveryDegraded
            | TraceKind::LogDeviceFull
            | TraceKind::TornTailDetected { .. }
            | TraceKind::CrcMismatch { .. }
            | TraceKind::LogTruncated { .. }
            | TraceKind::CheckpointTaken { .. }
            | TraceKind::HomeRepair { .. }
            | TraceKind::SyncSynthesized { .. }
            | TraceKind::PrefetchIssued { .. }
            | TraceKind::PrefetchHit { .. }
            | TraceKind::PrefetchWasted { .. }
            | TraceKind::HomeMigrated { .. }) => {
                let object = match event_object(&kind) {
                    Some(obj) => format!(",\"object\":\"{}\"", esc(&obj.key())),
                    None => String::new(),
                };
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                         \"name\":\"{}\",\"cat\":\"coherence\",\
                         \"args\":{{\"detail\":\"{}\"{object}}}}}",
                        esc(kind.label()),
                        esc(&format!("{kind:?}")),
                    ),
                );
            }
        }
    }
}

/// The coherence object an instant event is about, when it has one —
/// surfaced as an `object` arg so Perfetto queries can group events by
/// the same keys the blame engine uses.
fn event_object(kind: &TraceKind) -> Option<BlameObj> {
    match *kind {
        TraceKind::ReadFault { page }
        | TraceKind::WriteFault { page }
        | TraceKind::PageFetch { page, .. }
        | TraceKind::PrefetchIssued { page, .. }
        | TraceKind::PrefetchHit { page }
        | TraceKind::PrefetchWasted { page }
        | TraceKind::HomeMigrated { page, .. } => Some(BlameObj::Page(page)),
        TraceKind::LockAcquire { lock, .. }
        | TraceKind::LockRelease { lock }
        | TraceKind::LockGranted { lock, .. } => Some(BlameObj::Lock(lock)),
        TraceKind::BarrierEnter { epoch }
        | TraceKind::BarrierExit { epoch }
        | TraceKind::BarrierReleased { epoch, .. } => Some(BlameObj::Barrier(epoch)),
        TraceKind::FlushAckWait { home, .. } => Some(BlameObj::Flush(home)),
        TraceKind::LogAppend { obj, .. } => Some(match obj {
            LogObj::Page { page } => BlameObj::Page(page),
            LogObj::Lock { lock } => BlameObj::Lock(lock),
            LogObj::Barrier { epoch } => BlameObj::Barrier(epoch),
            LogObj::Meta => BlameObj::Meta,
        }),
        _ => None,
    }
}

/// The blame path as its own Perfetto process (`pid` 1): one
/// contiguous track of slices partitioning `[0, exec_ns]`, each wait
/// slice naming the blamed object and the causing node.
fn blame_events(out: &mut String, first: &mut bool, blame: &Blame) {
    push_event(
        out,
        first,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"blame path\"}}",
    );
    for seg in &blame.critical_path {
        let (name, extra) = match seg.kind {
            SegmentKind::Compute => (format!("compute@node{}", seg.node), String::new()),
            SegmentKind::Recovery => (format!("recovery@node{}", seg.node), String::new()),
            SegmentKind::Wait { obj, causer } => (
                format!("wait {}", obj.key()),
                format!(
                    ",\"object\":\"{}\",\"class\":\"{}\",\"causer\":{causer}",
                    esc(&obj.key()),
                    obj.class()
                ),
            ),
        };
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"blame\",\
                 \"args\":{{\"node\":{}{extra}}}}}",
                us(seg.start_ns),
                us(seg.dur_ns()),
                esc(&name),
                seg.node,
            ),
        );
    }
}

/// Render `out` as a Chrome Trace Event JSON document titled `label`.
pub fn chrome_trace<R>(run: &RunOutput<R>, label: &str) -> String {
    render(run, label, None)
}

/// Like [`chrome_trace`], plus the blame analysis: the critical path
/// is highlighted as its own `blame path` process, and wait slices
/// carry the blamed object and causing node as args.
pub fn chrome_trace_blamed<R>(run: &RunOutput<R>, label: &str, blame: &Blame) -> String {
    render(run, label, Some(blame))
}

fn render<R>(run: &RunOutput<R>, label: &str, blame: Option<&Blame>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"displayTimeUnit\":\"ns\",\"otherData\":{{\"label\":\"{}\",\
         \"process_name\":\"ccl-dsm cluster\"}},\"traceEvents\":[",
        esc(label)
    );
    let mut first = true;
    for n in &run.nodes {
        node_events(&mut out, &mut first, n);
    }
    if let Some(b) = blame {
        blame_events(&mut out, &mut first, b);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use ccl_core::{run_program, ClusterSpec, Protocol};

    fn tiny_run() -> RunOutput<u64> {
        let spec = ClusterSpec::new(3, 12)
            .with_page_size(256)
            .with_protocol(Protocol::Ccl);
        run_program(spec, |dsm| {
            let arr = dsm.alloc::<u64>(8);
            for round in 0..3 {
                if dsm.me() == round % dsm.nodes() {
                    let v = dsm.read(&arr, 0);
                    dsm.write(&arr, 0, v + 1);
                }
                dsm.barrier();
            }
            dsm.read(&arr, 0)
        })
    }

    #[test]
    fn export_is_valid_json_with_matched_flows() {
        let run = tiny_run();
        let text = chrome_trace(&run, "tiny/ccl");
        let doc = json::parse(&text).expect("chrome trace parses as JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());

        let mut starts = Vec::new();
        let mut finishes = Vec::new();
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            match ph {
                "s" => starts.push(ev.get("id").unwrap().as_str().unwrap().to_string()),
                "f" => finishes.push(ev.get("id").unwrap().as_str().unwrap().to_string()),
                _ => {}
            }
        }
        assert!(!finishes.is_empty(), "a CCL run must have message flows");
        // Every finish resolves to exactly one start: the flow id names
        // one concrete envelope.
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        let dup_free = {
            let mut d = sorted.clone();
            d.dedup();
            d.len() == sorted.len()
        };
        assert!(dup_free, "flow ids must be unique per envelope");
        for f in &finishes {
            assert!(
                sorted.binary_search(f).is_ok(),
                "flow finish {f} has no matching send"
            );
        }
        // Each finish's id encodes its own thread as destination.
        for ev in events {
            if ev.get("ph").unwrap().as_str() == Some("f") {
                let id = ev.get("id").unwrap().as_str().unwrap();
                let tid = ev.get("tid").unwrap().as_f64().unwrap() as usize;
                let dst: usize = id[id.find('>').unwrap() + 1..id.find('#').unwrap()]
                    .parse()
                    .unwrap();
                assert_eq!(dst, tid, "flow {id} landed on the wrong thread");
            }
        }
    }

    #[test]
    fn every_accepted_envelope_appears_as_a_flow_finish() {
        let run = tiny_run();
        let total_recv: u64 = run.nodes.iter().map(|n| n.stats.msgs_recv).sum();
        let text = chrome_trace(&run, "tiny/ccl");
        let finishes = text.matches("\"ph\":\"f\"").count() as u64;
        assert_eq!(finishes, total_recv);
    }

    #[test]
    fn every_node_gets_a_sched_counter_track() {
        let run = tiny_run();
        let text = chrome_trace(&run, "tiny/ccl");
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        // Two counter samples per node: 0 at ts=0, the final stall
        // count at the node's finish time.
        assert_eq!(counters.len(), 2 * run.nodes.len());
        for node in &run.nodes {
            let last = counters
                .iter()
                .filter(|e| {
                    e.get("tid").unwrap().as_f64().unwrap() as usize == node.node
                        && e.get("ts").unwrap().as_f64().unwrap() > 0.0
                })
                .count();
            assert_eq!(last, 1, "node {} missing its final sample", node.node);
        }
        // The park summary rides along once per node.
        let parks = events
            .iter()
            .filter(|e| e.get("name").and_then(|s| s.as_str()) == Some("sched park summary"))
            .count();
        assert_eq!(parks, run.nodes.len());
    }

    fn locky_run() -> RunOutput<u64> {
        let spec = ClusterSpec::new(3, 12)
            .with_page_size(256)
            .with_protocol(Protocol::Ccl);
        run_program(spec, |dsm| {
            let arr = dsm.alloc::<u64>(8);
            for _ in 0..3 {
                dsm.acquire(2);
                let v = dsm.read(&arr, 0);
                dsm.write(&arr, 0, v + 1);
                dsm.release(2);
                dsm.barrier();
            }
            dsm.read(&arr, 0)
        })
    }

    #[test]
    fn blame_relevant_kinds_export_with_labels_and_objects() {
        let run = locky_run();
        let text = chrome_trace(&run, "tiny/ccl");
        // The cause-carrying kinds the blame engine reads must appear
        // as instants under their stable labels...
        for label in [
            "lock_granted",
            "lock_acquire",
            "barrier_released",
            "page_fetch",
        ] {
            assert!(
                text.contains(&format!("\"name\":\"{label}\"")),
                "export must contain {label} instants"
            );
        }
        // ...and carry the blame engine's object key as an arg.
        assert!(text.contains("\"object\":\"lock:2\""));
        assert!(text.contains("\"object\":\"barrier:"));
        assert!(text.contains("\"object\":\"page:"));
    }

    #[test]
    fn blamed_export_highlights_a_gapless_critical_path() {
        let run = locky_run();
        let blame = crate::blame::analyze(&run);
        let text = chrome_trace_blamed(&run, "tiny/ccl", &blame);
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let cp: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("blame"))
            .collect();
        assert_eq!(cp.len(), blame.critical_path.len());
        let dur_us: f64 = cp
            .iter()
            .map(|e| e.get("dur").unwrap().as_f64().unwrap())
            .sum();
        let exec_us = blame.exec_ns as f64 / 1000.0;
        assert!(
            (dur_us - exec_us).abs() < 0.5,
            "highlighted path must span the whole makespan ({dur_us} vs {exec_us})"
        );
        // Wait slices carry their blame args.
        assert!(text.contains("\"cat\":\"blame\""));
        assert!(cp
            .iter()
            .any(|e| e.get("args").unwrap().get("causer").is_some()));
        // The plain export has no blame track.
        assert!(!chrome_trace(&run, "tiny/ccl").contains("\"cat\":\"blame\""));
    }

    #[test]
    fn run_slices_carry_phase_args() {
        let run = tiny_run();
        let text = chrome_trace(&run, "tiny/ccl");
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let run_slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("run"))
            .collect();
        assert_eq!(run_slices.len(), run.nodes.len());
        for (slice, node) in run_slices.iter().zip(&run.nodes) {
            let args = slice.get("args").unwrap();
            assert_eq!(
                args.get("hidden_ns").unwrap().as_f64().unwrap() as u64,
                node.phases.hidden.as_nanos()
            );
        }
    }
}
