//! Minimal JSON model, writer, and parser.
//!
//! The container has no registry access, so the report pipeline cannot
//! use serde; this module is the small, dependency-free subset it needs:
//! an ordered object model (so emitted files diff stably), a pretty
//! writer, and a recursive-descent parser for reading baselines back.
//!
//! Precision rule: every number is carried as `f64`, which is exact for
//! integers below 2^53 — all counters in the report fit. Fields that do
//! not (64-bit digests and trace fingerprints) are stored as `"0x..."`
//! hex *strings*, never as numbers.

use std::fmt::Write as _;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see the module precision rule).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (panics on non-objects: that is
    /// a bug in the caller, not a data condition).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value)),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A `u64` carried as a number (exact below 2^53).
    pub fn from_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// A `u64` carried as a `"0x..."` hex string (digests,
    /// fingerprints: full 64-bit precision).
    pub fn from_hex(n: u64) -> Json {
        Json::Str(format!("{n:#018x}"))
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest round-trip float formatting (Rust's default).
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset they tripped at.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // No surrogate-pair support: the report never
                        // emits astral-plane characters.
                        s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parse a `"0x..."` hex string written by [`Json::from_hex`].
pub fn hex_to_u64(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("ccl-report/v1".into()));
        doc.set("count", Json::from_u64(42));
        doc.set("digest", Json::from_hex(0x360c9ba06b0461e6));
        doc.set(
            "list",
            Json::Arr(vec![Json::Num(1.5), Json::Bool(true), Json::Null]),
        );
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn hex_strings_preserve_full_u64() {
        let n = u64::MAX - 3; // not representable as f64
        let j = Json::from_hex(n);
        let text = j.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(hex_to_u64(back.as_str().unwrap()), Some(n));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from_u64(1000).pretty(), "1000\n");
        assert_eq!(Json::Num(1.25).pretty(), "1.25\n");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1}";
        let j = Json::Str(s.into());
        assert_eq!(parse(&j.pretty()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn object_lookup_and_order() {
        let doc = parse(r#"{"b": 1, "a": 2}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(2.0));
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]); // insertion order preserved
    }
}
