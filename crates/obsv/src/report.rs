//! The paper-artifact report pipeline.
//!
//! One invocation runs the full evaluation matrix — every application
//! under every Table 2 protocol, plus the Figure 5 crash-recovery
//! scenario — and turns the results into three artifacts:
//!
//! 1. a machine-readable report document ([`report_json`]) whose
//!    deterministic fields (digests, log bytes, flush counts, message
//!    counts, trace fingerprints) are bit-stable run to run,
//! 2. Markdown tables for the paper's Table 2 / Figure 4 / Figure 5,
//!    spliced into `EXPERIMENTS.md` between `<!-- report:* -->` markers,
//! 3. a regression verdict ([`compare`]) against a committed baseline:
//!    every field must match exactly. The conservative virtual-time
//!    scheduler (DESIGN.md §12) makes the whole matrix — Water's
//!    lock-heavy schedule and crash-recovery timing included — a pure
//!    function of the spec, so the tolerance annotations the baseline
//!    used to carry are gone; the annotation machinery remains for any
//!    future genuinely wall-clock measurement.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, CrashPlan, NodeMetrics, Protocol, RunOutput};

use crate::json::Json;

/// The paper's late-crash scenario: node 1 fails at ~75% of its
/// barriers (Figure 5).
pub const CRASH_FRACTION: f64 = 0.75;

/// Report document schema identifier.
pub const SCHEMA: &str = "ccl-report/v1";

/// Which size the matrix runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's 8-node configuration and workload sizes; minutes of
    /// wall clock. Baseline: `REPORT_paper.json` at the repo root.
    Paper,
    /// 4 nodes, tiny workloads, 256-byte pages; seconds of wall clock.
    /// Baseline: `crates/obsv/smoke_baseline.json`. Used by `verify.sh`.
    Smoke,
}

impl Scale {
    /// Cluster size at this scale.
    pub fn nodes(self) -> usize {
        match self {
            Scale::Paper => ccl_bench::NODES,
            Scale::Smoke => 4,
        }
    }

    /// Lowercase name used in the report document.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Smoke => "smoke",
        }
    }

    /// Crash-recovery trials. One at either scale: the conservative
    /// virtual-time scheduler makes recovery timing a pure function of
    /// the spec, so repeated trials return the same number (detcheck
    /// verifies exactly that) and a median would be waste.
    pub fn trials(self) -> usize {
        1
    }

    /// The cluster spec for `app` under `protocol` at this scale
    /// (shared with the `detcheck` determinism gate).
    pub fn spec(self, app: App, protocol: Protocol) -> ClusterSpec {
        match self {
            Scale::Paper => ccl_bench::paper_spec(app, protocol),
            Scale::Smoke => ClusterSpec::new(4, app.tiny_pages(256) + 4)
                .with_page_size(256)
                .with_protocol(protocol),
        }
    }

    /// Run `app` under `protocol` failure-free at this scale.
    pub fn run(self, app: App, protocol: Protocol) -> RunOutput<u64> {
        let spec = self.spec(app, protocol);
        match self {
            Scale::Paper => run_program(spec, move |dsm| app.run_paper(dsm)),
            Scale::Smoke => run_program(spec, move |dsm| app.run_tiny(dsm)),
        }
    }

    /// Run `app` under `protocol` with node 1 crashing after its
    /// `after_barriers`-th barrier.
    pub fn run_with_crash(
        self,
        app: App,
        protocol: Protocol,
        after_barriers: u64,
    ) -> RunOutput<u64> {
        let spec = self
            .spec(app, protocol)
            .with_crash(CrashPlan::new(1, after_barriers));
        match self {
            Scale::Paper => run_program(spec, move |dsm| app.run_paper(dsm)),
            Scale::Smoke => run_program(spec, move |dsm| app.run_tiny(dsm)),
        }
    }
}

/// FNV-1a over every node's trace event kinds, in node order —
/// including the `MsgSend`/`MsgRecv` causal edges. The conservative
/// virtual-time scheduler delivers messages in `(arrival, src, seq)`
/// order, so the full causal schedule is deterministic and the
/// fingerprint pins it. (The same coverage the determinism goldens
/// use.)
pub fn trace_fingerprint(out: &RunOutput<u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for n in &out.nodes {
        for ev in &n.trace {
            let tag = format!("{:?}", ev.kind);
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

/// Everything the report keeps from one failure-free run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The protocol this run used.
    pub protocol: Protocol,
    /// Application digest (agrees across protocols).
    pub digest: u64,
    /// Virtual execution time in nanoseconds.
    pub exec_ns: u64,
    /// Total log bytes flushed cluster-wide (Table 2).
    pub log_bytes: u64,
    /// Total volatile-log flushes cluster-wide (Table 2).
    pub log_flushes: u64,
    /// Total protocol messages sent.
    pub msgs_sent: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Barriers completed at node 1 (sets the Figure 5 crash point).
    pub barriers_node1: u64,
    /// Total trace events captured.
    pub trace_events: u64,
    /// Trace events dropped by the bounded sinks (0 on sized workloads).
    pub trace_dropped: u64,
    /// Order fingerprint of the coherence-event schedule.
    pub trace_fp: u64,
    /// Cluster-merged histogram metrics.
    pub metrics: NodeMetrics,
    /// Compact blame-engine summary (see [`crate::blame`]).
    pub blame: BlameSummary,
    /// Per-wire-tag cluster traffic, `(msgs, bytes)` indexed by wire
    /// tag (see [`ccl_core::kind_label`]).
    pub traffic: Vec<(u64, u64)>,
    /// Fetch-hiding effectiveness counters.
    pub prefetch: crate::blame::PrefetchSummary,
}

/// What the blame engine says about one run, compact enough for the
/// report matrix: where the makespan went (blame-path split) and where
/// the logged bytes went (per-object-class split).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlameSummary {
    /// Key of the most-blamed coherence object (`-` if nothing waited
    /// or logged).
    pub top_object: String,
    /// Blame-path compute ns.
    pub cp_compute_ns: u64,
    /// Blame-path recovery (log replay) ns.
    pub cp_recovery_ns: u64,
    /// Blame-path page-fetch wait ns.
    pub cp_wait_page_ns: u64,
    /// Blame-path lock wait ns.
    pub cp_wait_lock_ns: u64,
    /// Blame-path barrier wait ns.
    pub cp_wait_barrier_ns: u64,
    /// Blame-path diff-flush-ack wait ns.
    pub cp_wait_flush_ns: u64,
    /// Flushed log bytes attributed to pages.
    pub log_page_bytes: u64,
    /// Flushed log bytes attributed to locks.
    pub log_lock_bytes: u64,
    /// Flushed log bytes attributed to barrier episodes.
    pub log_barrier_bytes: u64,
    /// Flushed log bytes attributed to metadata/framing.
    pub log_meta_bytes: u64,
    /// Bytes appended but never flushed.
    pub unflushed_bytes: u64,
}

/// Reduce a full [`crate::blame::Blame`] analysis to the report's
/// summary row. The blame-path components sum to the run's `exec_ns`
/// and the log components (plus `unflushed`) to its `log_bytes` — the
/// same exactness the full analysis guarantees.
pub fn blame_summary(blame: &crate::blame::Blame) -> BlameSummary {
    let waits = blame.cp_wait_by_class();
    let class = |c: &str| waits.get(c).copied().unwrap_or(0);
    let log = |c: &str| blame.log_by_class.get(c).copied().unwrap_or(0);
    BlameSummary {
        top_object: blame
            .top_object()
            .map(|o| o.key())
            .unwrap_or_else(|| "-".to_string()),
        cp_compute_ns: blame.cp_compute_ns(),
        cp_recovery_ns: blame.cp_recovery_ns(),
        cp_wait_page_ns: class("page"),
        cp_wait_lock_ns: class("lock"),
        cp_wait_barrier_ns: class("barrier"),
        cp_wait_flush_ns: class("flush"),
        log_page_bytes: log("page"),
        log_lock_bytes: log("lock"),
        log_barrier_bytes: log("barrier"),
        log_meta_bytes: log("meta"),
        unflushed_bytes: blame.unflushed_bytes,
    }
}

/// The Figure 5 crash-recovery measurements for one application.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// Node 1's crash point, in completed barriers.
    pub crash_after_barriers: u64,
    /// Trials the medians were taken over.
    pub trials: usize,
    /// Re-execution baseline: the clean run scaled to the crash point.
    pub reexec_ns: u64,
    /// Median ML recovery time (ns).
    pub ml_ns: u64,
    /// Median CCL recovery time (ns).
    pub ccl_ns: u64,
}

/// One application's slice of the report.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// The application.
    pub app: App,
    /// One record per Table 2 protocol, in `Protocol::TABLE2` order.
    pub runs: Vec<RunRecord>,
    /// The crash-recovery scenario.
    pub recovery: RecoveryRecord,
}

/// The full evaluation matrix at one scale.
#[derive(Debug, Clone)]
pub struct Report {
    /// The scale the matrix ran at.
    pub scale: Scale,
    /// All four applications, in `App::ALL` order.
    pub apps: Vec<AppReport>,
}

fn record(scale: Scale, app: App, protocol: Protocol) -> RunRecord {
    let out = scale.run(app, protocol);
    let total = out.total_stats();
    let analysis = crate::blame::analyze(&out);
    let blame = blame_summary(&analysis);
    let traffic = (0..ccl_core::MSG_KINDS)
        .map(|k| (total.msgs_by_kind[k], total.bytes_by_kind[k]))
        .collect();
    RunRecord {
        protocol,
        digest: out.nodes[0].result,
        exec_ns: out.exec_time().as_nanos(),
        log_bytes: total.log_bytes,
        log_flushes: total.log_flushes,
        msgs_sent: total.msgs_sent,
        bytes_sent: total.bytes_sent,
        barriers_node1: out.nodes[1].stats.barriers,
        trace_events: out.nodes.iter().map(|n| n.trace.len() as u64).sum(),
        trace_dropped: out.nodes.iter().map(|n| n.trace_dropped).sum(),
        trace_fp: trace_fingerprint(&out),
        metrics: out.total_metrics(),
        blame,
        traffic,
        prefetch: analysis.prefetch,
    }
}

fn median_recovery_ns(scale: Scale, app: App, protocol: Protocol, at: u64) -> u64 {
    let mut times: Vec<u64> = (0..scale.trials())
        .map(|_| {
            scale
                .run_with_crash(app, protocol, at)
                .recovery_time()
                .expect("crash run completed recovery")
                .as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Run the full matrix at `scale`.
pub fn collect(scale: Scale) -> Report {
    let mut apps = Vec::new();
    for app in App::ALL {
        let runs: Vec<RunRecord> = Protocol::TABLE2
            .iter()
            .map(|p| record(scale, app, *p))
            .collect();
        let none = &runs[0];
        let barriers = none.barriers_node1;
        let at =
            ((barriers as f64 * CRASH_FRACTION) as u64).clamp(1, barriers.saturating_sub(1).max(1));
        let recovery = RecoveryRecord {
            crash_after_barriers: at,
            trials: scale.trials(),
            reexec_ns: (none.exec_ns as f64 * CRASH_FRACTION) as u64,
            ml_ns: median_recovery_ns(scale, app, Protocol::Ml, at),
            ccl_ns: median_recovery_ns(scale, app, Protocol::Ccl, at),
        };
        apps.push(AppReport {
            app,
            runs,
            recovery,
        });
    }
    Report { scale, apps }
}

fn hist_json(metrics: &NodeMetrics) -> Json {
    let mut hists = Json::obj();
    for (name, h) in metrics.iter() {
        let mut j = Json::obj();
        j.set("count", Json::from_u64(h.count()));
        j.set("sum", Json::from_u64(h.sum()));
        j.set("min", Json::from_u64(h.min()));
        j.set("max", Json::from_u64(h.max()));
        j.set("p50", Json::from_u64(h.quantile(0.5)));
        j.set("p99", Json::from_u64(h.quantile(0.99)));
        hists.set(name, j);
    }
    hists
}

/// Render the report as its JSON document. Object keys are semantic
/// (application names, protocol labels) so baseline-diff paths like
/// `apps.Water.runs.ccl.exec_ns` stay stable as the matrix grows.
pub fn report_json(report: &Report) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str(SCHEMA.to_string()));
    doc.set("scale", Json::Str(report.scale.label().to_string()));
    doc.set("nodes", Json::from_u64(report.scale.nodes() as u64));
    doc.set("crash_fraction", Json::Num(CRASH_FRACTION));
    let mut apps = Json::obj();
    for a in &report.apps {
        let mut runs = Json::obj();
        for r in &a.runs {
            let mut j = Json::obj();
            j.set("digest", Json::from_hex(r.digest));
            j.set("exec_ns", Json::from_u64(r.exec_ns));
            j.set("log_bytes", Json::from_u64(r.log_bytes));
            j.set("log_flushes", Json::from_u64(r.log_flushes));
            j.set("msgs_sent", Json::from_u64(r.msgs_sent));
            j.set("bytes_sent", Json::from_u64(r.bytes_sent));
            j.set("barriers_node1", Json::from_u64(r.barriers_node1));
            j.set("trace_events", Json::from_u64(r.trace_events));
            j.set("trace_dropped", Json::from_u64(r.trace_dropped));
            j.set("trace_fp", Json::from_hex(r.trace_fp));
            let b = &r.blame;
            let mut bj = Json::obj();
            bj.set("top_object", Json::Str(b.top_object.clone()));
            bj.set("cp_compute_ns", Json::from_u64(b.cp_compute_ns));
            bj.set("cp_recovery_ns", Json::from_u64(b.cp_recovery_ns));
            bj.set("cp_wait_page_ns", Json::from_u64(b.cp_wait_page_ns));
            bj.set("cp_wait_lock_ns", Json::from_u64(b.cp_wait_lock_ns));
            bj.set("cp_wait_barrier_ns", Json::from_u64(b.cp_wait_barrier_ns));
            bj.set("cp_wait_flush_ns", Json::from_u64(b.cp_wait_flush_ns));
            bj.set("log_page_bytes", Json::from_u64(b.log_page_bytes));
            bj.set("log_lock_bytes", Json::from_u64(b.log_lock_bytes));
            bj.set("log_barrier_bytes", Json::from_u64(b.log_barrier_bytes));
            bj.set("log_meta_bytes", Json::from_u64(b.log_meta_bytes));
            bj.set("unflushed_bytes", Json::from_u64(b.unflushed_bytes));
            j.set("blame", bj);
            let mut tr = Json::obj();
            for (k, &(msgs, bytes)) in r.traffic.iter().enumerate() {
                if msgs == 0 && bytes == 0 {
                    continue;
                }
                let mut t = Json::obj();
                t.set("msgs", Json::from_u64(msgs));
                t.set("bytes", Json::from_u64(bytes));
                tr.set(ccl_core::kind_label(k), t);
            }
            j.set("traffic", tr);
            let mut pf = Json::obj();
            pf.set("issued", Json::from_u64(r.prefetch.issued));
            pf.set("hits", Json::from_u64(r.prefetch.hits));
            pf.set("wasted", Json::from_u64(r.prefetch.wasted));
            pf.set(
                "home_migrations",
                Json::from_u64(r.prefetch.home_migrations),
            );
            j.set("prefetch", pf);
            j.set("hist", hist_json(&r.metrics));
            runs.set(r.protocol.label(), j);
        }
        let mut rec = Json::obj();
        rec.set(
            "crash_after_barriers",
            Json::from_u64(a.recovery.crash_after_barriers),
        );
        rec.set("trials", Json::from_u64(a.recovery.trials as u64));
        rec.set("reexec_ns", Json::from_u64(a.recovery.reexec_ns));
        rec.set("ml_ns", Json::from_u64(a.recovery.ml_ns));
        rec.set("ccl_ns", Json::from_u64(a.recovery.ccl_ns));
        let mut entry = Json::obj();
        entry.set("runs", runs);
        entry.set("recovery", rec);
        apps.set(a.app.name(), entry);
    }
    doc.set("apps", apps);
    doc
}

// ---------------------------------------------------------------------------
// Markdown renderers
// ---------------------------------------------------------------------------

/// Paper Figure 4 values (normalized execution time, None = 100).
fn paper_fig4(app: App) -> (f64, f64) {
    // (ML, CCL)
    match app {
        App::Fft3d => (124.0, 106.0),
        App::Mg => (118.0, 102.0),
        App::Shallow => (114.0, 102.0),
        App::Water => (109.0, 101.0),
    }
}

/// Paper Figure 5 values (normalized recovery time, re-execution = 100).
fn paper_fig5(app: App) -> (f64, f64) {
    // (ML-recovery, CCL recovery)
    match app {
        App::Fft3d => (34.0, 16.0),
        App::Mg => (42.0, 27.0),
        App::Shallow => (57.0, 45.0),
        App::Water => (43.0, 38.0),
    }
}

fn secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

fn protocol_display(p: Protocol) -> &'static str {
    match p {
        Protocol::None => "None",
        Protocol::Ml => "ML",
        Protocol::Ccl => "CCL",
        other => other.label(),
    }
}

/// The Table 2 Markdown table (all apps, Table 2 columns).
pub fn table2_markdown(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("| App | Protocol | Exec (s) | Mean log (KB) | Total log (MB) | Flushes |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for a in &report.apps {
        for r in &a.runs {
            let mean = if r.log_flushes == 0 {
                "—".to_string()
            } else {
                format!("{:.1}", r.log_bytes as f64 / r.log_flushes as f64 / 1024.0)
            };
            let total = if r.log_bytes == 0 {
                "0".to_string()
            } else {
                format!("{:.2}", r.log_bytes as f64 / (1024.0 * 1024.0))
            };
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                a.app.name(),
                protocol_display(r.protocol),
                secs(r.exec_ns),
                mean,
                total,
                r.log_flushes,
            ));
        }
    }
    s
}

/// The Figure 4 Markdown table (normalized execution, paper columns).
pub fn fig4_markdown(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("| App | None | ML | CCL | Paper ML | Paper CCL |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for a in &report.apps {
        let base = a.runs[0].exec_ns as f64;
        let norm = |r: &RunRecord| 100.0 * r.exec_ns as f64 / base;
        let (pml, pccl) = paper_fig4(a.app);
        s.push_str(&format!(
            "| {} | 100 | {:.1} | {:.1} | {:.0} | ~{:.0} |\n",
            a.app.name(),
            norm(&a.runs[1]),
            norm(&a.runs[2]),
            pml,
            pccl,
        ));
    }
    s
}

/// The Figure 5 Markdown table (normalized recovery, paper columns).
pub fn fig5_markdown(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("| App | Re-execution | ML-recovery | CCL recovery | Paper ML | Paper CCL |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for a in &report.apps {
        let base = a.recovery.reexec_ns as f64;
        let (pml, pccl) = paper_fig5(a.app);
        s.push_str(&format!(
            "| {} | 100 | {:.1} | {:.1} | {:.0} | {:.0} |\n",
            a.app.name(),
            100.0 * a.recovery.ml_ns as f64 / base,
            100.0 * a.recovery.ccl_ns as f64 / base,
            pml,
            pccl,
        ));
    }
    s
}

/// The blame Markdown tables: where each run's makespan went (blame
/// path, percent of exec time) with the top blamed object, and the
/// per-object-class log-byte split per protocol.
pub fn blame_markdown(report: &Report) -> String {
    let mut s = String::new();
    s.push_str(
        "| App | Protocol | Top blamed object | Compute | Page wait | Lock wait \
         | Barrier wait | Flush-ack wait | Log: page / sync / meta (KB) |\n",
    );
    s.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for a in &report.apps {
        for r in &a.runs {
            let b = &r.blame;
            let pct = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / r.exec_ns as f64);
            let kb = |bytes: u64| format!("{:.1}", bytes as f64 / 1024.0);
            let log = if r.log_bytes == 0 {
                "—".to_string()
            } else {
                format!(
                    "{} / {} / {}",
                    kb(b.log_page_bytes),
                    kb(b.log_lock_bytes + b.log_barrier_bytes),
                    kb(b.log_meta_bytes),
                )
            };
            s.push_str(&format!(
                "| {} | {} | `{}` | {} | {} | {} | {} | {} | {} |\n",
                a.app.name(),
                protocol_display(r.protocol),
                b.top_object,
                pct(b.cp_compute_ns + b.cp_recovery_ns),
                pct(b.cp_wait_page_ns),
                pct(b.cp_wait_lock_ns),
                pct(b.cp_wait_barrier_ns),
                pct(b.cp_wait_flush_ns),
                log,
            ));
        }
    }
    s
}

/// The per-variant traffic Markdown table: how the fetch path's
/// envelopes split between the legacy single-page round trip and the
/// batched one, how the speculative copies fared, and each run's total
/// message volume.
pub fn traffic_markdown(report: &Report) -> String {
    let ord = |label: &str| {
        (0..ccl_core::MSG_KINDS)
            .find(|&k| ccl_core::kind_label(k) == label)
            .expect("known wire-tag label")
    };
    let single = ord("PageReply");
    let batch = ord("PageReplyBatch");
    let migrate = ord("HomeMigrate");
    let mut s = String::new();
    s.push_str(
        "| App | Protocol | Single fetches | Batched fetches | Pages/batch | \
         Prefetch issued / hit / wasted | Home moves | Msgs | Sent (MB) |\n",
    );
    s.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for a in &report.apps {
        for r in &a.runs {
            let batches = r.traffic[batch].0;
            let per_batch = if batches == 0 {
                "—".to_string()
            } else {
                // Every batch carries its demand page; the extras are
                // exactly the issued prefetches.
                format!(
                    "{:.2}",
                    (batches + r.prefetch.issued) as f64 / batches as f64
                )
            };
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} / {} / {} | {} | {} | {:.2} |\n",
                a.app.name(),
                protocol_display(r.protocol),
                r.traffic[single].0,
                batches,
                per_batch,
                r.prefetch.issued,
                r.prefetch.hits,
                r.prefetch.wasted,
                r.traffic[migrate].0,
                r.msgs_sent,
                r.bytes_sent as f64 / (1024.0 * 1024.0),
            ));
        }
    }
    s
}

/// Replace the block between `<!-- report:{name} -->` and
/// `<!-- /report:{name} -->` in `doc` with `replacement`, keeping the
/// markers. Errors if the markers are missing or out of order.
pub fn splice(doc: &str, name: &str, replacement: &str) -> Result<String, String> {
    let begin = format!("<!-- report:{name} -->");
    let end = format!("<!-- /report:{name} -->");
    let b = doc
        .find(&begin)
        .ok_or_else(|| format!("marker {begin} not found"))?;
    let e = doc
        .find(&end)
        .ok_or_else(|| format!("marker {end} not found"))?;
    if e < b {
        return Err(format!("marker {end} precedes {begin}"));
    }
    let mut out = String::with_capacity(doc.len() + replacement.len());
    out.push_str(&doc[..b + begin.len()]);
    out.push('\n');
    out.push_str(replacement.trim_end());
    out.push('\n');
    out.push_str(&doc[e..]);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// How a baseline field may differ from the current run.
#[derive(Debug, Clone, PartialEq)]
pub enum Band {
    /// Relative tolerance in percent of the baseline value.
    Pct(f64),
    /// Not compared at all (value varies run to run).
    Ignore,
}

/// One tolerance annotation: which field(s), how much slack, and the
/// recorded reason. Fields with no matching annotation must match the
/// baseline exactly.
#[derive(Debug, Clone)]
pub struct Tolerance {
    /// Dotted path pattern: `*` matches one segment, a trailing `**`
    /// matches any remainder (`apps.Water.runs.ccl.hist.**`).
    pub path: String,
    /// The allowed deviation.
    pub band: Band,
    /// Why this field is allowed to vary (recorded in the baseline).
    pub why: String,
}

/// The tolerance set a freshly blessed baseline is annotated with:
/// **empty** — every field compares exactly.
///
/// The annotations this set used to carry (Water's ~20–30% `exec_ns`
/// swing from physical lock-arrival order, MG's ±0.01% ack-timing
/// nudge from physical flush arrival, and crash-recovery timing that
/// depended on how far survivors ran ahead) all rooted in the router
/// delivering messages in physical arrival order. The conservative
/// virtual-time scheduler delivers in `(arrival, src, seq)` order
/// (DESIGN.md §12), which makes lock grants, flush service, and
/// recovery progress pure functions of virtual time — so the bands are
/// gone, not widened. The `Band`/path machinery stays: a future
/// genuinely physical measurement (e.g. wall-clock overhead) can
/// re-annotate itself, with a recorded reason, without rebuilding it.
pub fn default_tolerances() -> Vec<Tolerance> {
    Vec::new()
}

/// Serialize tolerances for embedding in a baseline document.
pub fn tolerances_json(rules: &[Tolerance]) -> Json {
    Json::Arr(
        rules
            .iter()
            .map(|t| {
                let mut j = Json::obj();
                j.set("path", Json::Str(t.path.clone()));
                match t.band {
                    Band::Pct(p) => {
                        j.set("kind", Json::Str("pct".to_string()));
                        j.set("pct", Json::Num(p));
                    }
                    Band::Ignore => {
                        j.set("kind", Json::Str("ignore".to_string()));
                    }
                }
                j.set("why", Json::Str(t.why.clone()));
                j
            })
            .collect(),
    )
}

/// Read the tolerance annotations out of a baseline document; falls
/// back to [`default_tolerances`] when the baseline has none.
pub fn parse_tolerances(baseline: &Json) -> Vec<Tolerance> {
    let Some(items) = baseline.get("tolerances").and_then(|t| t.as_arr()) else {
        return default_tolerances();
    };
    items
        .iter()
        .filter_map(|item| {
            let path = item.get("path")?.as_str()?.to_string();
            let band = match item.get("kind")?.as_str()? {
                "ignore" => Band::Ignore,
                "pct" => Band::Pct(item.get("pct")?.as_f64()?),
                _ => return None,
            };
            let why = item
                .get("why")
                .and_then(|w| w.as_str())
                .unwrap_or("")
                .to_string();
            Some(Tolerance { path, band, why })
        })
        .collect()
}

fn path_matches(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = path.split('.').collect();
    fn rec(pat: &[&str], segs: &[&str]) -> bool {
        match (pat.first(), segs.first()) {
            (None, None) => true,
            (Some(&"**"), _) => true,
            (Some(&p), Some(&s)) if p == "*" || p == s => rec(&pat[1..], &segs[1..]),
            _ => false,
        }
    }
    rec(&pat, &segs)
}

fn find_band<'a>(rules: &'a [Tolerance], path: &str) -> Option<&'a Band> {
    rules
        .iter()
        .find(|t| path_matches(&t.path, path))
        .map(|t| &t.band)
}

/// Outcome of one gate run.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Fields compared (exactly or within a band).
    pub compared: usize,
    /// Fields skipped under an `ignore` annotation.
    pub ignored: usize,
    /// Human-readable violations; empty means the gate passed.
    pub violations: Vec<String>,
}

impl GateResult {
    /// Did the gate pass?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare `current` against `baseline` under `rules`. The baseline's
/// top-level `tolerances` member is metadata, not data, and is skipped.
pub fn compare(current: &Json, baseline: &Json, rules: &[Tolerance]) -> GateResult {
    let mut result = GateResult::default();
    walk(current, baseline, rules, "", &mut result);
    result
}

fn note(result: &mut GateResult, path: &str, msg: String) {
    result.violations.push(format!("{path}: {msg}"));
}

fn walk(current: &Json, baseline: &Json, rules: &[Tolerance], path: &str, result: &mut GateResult) {
    if let Some(Band::Ignore) = find_band(rules, path) {
        result.ignored += 1;
        return;
    }
    match (current, baseline) {
        (Json::Obj(cur), Json::Obj(base)) => {
            for (k, bv) in base {
                if path.is_empty() && k == "tolerances" {
                    continue;
                }
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match cur.iter().find(|(ck, _)| ck == k) {
                    Some((_, cv)) => walk(cv, bv, rules, &child, result),
                    None => note(result, &child, "missing from current report".to_string()),
                }
            }
            for (k, _) in cur {
                if base.iter().all(|(bk, _)| bk != k) {
                    let child = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    note(result, &child, "not present in baseline".to_string());
                }
            }
        }
        (Json::Num(c), Json::Num(b)) => {
            result.compared += 1;
            match find_band(rules, path) {
                Some(Band::Pct(pct)) => {
                    let slack = (b.abs() * pct / 100.0).max(1.0);
                    if (c - b).abs() > slack {
                        note(
                            result,
                            path,
                            format!("{c} vs baseline {b} (±{pct}% allowed)"),
                        );
                    }
                }
                _ => {
                    if c != b {
                        note(result, path, format!("{c} vs baseline {b} (exact)"));
                    }
                }
            }
        }
        (c, b) => {
            result.compared += 1;
            if c != b {
                note(
                    result,
                    path,
                    format!("{} vs baseline {} (exact)", brief(c), brief(b)),
                );
            }
        }
    }
}

fn brief(j: &Json) -> String {
    match j {
        Json::Str(s) => format!("{s:?}"),
        other => {
            let mut s = other.pretty();
            s.truncate(40);
            s
        }
    }
}

/// Build the committed baseline document: the report plus its
/// tolerance annotations.
pub fn baseline_json(report: &Report, rules: &[Tolerance]) -> Json {
    let mut doc = report_json(report);
    doc.set("tolerances", tolerances_json(rules));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use simnet::NodeMetrics;

    fn fake_report() -> Report {
        let run = |protocol, exec_ns, log_bytes, log_flushes| RunRecord {
            protocol,
            digest: 0xdead_beef_dead_beef,
            exec_ns,
            log_bytes,
            log_flushes,
            msgs_sent: 100,
            bytes_sent: 5000,
            barriers_node1: 8,
            trace_events: 40,
            trace_dropped: 0,
            trace_fp: 0x1234_5678_9abc_def0,
            metrics: NodeMetrics::default(),
            blame: BlameSummary {
                top_object: "barrier:3".to_string(),
                cp_compute_ns: exec_ns / 2,
                cp_wait_barrier_ns: exec_ns / 2,
                log_page_bytes: log_bytes,
                ..BlameSummary::default()
            },
            traffic: {
                let mut t = vec![(0u64, 0u64); ccl_core::MSG_KINDS];
                t[1] = (40, 40 * 4096); // PageReply
                t[16] = (10, 12 * 4096); // PageReplyBatch
                t
            },
            prefetch: crate::blame::PrefetchSummary {
                issued: 20,
                hits: 15,
                wasted: 3,
                home_migrations: 2,
            },
        };
        let apps = App::ALL
            .iter()
            .map(|&app| AppReport {
                app,
                runs: vec![
                    run(Protocol::None, 1_000_000, 0, 0),
                    run(Protocol::Ml, 1_200_000, 90_000, 30),
                    run(Protocol::Ccl, 1_050_000, 9_000, 20),
                ],
                recovery: RecoveryRecord {
                    crash_after_barriers: 6,
                    trials: 1,
                    reexec_ns: 750_000,
                    ml_ns: 500_000,
                    ccl_ns: 400_000,
                },
            })
            .collect();
        Report {
            scale: Scale::Smoke,
            apps,
        }
    }

    fn tol(path: &str, band: Band, why: &str) -> Tolerance {
        Tolerance {
            path: path.to_string(),
            band,
            why: why.to_string(),
        }
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let doc = report_json(&fake_report());
        let base = baseline_json(&fake_report(), &default_tolerances());
        let rules = parse_tolerances(&base);
        let res = compare(&doc, &base, &rules);
        assert!(res.passed(), "{:?}", res.violations);
        assert!(res.compared > 50);
        assert_eq!(
            res.ignored, 0,
            "the default tolerance set is empty: every field compares"
        );
    }

    #[test]
    fn exact_field_drift_is_a_violation() {
        let doc = report_json(&fake_report());
        let mut drifted = fake_report();
        drifted.apps[0].runs[2].log_bytes += 1;
        let base = baseline_json(&drifted, &default_tolerances());
        let rules = parse_tolerances(&base);
        let res = compare(&doc, &base, &rules);
        assert!(!res.passed());
        assert!(
            res.violations
                .iter()
                .any(|v| v.starts_with("apps.3D-FFT.runs.ccl.log_bytes")),
            "{:?}",
            res.violations
        );
    }

    /// With the empty default set, even a one-count drift on a field
    /// that used to carry a wide band (recovery timing) is a violation.
    #[test]
    fn recovery_timing_now_compares_exactly() {
        let doc = report_json(&fake_report());
        let mut drifted = fake_report();
        drifted.apps[3].recovery.ml_ns += 2;
        let base = baseline_json(&drifted, &default_tolerances());
        let res = compare(&doc, &base, &parse_tolerances(&base));
        assert!(!res.passed());
        assert!(
            res.violations
                .iter()
                .any(|v| v.starts_with("apps.Water.recovery.ml_ns")),
            "{:?}",
            res.violations
        );
    }

    /// The band machinery itself still works for baselines that carry
    /// explicit annotations (none do today, but the escape hatch stays
    /// tested): drift inside a `pct` band passes, outside fails.
    #[test]
    fn banded_fields_absorb_drift_within_tolerance() {
        let rules = vec![tol(
            "apps.*.recovery.ml_ns",
            Band::Pct(60.0),
            "synthetic band for the gate test",
        )];
        let doc = report_json(&fake_report());
        let mut drifted = fake_report();
        for a in &mut drifted.apps {
            a.recovery.ml_ns = (a.recovery.ml_ns as f64 * 1.4) as u64; // +40% < 60%
        }
        let base = baseline_json(&drifted, &rules);
        let res = compare(&doc, &base, &parse_tolerances(&base));
        assert!(res.passed(), "{:?}", res.violations);

        let mut way_off = fake_report();
        way_off.apps[0].recovery.ml_ns *= 3;
        let base = baseline_json(&way_off, &rules);
        let res = compare(&doc, &base, &parse_tolerances(&base));
        assert!(!res.passed());
    }

    /// `ignore` annotations skip exactly the matching fields and count
    /// them, leaving every other path exact.
    #[test]
    fn ignore_band_skips_only_matching_fields() {
        let rules = vec![tol(
            "apps.Water.runs.*.trace_fp",
            Band::Ignore,
            "synthetic ignore for the gate test",
        )];
        let doc = report_json(&fake_report());
        let mut drifted = fake_report();
        drifted.apps[3].runs[2].trace_fp ^= 1; // Water: ignored
        let base = baseline_json(&drifted, &rules);
        let res = compare(&doc, &base, &parse_tolerances(&base));
        assert!(res.passed(), "{:?}", res.violations);
        assert!(res.ignored > 0);

        let mut drifted = fake_report();
        drifted.apps[0].runs[2].trace_fp ^= 1; // 3D-FFT: exact
        let base = baseline_json(&drifted, &rules);
        let res = compare(&doc, &base, &parse_tolerances(&base));
        assert!(!res.passed());
    }

    #[test]
    fn missing_and_extra_fields_are_violations() {
        let doc = report_json(&fake_report());
        let mut base = baseline_json(&fake_report(), &default_tolerances());
        base.set("extra_baseline_field", Json::Num(1.0));
        let res = compare(&doc, &base, &parse_tolerances(&base));
        assert!(res
            .violations
            .iter()
            .any(|v| v.contains("missing from current report")));

        let mut doc2 = report_json(&fake_report());
        doc2.set("novel_field", Json::Num(1.0));
        let base = baseline_json(&fake_report(), &default_tolerances());
        let res = compare(&doc2, &base, &parse_tolerances(&base));
        assert!(res
            .violations
            .iter()
            .any(|v| v.contains("not present in baseline")));
    }

    #[test]
    fn path_patterns() {
        assert!(path_matches(
            "apps.*.recovery.ml_ns",
            "apps.Water.recovery.ml_ns"
        ));
        assert!(!path_matches(
            "apps.*.recovery.ml_ns",
            "apps.Water.recovery.ccl_ns"
        ));
        assert!(path_matches(
            "apps.Water.runs.*.hist.**",
            "apps.Water.runs.ccl.hist.flush_bytes.p99"
        ));
        assert!(!path_matches(
            "apps.Water.runs.*.hist.**",
            "apps.MG.runs.ccl.hist.p99"
        ));
        assert!(!path_matches(
            "apps.Water.runs.*.hist.**",
            "apps.Water.runs.ccl.exec_ns"
        ));
    }

    #[test]
    fn tolerances_round_trip_through_json() {
        let rules = vec![
            tol("apps.*.recovery.ml_ns", Band::Pct(60.0), "round trip"),
            tol("apps.Water.runs.*.hist.**", Band::Ignore, "round trip"),
        ];
        let mut doc = Json::obj();
        doc.set("tolerances", tolerances_json(&rules));
        let text = doc.pretty();
        let back = parse_tolerances(&json::parse(&text).unwrap());
        assert_eq!(back.len(), rules.len());
        for (a, b) in back.iter().zip(&rules) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.band, b.band);
        }
    }

    #[test]
    fn markdown_tables_have_one_row_per_cell() {
        let report = fake_report();
        let t2 = table2_markdown(&report);
        assert_eq!(t2.lines().count(), 2 + 4 * 3);
        assert!(t2.contains("| 3D-FFT | CCL |"));
        let f4 = fig4_markdown(&report);
        assert_eq!(f4.lines().count(), 2 + 4);
        assert!(f4.contains("| 3D-FFT | 100 | 120.0 | 105.0 | 124 | ~106 |"));
        let f5 = fig5_markdown(&report);
        assert!(f5.contains("| Water | 100 | 66.7 | 53.3 | 43 | 38 |"));
        let bl = blame_markdown(&report);
        assert_eq!(bl.lines().count(), 2 + 4 * 3);
        assert!(
            bl.contains("| 3D-FFT | ML | `barrier:3` | 50.0% | 0.0% | 0.0% | 50.0% | 0.0% |"),
            "{bl}"
        );
        // A protocol with no log shows no log split.
        assert!(
            bl.contains("| 3D-FFT | None | `barrier:3` | 50.0% | 0.0% | 0.0% | 50.0% | 0.0% | — |")
        );
        let tr = traffic_markdown(&report);
        assert_eq!(tr.lines().count(), 2 + 4 * 3);
        // 10 batches carrying 10 demand pages + 20 prefetched extras.
        assert!(tr.contains("| 40 | 10 | 3.00 | 20 / 15 / 3 | 0 |"), "{tr}");
    }

    #[test]
    fn report_json_carries_the_blame_summary() {
        let doc = report_json(&fake_report());
        let blame = doc
            .get("apps")
            .unwrap()
            .get("Water")
            .unwrap()
            .get("runs")
            .unwrap()
            .get("ml")
            .unwrap()
            .get("blame")
            .unwrap();
        assert_eq!(blame.get("top_object").unwrap().as_str(), Some("barrier:3"));
        assert_eq!(
            blame.get("cp_wait_barrier_ns").unwrap().as_f64(),
            Some(600_000.0)
        );
        assert_eq!(
            blame.get("log_page_bytes").unwrap().as_f64(),
            Some(90_000.0)
        );
    }

    #[test]
    fn splice_replaces_only_the_marked_block() {
        let doc = "intro\n<!-- report:fig4 -->\nOLD\n<!-- /report:fig4 -->\noutro\n";
        let out = splice(doc, "fig4", "NEW TABLE\n").unwrap();
        assert_eq!(
            out,
            "intro\n<!-- report:fig4 -->\nNEW TABLE\n<!-- /report:fig4 -->\noutro\n"
        );
        assert!(splice(doc, "missing", "x").is_err());
    }
}
