//! blame — "why is my run slow?", as a command.
//!
//! ```console
//! $ cargo run --release -p obsv --bin blame               # paper scale
//! $ cargo run --release -p obsv --bin blame -- --smoke    # verify.sh
//! ```
//!
//! Runs every application under every Table 2 protocol at the chosen
//! scale, plus one mid-run crash per logging protocol, and renders the
//! blame engine's analysis of each run: the virtual-time blame path
//! (an exact partition of the makespan), the most-blamed coherence
//! objects, the per-barrier straggler table, the per-object log-byte
//! split, and the recovery window's share of the makespan.
//!
//! Flags:
//!
//! * `--smoke`        the 4-node tiny matrix (seconds); byte-compares
//!   the full document against `crates/obsv/blame_baseline.json`.
//! * `--bless`        (re)write that baseline from this run.
//! * `--out PATH`     write the full blame JSON document to `PATH`.
//! * `--chrome PATH`  export the Water/CCL run as a Chrome trace with
//!   the blame path highlighted (open at <https://ui.perfetto.dev>).
//!
//! Every run is hard-checked on the spot: blame-path segment durations
//! must sum to exactly `exec_ns`, per-object log attribution must sum
//! to exactly the run's total log bytes, and no trace event may have
//! been dropped. Any violation is a non-zero exit.
//!
//! Exit status: 0 on success, 1 on an invariant or baseline mismatch,
//! 2 on usage or I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ccl_apps::App;
use ccl_core::{Protocol, RunOutput};
use obsv::blame::{analyze, blame_json, Blame, SCHEMA};
use obsv::json::Json;
use obsv::report::Scale;

struct Args {
    scale: Scale,
    bless: bool,
    out: Option<PathBuf>,
    chrome: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Paper,
        bless: false,
        out: None,
        chrome: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--bless" => args.bless = true,
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--chrome" => {
                args.chrome = Some(PathBuf::from(it.next().ok_or("--chrome needs a path")?))
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn baseline_path() -> PathBuf {
    repo_root().join("crates/obsv/blame_baseline.json")
}

fn write(path: &Path, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Analyze one run, hard-checking the blame engine's exactness
/// invariants — a violation means the attribution lies and the whole
/// document is untrustworthy.
fn checked_analysis(label: &str, out: &RunOutput<u64>) -> Result<Blame, String> {
    let dropped: u64 = out.nodes.iter().map(|n| n.trace_dropped).sum();
    if dropped > 0 {
        return Err(format!(
            "{label}: {dropped} trace event(s) dropped — blame needs the full trace"
        ));
    }
    let blame = analyze(out);
    if blame.cp_sum_ns() != blame.exec_ns {
        return Err(format!(
            "{label}: blame path sums to {} ns but the run took {} ns",
            blame.cp_sum_ns(),
            blame.exec_ns
        ));
    }
    let logged = out.total_stats().log_bytes;
    if blame.log_total_bytes() != logged {
        return Err(format!(
            "{label}: attributed {} log bytes but the run flushed {}",
            blame.log_total_bytes(),
            logged
        ));
    }
    Ok(blame)
}

fn summarize(label: &str, blame: &Blame) {
    let pct = |ns: u64| 100.0 * ns as f64 / blame.exec_ns.max(1) as f64;
    let waits = blame.cp_wait_by_class();
    let class = |c: &str| waits.get(c).copied().unwrap_or(0);
    let top = blame
        .top_object()
        .map(|o| o.key())
        .unwrap_or_else(|| "-".to_string());
    println!(
        "| {label} | `{top}` | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
        pct(blame.cp_compute_ns() + blame.cp_recovery_ns()),
        pct(class("page")),
        pct(class("lock")),
        pct(class("barrier")),
        pct(class("flush")),
    );
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let scale = args.scale;
    eprintln!(
        "blaming the {} matrix ({} nodes, {} apps x {} protocols + crash runs)...",
        scale.label(),
        scale.nodes(),
        App::ALL.len(),
        Protocol::TABLE2.len(),
    );

    let mut doc = Json::obj();
    doc.set("schema", Json::Str(SCHEMA.to_string()));
    doc.set("scale", Json::Str(scale.label().to_string()));
    let mut runs = Json::obj();
    println!("| Run | Top blamed object | Compute | Page | Lock | Barrier | Flush-ack |");
    println!("|---|---|---|---|---|---|---|");
    for app in App::ALL {
        let mut barriers = 0;
        for protocol in Protocol::TABLE2 {
            let label = format!("{}/{}", app.name(), protocol.label());
            let out = scale.run(app, protocol);
            if protocol == Protocol::None {
                barriers = out.nodes[1].stats.barriers;
            }
            let blame = checked_analysis(&label, &out)?;
            summarize(&label, &blame);
            runs.set(&label, blame_json(&blame, &label));
        }
        // One mid-run crash per logging protocol: the recovery
        // window's share of the makespan is part of the blame story.
        let at = ((barriers as f64 * 0.75) as u64).clamp(1, barriers.saturating_sub(1).max(1));
        for protocol in [Protocol::Ml, Protocol::Ccl] {
            let label = format!("{}/{}/crash", app.name(), protocol.label());
            let out = scale.run_with_crash(app, protocol, at);
            let blame = checked_analysis(&label, &out)?;
            summarize(&label, &blame);
            runs.set(&label, blame_json(&blame, &label));
        }
    }
    doc.set("runs", runs);
    let text = doc.pretty();

    if let Some(out) = &args.out {
        write(out, &text)?;
        eprintln!("blame document written to {}", out.display());
    }
    if let Some(chrome) = &args.chrome {
        eprintln!("exporting blamed Water/CCL chrome trace...");
        let out = scale.run(App::Water, Protocol::Ccl);
        let label = format!("Water/ccl ({})", scale.label());
        let blame = checked_analysis(&label, &out)?;
        write(
            chrome,
            &obsv::chrome::chrome_trace_blamed(&out, &label, &blame),
        )?;
        eprintln!(
            "trace written to {} (open at https://ui.perfetto.dev)",
            chrome.display()
        );
    }

    // The committed baseline pins the smoke-scale document to the
    // byte: blame is a pure function of the deterministic trace, so
    // any drift is a real behavior change to be inspected (and then
    // re-blessed).
    if scale == Scale::Smoke {
        let path = baseline_path();
        if args.bless {
            write(&path, &text)?;
            eprintln!("baseline blessed: {}", path.display());
            return Ok(ExitCode::SUCCESS);
        }
        let baseline = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "no baseline at {} ({e}); run with --bless to create one",
                path.display()
            )
        })?;
        if baseline != text {
            eprintln!(
                "blame gate FAILED: document differs from {} — inspect the \
                 drift and re-bless with --bless if intended",
                path.display()
            );
            return Ok(ExitCode::from(1));
        }
        eprintln!("blame gate passed: document is byte-identical to the baseline");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("blame: {msg}");
            ExitCode::from(2)
        }
    }
}
