//! The paper-artifact report pipeline, as a command.
//!
//! ```console
//! $ cargo run --release -p obsv --bin report              # paper scale
//! $ cargo run --release -p obsv --bin report -- --smoke   # verify.sh
//! ```
//!
//! Flags:
//!
//! * `--smoke`        run the 4-node tiny matrix (seconds) instead of
//!   the paper-scale one (minutes); gates against
//!   `crates/obsv/smoke_baseline.json` and never touches the paper
//!   artifacts.
//! * `--bless`        (re)write the baseline for the chosen scale with
//!   this run's values and the default tolerance annotations.
//! * `--out PATH`     also write the report JSON document to `PATH`.
//! * `--trace PATH`   also export the 3D-FFT/CCL run as a Chrome-trace
//!   file loadable at <https://ui.perfetto.dev>.
//!
//! At paper scale (gate pass or `--bless`) the Table 2 / Figure 4 /
//! Figure 5 tables in `EXPERIMENTS.md` are regenerated in place between
//! their `<!-- report:* -->` markers.
//!
//! Exit status: 0 on success, 1 on a gate violation, 2 on usage or I/O
//! errors (including a missing baseline — bless one first).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ccl_apps::App;
use ccl_core::Protocol;
use obsv::json;
use obsv::report::{
    baseline_json, blame_markdown, compare, fig4_markdown, fig5_markdown, parse_tolerances,
    report_json, splice, table2_markdown, traffic_markdown, Report, Scale,
};

struct Args {
    scale: Scale,
    bless: bool,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Paper,
        bless: false,
        out: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--bless" => args.bless = true,
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--trace" => args.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/obsv` → two levels up).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn baseline_path(scale: Scale) -> PathBuf {
    match scale {
        Scale::Paper => repo_root().join("REPORT_paper.json"),
        Scale::Smoke => repo_root().join("crates/obsv/smoke_baseline.json"),
    }
}

fn write(path: &Path, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn regenerate_experiments(report: &Report) -> Result<(), String> {
    let path = repo_root().join("EXPERIMENTS.md");
    let doc =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = splice(&doc, "table2", &table2_markdown(report))?;
    let doc = splice(&doc, "fig4", &fig4_markdown(report))?;
    let doc = splice(&doc, "fig5", &fig5_markdown(report))?;
    let doc = splice(&doc, "blame", &blame_markdown(report))?;
    let doc = splice(&doc, "traffic", &traffic_markdown(report))?;
    write(&path, &doc)?;
    eprintln!("regenerated tables in {}", path.display());
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let scale = args.scale;
    eprintln!(
        "collecting the {} matrix ({} nodes, {} apps x {} protocols + recovery)...",
        scale.label(),
        scale.nodes(),
        App::ALL.len(),
        Protocol::TABLE2.len(),
    );
    let report = obsv::collect(scale);
    let doc = report_json(&report);

    // A truncated trace silently falsifies every trace-derived column
    // (fingerprints, blame attribution), so dropped events are a loud
    // warning here and a hard failure in detcheck.
    let dropped: u64 = report
        .apps
        .iter()
        .flat_map(|a| &a.runs)
        .map(|r| r.trace_dropped)
        .sum();
    if dropped > 0 {
        eprintln!(
            "WARNING: {dropped} trace event(s) dropped by bounded sinks — \
             trace fingerprints and blame attribution in this report are \
             incomplete; size the workload or the trace bound so nothing drops"
        );
    }

    // Human-readable summary on stdout.
    println!("## Table 2\n\n{}", table2_markdown(&report));
    println!("## Figure 4 (None = 100)\n\n{}", fig4_markdown(&report));
    println!(
        "## Figure 5 (re-execution = 100)\n\n{}",
        fig5_markdown(&report)
    );
    println!(
        "## Blame (blame path, % of exec)\n\n{}",
        blame_markdown(&report)
    );
    println!(
        "## Traffic (per-kind, send-side)\n\n{}",
        traffic_markdown(&report)
    );

    if let Some(out) = &args.out {
        write(out, &doc.pretty())?;
        eprintln!("report written to {}", out.display());
    }
    if let Some(trace_path) = &args.trace {
        eprintln!("exporting 3D-FFT/CCL chrome trace...");
        let run = scale.run(App::Fft3d, Protocol::Ccl);
        let label = format!("3D-FFT/ccl ({})", scale.label());
        let blame = obsv::analyze(&run);
        write(
            trace_path,
            &obsv::chrome::chrome_trace_blamed(&run, &label, &blame),
        )?;
        eprintln!(
            "trace written to {} (open at https://ui.perfetto.dev)",
            trace_path.display()
        );
    }

    let baseline_file = baseline_path(scale);
    if args.bless {
        let rules = obsv::report::default_tolerances();
        write(&baseline_file, &baseline_json(&report, &rules).pretty())?;
        eprintln!("baseline blessed: {}", baseline_file.display());
        if scale == Scale::Paper {
            regenerate_experiments(&report)?;
        }
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_text = std::fs::read_to_string(&baseline_file).map_err(|e| {
        format!(
            "no baseline at {} ({e}); run with --bless to create one",
            baseline_file.display()
        )
    })?;
    let baseline = json::parse(&baseline_text)
        .map_err(|e| format!("parsing {}: {e}", baseline_file.display()))?;
    let rules = parse_tolerances(&baseline);
    let result = compare(&doc, &baseline, &rules);
    if result.passed() {
        eprintln!(
            "gate passed: {} fields compared against {}, {} ignored under annotations",
            result.compared,
            baseline_file.display(),
            result.ignored,
        );
        if scale == Scale::Paper {
            regenerate_experiments(&report)?;
        }
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "gate FAILED against {} ({} violations):",
            baseline_file.display(),
            result.violations.len()
        );
        for v in &result.violations {
            eprintln!("  {v}");
        }
        eprintln!("(if the change is intended, re-bless with --bless)");
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("report: {msg}");
            ExitCode::from(2)
        }
    }
}
