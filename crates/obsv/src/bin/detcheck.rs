//! detcheck — the run-to-run determinism gate.
//!
//! Runs every application under every Table 2 protocol **twice with
//! identical specs** and requires the two runs to be bit-identical:
//! byte-for-byte equal `phases_json`, equal full trace fingerprints
//! (`MsgSend`/`MsgRecv` causal edges included), equal digests, virtual
//! execution times, and total log bytes — no tolerance bands anywhere.
//! The fault-free matrix is then repeated under fixed chaos schedules
//! (lossy network, a partition window, and — for the logging
//! protocols — a mid-run crash) to show that determinism survives the
//! reliable layer and recovery, not just the happy path.
//!
//! Usage: `detcheck [--paper] [--chaos N]`
//!
//! * default scale is the 4-node smoke matrix (seconds); `--paper`
//!   runs the paper's 8-node workloads (minutes),
//! * `--chaos N` selects how many of the fixed chaos schedules to
//!   replay (default 2).
//!
//! Exit status is non-zero on the first mismatch, with the offending
//! field named. `scripts/verify.sh` runs the smoke matrix on every
//! verification pass.

use ccl_apps::App;
use ccl_core::{
    CrashPlan, DiskFaultPlan, FaultPlan, Partition, Protocol, RunOutput, SimDuration, SimTime,
};
use obsv::report::{trace_fingerprint, Scale};

/// Fixed chaos schedules, in replay order. Each is fully determined by
/// its constants, so two invocations build byte-identical fault plans.
fn chaos_plan(index: usize, n_nodes: usize) -> FaultPlan {
    match index % 4 {
        0 => FaultPlan::lossy(0xDE7_0001, 25, 15),
        1 => FaultPlan::lossy(0xDE7_0002, 40, 10).with_partition(Partition {
            a: 0,
            b: 2 % n_nodes,
            from: SimTime(400_000),
            until: SimTime(400_000) + SimDuration::from_micros(600),
        }),
        2 => FaultPlan::lossy(0xDE7_0003, 10, 40),
        _ => FaultPlan::lossy(0xDE7_0004, 50, 25).with_partition(Partition {
            a: 1,
            b: 3 % n_nodes,
            from: SimTime(1_200_000),
            until: SimTime(1_200_000) + SimDuration::from_micros(300),
        }),
    }
}

/// Everything detcheck compares between two same-spec runs.
struct Observables {
    phases_json: String,
    trace_fp: u64,
    digest: u64,
    exec_ns: u64,
    log_bytes: u64,
    /// The full rendered blame document: critical path, per-object
    /// attribution, log split. Byte-compared — the blame engine is a
    /// pure function of the deterministic trace.
    blame_json: String,
    trace_dropped: u64,
}

fn observe(label: &str, out: &RunOutput<u64>) -> Observables {
    Observables {
        phases_json: out.phases_json(label),
        trace_fp: trace_fingerprint(out),
        digest: out.nodes[0].result,
        exec_ns: out.exec_time().as_nanos(),
        log_bytes: out.total_log_bytes(),
        blame_json: obsv::blame_json(&obsv::analyze(out), label).pretty(),
        trace_dropped: out.nodes.iter().map(|n| n.trace_dropped).sum(),
    }
}

/// Run `make` twice and compare every observable exactly. Returns the
/// number of mismatched fields (0 = deterministic).
fn check_pair(label: &str, make: impl Fn() -> RunOutput<u64>) -> usize {
    let a = observe(label, &make());
    let b = observe(label, &make());
    let mut bad = 0;
    let mut field = |name: &str, equal: bool| {
        if !equal {
            eprintln!("FAIL {label}: {name} differs between same-seed runs");
            bad += 1;
        }
    };
    field("digest", a.digest == b.digest);
    field("exec_ns", a.exec_ns == b.exec_ns);
    field("log_bytes", a.log_bytes == b.log_bytes);
    field("trace_fingerprint", a.trace_fp == b.trace_fp);
    field("phases_json", a.phases_json == b.phases_json);
    field("blame_json", a.blame_json == b.blame_json);
    // A truncated trace silently falsifies every trace-derived
    // observable (fingerprint, blame path, log attribution), so any
    // drop is a hard failure, not a warning.
    if a.trace_dropped > 0 {
        eprintln!(
            "FAIL {label}: {} trace event(s) dropped — trace-derived checks are not trustworthy",
            a.trace_dropped
        );
        bad += 1;
    }
    if bad == 0 {
        println!(
            "ok   {label}: exec_ns={} log_bytes={} fp={:#018x}",
            a.exec_ns, a.log_bytes, a.trace_fp
        );
    }
    bad
}

fn main() {
    let mut scale = Scale::Smoke;
    let mut chaos = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::Paper,
            "--chaos" => {
                chaos = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--chaos takes a count");
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: detcheck [--paper] [--chaos N])");
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0usize;
    println!("== fault-free matrix ({}) ==", scale.label());
    for app in App::ALL {
        for protocol in Protocol::TABLE2 {
            let label = format!("{}/{}", app.name(), protocol.label());
            failures += check_pair(&label, || scale.run(app, protocol));
        }
    }

    println!(
        "== chaos matrix ({}, {} schedule(s)) ==",
        scale.label(),
        chaos
    );
    for index in 0..chaos {
        let plan = chaos_plan(index, scale.nodes());
        for app in App::ALL {
            for protocol in Protocol::TABLE2 {
                let label = format!("{}/{}/chaos{}", app.name(), protocol.label(), index);
                let plan = plan.clone();
                failures += check_pair(&label, || {
                    let mut spec = scale.spec(app, protocol).with_faults(plan.clone());
                    // Logging protocols also replay a mid-run crash:
                    // recovery must be just as reproducible.
                    if protocol != Protocol::None {
                        spec = spec.with_crash(CrashPlan::new(1, 3));
                    }
                    match scale {
                        Scale::Paper => ccl_core::run_program(spec, move |dsm| app.run_paper(dsm)),
                        Scale::Smoke => ccl_core::run_program(spec, move |dsm| app.run_tiny(dsm)),
                    }
                });
            }
        }
    }

    // Stable-storage damage must be just as reproducible as network
    // chaos: the mid-flush tear, the salvage scan, the synthesized
    // replay horizon, and the repair wave are all seeded/deterministic,
    // so two same-spec runs must agree byte-for-byte here too.
    println!("== durability matrix ({}) ==", scale.label());
    let mut seed = 0xD15C_C4A5_4ED0_u64;
    for app in App::ALL {
        for protocol in [Protocol::Ml, Protocol::Ccl] {
            seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let torn_seed = seed;
            let label = format!("{}/{}/torn", app.name(), protocol.label());
            failures += check_pair(&label, || {
                let crash = if torn_seed.is_multiple_of(2) {
                    CrashPlan::new(1, 3).with_torn_tail(torn_seed)
                } else {
                    CrashPlan::new(1, 3).with_garbled_tail(torn_seed)
                };
                let spec = scale.spec(app, protocol).with_crash(crash);
                match scale {
                    Scale::Paper => ccl_core::run_program(spec, move |dsm| app.run_paper(dsm)),
                    Scale::Smoke => ccl_core::run_program(spec, move |dsm| app.run_tiny(dsm)),
                }
            });
            let rot_seed = seed.rotate_left(17);
            let label = format!("{}/{}/rot", app.name(), protocol.label());
            failures += check_pair(&label, || {
                let spec = scale
                    .spec(app, protocol)
                    .with_disk_fault(1, DiskFaultPlan::bit_rot(rot_seed, 350))
                    .with_crash(CrashPlan::new(1, 3));
                match scale {
                    Scale::Paper => ccl_core::run_program(spec, move |dsm| app.run_paper(dsm)),
                    Scale::Smoke => ccl_core::run_program(spec, move |dsm| app.run_tiny(dsm)),
                }
            });
        }
    }

    if failures > 0 {
        eprintln!("detcheck: {failures} observable(s) were not reproducible");
        std::process::exit(1);
    }
    println!("detcheck: every run was bit-reproducible");
}
