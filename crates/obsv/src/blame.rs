//! Causal blame engine: virtual-time critical path and per-object cost.
//!
//! Every run already records *where* time went (the phase breakdown:
//! compute / wait / disk / hidden). This module answers *why*: it
//! reconstructs the cross-node causal structure from the trace and
//! attributes every nanosecond of the run's makespan — and every logged
//! byte — to the **coherence object** responsible: the page that was
//! fetched, the lock whose holder kept others waiting, the barrier
//! episode whose straggler released everyone late, the home whose
//! diff-ack arrived last.
//!
//! # Wait spans
//!
//! The producers stamp each blocking episode with its duration and its
//! cause at the moment the wait ends:
//!
//! * [`TraceKind::PageFetch`] — `wait_ns` of fault-to-installed-copy
//!   stall, blamed on the page, caused by the serving home/owner;
//! * [`TraceKind::LockAcquire`] — `wait_ns` of request-to-grant stall,
//!   blamed on the lock; the *holder* is joined from the manager-side
//!   [`TraceKind::LockGranted`] stream (the n-th acquire of lock L on
//!   node N matches the manager's n-th grant of L to N — grants to one
//!   `(lock, to)` pair are FIFO because a node never has two
//!   outstanding acquires of the same lock);
//! * [`TraceKind::BarrierEnter`]/[`TraceKind::BarrierExit`] — the
//!   bracketed interval is a barrier wait, blamed on the episode; the
//!   straggler is joined from the manager-side
//!   [`TraceKind::BarrierReleased`];
//! * [`TraceKind::FlushAckWait`] — the end-of-interval stall for diff
//!   acks, blamed on the slowest home.
//!
//! # The blame path
//!
//! The *blame path* is a causally ordered, exact partition of
//! `[0, exec_ns]`: starting from the node that finished last, walk
//! backward; each step finds the latest wait span ending at or before
//! the cursor, emits the local segment above it and the wait segment
//! itself, then hops to the *causing* node at the span's start and
//! continues there. Time the causer spent computing in parallel with
//! the wait is charged to the wait (that is the point: the waiter lost
//! that time *to* the cause). Segment durations therefore sum to
//! **exactly** `exec_ns` — asserted by [`Blame::cp_sum_ns`] consumers
//! and by the `blame` binary on every run.
//!
//! Segments on a crashed node that fall inside its recovery window
//! `[crashed_at, recovery_exit]` are split out as `recovery` segments,
//! so log-replay time on the makespan is visible separately.
//!
//! # Log-byte attribution
//!
//! Loggers emit one [`TraceKind::LogAppend`] per coherence object
//! (multi-object records split their framed bytes by encoded size, the
//! frame overhead riding on the first object), and one
//! [`TraceKind::LogFlush`] per stable write. Reconciliation is a FIFO
//! queue per node: a flush pops the appends it persisted; bytes the
//! appends don't explain (e.g. streams that log whole framed batches
//! without itemized appends) fall to `meta`; appends never flushed
//! (crash-dropped, degraded or paused devices) land in the `unflushed`
//! bucket. Flushed attribution sums to **exactly**
//! `total_stats().log_bytes` because both count the same
//! `LogFlush.bytes`.
//!
//! Everything here is a pure function of the trace, and the trace is a
//! pure function of the deterministic virtual-time schedule — so
//! [`blame_json`] is byte-stable across runs and goldenable
//! (`detcheck` compares it).

use std::collections::{BTreeMap, VecDeque};

use ccl_core::{LogObj, RunOutput, TraceKind};

use crate::json::Json;

/// Schema tag stamped into every [`blame_json`] document.
pub const SCHEMA: &str = "ccl-blame/v1";

/// How many objects / barrier episodes the JSON keeps (full data stays
/// in [`Blame`]).
pub const TOP_K: usize = 8;

/// The coherence object a cost is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlameObj {
    /// A shared page.
    Page(u32),
    /// A lock.
    Lock(u32),
    /// A barrier episode.
    Barrier(u32),
    /// An end-of-interval diff-flush ack wait, keyed by the slowest
    /// home (the node whose ack arrived last).
    Flush(usize),
    /// Protocol metadata: log framing, un-itemized records.
    Meta,
}

impl BlameObj {
    /// Stable machine-readable key, e.g. `page:12`, `lock:3`,
    /// `barrier:7`, `flush:home2`, `meta`.
    pub fn key(&self) -> String {
        match self {
            BlameObj::Page(p) => format!("page:{p}"),
            BlameObj::Lock(l) => format!("lock:{l}"),
            BlameObj::Barrier(e) => format!("barrier:{e}"),
            BlameObj::Flush(h) => format!("flush:home{h}"),
            BlameObj::Meta => "meta".to_string(),
        }
    }

    /// The object's class: `page`, `lock`, `barrier`, `flush` or
    /// `meta`.
    pub fn class(&self) -> &'static str {
        match self {
            BlameObj::Page(_) => "page",
            BlameObj::Lock(_) => "lock",
            BlameObj::Barrier(_) => "barrier",
            BlameObj::Flush(_) => "flush",
            BlameObj::Meta => "meta",
        }
    }
}

/// What one blame-path segment was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local progress (compute, or anything that is not a traced wait).
    Compute,
    /// Local progress inside the node's recovery window (log replay).
    Recovery,
    /// A traced wait, blamed on `obj`; `causer` is the node the walk
    /// hops to (home, lock holder, straggler, slowest home).
    Wait {
        /// The blamed coherence object.
        obj: BlameObj,
        /// The node responsible for the wait.
        causer: usize,
    },
}

/// One segment of the blame path. Half-open `[start_ns, end_ns)` on
/// `node`'s virtual-time axis; consecutive segments abut causally, not
/// necessarily on the same node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Node the segment lies on.
    pub node: usize,
    /// Segment start, virtual ns.
    pub start_ns: u64,
    /// Segment end, virtual ns.
    pub end_ns: u64,
    /// What the node was doing.
    pub kind: SegmentKind,
}

impl Segment {
    /// Segment width in virtual ns.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Aggregated cost of one coherence object across the whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectCost {
    /// Wait ns this object put on the blame path.
    pub cp_wait_ns: u64,
    /// Wait ns across *all* nodes' wait spans (on- and off-path).
    pub total_wait_ns: u64,
    /// Number of wait spans blaming this object.
    pub waits: u64,
    /// Stable log bytes attributed to this object (flushed only).
    pub log_bytes: u64,
    /// Log records (itemized appends) attributed to this object.
    pub log_records: u64,
}

/// One barrier episode's blame row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierRow {
    /// Barrier episode.
    pub epoch: u32,
    /// Last arrival (from the manager's [`TraceKind::BarrierReleased`]).
    pub straggler: usize,
    /// First-to-last arrival spread, virtual ns.
    pub spread_ns: u64,
    /// Wait ns this episode put on the blame path.
    pub cp_wait_ns: u64,
    /// Wait ns across all nodes for this episode.
    pub total_wait_ns: u64,
}

/// One crashed node's recovery window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryWindow {
    /// The crashed node.
    pub node: usize,
    /// Crash instant, virtual ns.
    pub crash_ns: u64,
    /// End of recovery (resumed live), virtual ns.
    pub exit_ns: u64,
    /// Logged episodes replayed inside the window.
    pub replayed: u64,
    /// Blame-path ns inside the window (how much of the makespan the
    /// recovery occupied).
    pub cp_ns: u64,
}

/// The full blame analysis of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blame {
    /// The run's makespan (max node finish), virtual ns.
    pub exec_ns: u64,
    /// The blame path, in causal (forward-time) order. Durations sum
    /// to exactly [`Blame::exec_ns`].
    pub critical_path: Vec<Segment>,
    /// Per-object aggregated cost, keyed by object.
    pub objects: BTreeMap<BlameObj, ObjectCost>,
    /// Per-episode barrier rows, in epoch order.
    pub barriers: Vec<BarrierRow>,
    /// Flushed log bytes per object class (`page`/`lock`/`barrier`/
    /// `meta`). Sums to the run's `total_stats().log_bytes`.
    pub log_by_class: BTreeMap<&'static str, u64>,
    /// Appended-but-never-flushed bytes (crash-dropped, degraded or
    /// paused log devices).
    pub unflushed_bytes: u64,
    /// Recovery windows of crashed nodes, in node order.
    pub recovery: Vec<RecoveryWindow>,
    /// Cluster-wide fetch-hiding effectiveness counters.
    pub prefetch: PrefetchSummary,
}

/// How well the batched-prefetch and home-migration machinery worked:
/// pages pulled in speculatively, how many later served a fault, how
/// many were invalidated unused, and how many homes moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchSummary {
    /// Extra pages carried by demand-fetch batches.
    pub issued: u64,
    /// Faults absorbed by a previously prefetched copy.
    pub hits: u64,
    /// Prefetched copies invalidated before any use.
    pub wasted: u64,
    /// Home migrations committed at checkpoint barriers.
    pub home_migrations: u64,
}

/// One wait span on a node's timeline, cause resolved.
#[derive(Debug, Clone, Copy)]
struct WaitSpan {
    start: u64,
    end: u64,
    obj: BlameObj,
    causer: usize,
}

impl Blame {
    /// Sum of blame-path segment durations — equal to
    /// [`Blame::exec_ns`] by construction.
    pub fn cp_sum_ns(&self) -> u64 {
        self.critical_path.iter().map(Segment::dur_ns).sum()
    }

    /// Blame-path wait ns per object class.
    pub fn cp_wait_by_class(&self) -> BTreeMap<&'static str, u64> {
        let mut by = BTreeMap::new();
        for seg in &self.critical_path {
            if let SegmentKind::Wait { obj, .. } = seg.kind {
                *by.entry(obj.class()).or_insert(0) += seg.dur_ns();
            }
        }
        by
    }

    /// Blame-path ns spent in `kind` segments.
    fn cp_kind_ns(&self, want: SegmentKind) -> u64 {
        self.critical_path
            .iter()
            .filter(|s| s.kind == want)
            .map(Segment::dur_ns)
            .sum()
    }

    /// Blame-path compute ns.
    pub fn cp_compute_ns(&self) -> u64 {
        self.cp_kind_ns(SegmentKind::Compute)
    }

    /// Blame-path recovery ns.
    pub fn cp_recovery_ns(&self) -> u64 {
        self.cp_kind_ns(SegmentKind::Recovery)
    }

    /// Total flushed log bytes across all classes.
    pub fn log_total_bytes(&self) -> u64 {
        self.log_by_class.values().sum()
    }

    /// Objects ranked most-blamed first: by blame-path wait, then total
    /// wait, then log bytes, ties broken by key for determinism.
    pub fn ranked_objects(&self) -> Vec<(BlameObj, &ObjectCost)> {
        let mut v: Vec<_> = self.objects.iter().map(|(o, c)| (*o, c)).collect();
        v.sort_by(|(ao, ac), (bo, bc)| {
            (bc.cp_wait_ns, bc.total_wait_ns, bc.log_bytes)
                .cmp(&(ac.cp_wait_ns, ac.total_wait_ns, ac.log_bytes))
                .then_with(|| ao.cmp(bo))
        });
        v
    }

    /// The single most-blamed object, if any cost was attributed.
    pub fn top_object(&self) -> Option<BlameObj> {
        self.ranked_objects()
            .into_iter()
            .find(|(_, c)| c.cp_wait_ns > 0 || c.total_wait_ns > 0 || c.log_bytes > 0)
            .map(|(o, _)| o)
    }
}

/// Join tables built from manager-side trace events.
struct Joins {
    /// `(lock, grantee)` → holders, in grant order.
    grants: BTreeMap<(u32, usize), Vec<usize>>,
    /// Barrier epoch → (straggler, spread_ns). A re-released epoch
    /// (manager crashed and the episode re-ran) keeps the last release.
    stragglers: BTreeMap<u32, (usize, u64)>,
}

fn build_joins<R>(run: &RunOutput<R>) -> Joins {
    let mut grants: BTreeMap<(u32, usize), Vec<usize>> = BTreeMap::new();
    let mut stragglers = BTreeMap::new();
    for n in &run.nodes {
        for ev in &n.trace {
            match ev.kind {
                TraceKind::LockGranted { lock, to, holder } => {
                    grants.entry((lock, to)).or_default().push(holder);
                }
                TraceKind::BarrierReleased {
                    epoch,
                    straggler,
                    spread_ns,
                } => {
                    stragglers.insert(epoch, (straggler, spread_ns));
                }
                _ => {}
            }
        }
    }
    Joins { grants, stragglers }
}

fn obj_of_log(obj: LogObj) -> BlameObj {
    match obj {
        LogObj::Page { page } => BlameObj::Page(page),
        LogObj::Lock { lock } => BlameObj::Lock(lock),
        LogObj::Barrier { epoch } => BlameObj::Barrier(epoch),
        LogObj::Meta => BlameObj::Meta,
    }
}

/// Per-node scan results: wait spans (end-sorted) and log attribution.
struct NodeScan {
    spans: Vec<WaitSpan>,
    /// Flushed bytes and record counts per object.
    flushed: BTreeMap<BlameObj, (u64, u64)>,
    unflushed_bytes: u64,
    replayed: u64,
}

fn scan_node<R>(n: &ccl_core::NodeOutput<R>, joins: &Joins) -> NodeScan {
    let me = n.node;
    let mut spans = Vec::new();
    let mut lock_seen: BTreeMap<u32, usize> = BTreeMap::new();
    let mut barrier_enter: BTreeMap<u32, u64> = BTreeMap::new();
    let mut pending: VecDeque<(u64, BlameObj)> = VecDeque::new();
    let mut flushed: BTreeMap<BlameObj, (u64, u64)> = BTreeMap::new();
    let mut unflushed = 0u64;
    let mut replayed = 0u64;
    for ev in &n.trace {
        let at = ev.at.as_nanos();
        match ev.kind {
            TraceKind::PageFetch {
                page,
                from,
                wait_ns,
            } if wait_ns > 0 => {
                spans.push(WaitSpan {
                    start: at.saturating_sub(wait_ns),
                    end: at,
                    obj: BlameObj::Page(page),
                    causer: from,
                });
            }
            TraceKind::LockAcquire { lock, wait_ns } => {
                let k = lock_seen.entry(lock).or_insert(0);
                let holder = joins
                    .grants
                    .get(&(lock, me))
                    .and_then(|g| g.get(*k))
                    .copied()
                    .unwrap_or(me);
                *k += 1;
                if wait_ns > 0 {
                    spans.push(WaitSpan {
                        start: at.saturating_sub(wait_ns),
                        end: at,
                        obj: BlameObj::Lock(lock),
                        causer: holder,
                    });
                }
            }
            TraceKind::FlushAckWait { home, wait_ns } if wait_ns > 0 => {
                spans.push(WaitSpan {
                    start: at.saturating_sub(wait_ns),
                    end: at,
                    obj: BlameObj::Flush(home),
                    causer: home,
                });
            }
            TraceKind::BarrierEnter { epoch } => {
                barrier_enter.insert(epoch, at);
            }
            TraceKind::BarrierExit { epoch } => {
                if let Some(enter) = barrier_enter.remove(&epoch) {
                    if at > enter {
                        let (straggler, _) =
                            joins.stragglers.get(&epoch).copied().unwrap_or((me, 0));
                        spans.push(WaitSpan {
                            start: enter,
                            end: at,
                            obj: BlameObj::Barrier(epoch),
                            causer: straggler,
                        });
                    }
                }
            }
            TraceKind::LogAppend { bytes, obj } => {
                pending.push_back((bytes, obj_of_log(obj)));
            }
            TraceKind::LogFlush { bytes, .. } => {
                // Pop the appends this flush persisted (FIFO — staged
                // bytes reset per flush, so the front of the queue is
                // exactly what went out). Residual bytes the appends
                // don't explain are framing or un-itemized records.
                let mut left = bytes;
                while let Some(&(b, obj)) = pending.front() {
                    if b > left {
                        break;
                    }
                    pending.pop_front();
                    left -= b;
                    let e = flushed.entry(obj).or_insert((0, 0));
                    e.0 += b;
                    e.1 += 1;
                }
                if left > 0 {
                    flushed.entry(BlameObj::Meta).or_insert((0, 0)).0 += left;
                }
            }
            TraceKind::Crash => {
                // Volatile staged records died with the node.
                unflushed += pending.drain(..).map(|(b, _)| b).sum::<u64>();
                barrier_enter.clear();
            }
            TraceKind::RecoveryReplay { .. } => replayed += 1,
            _ => {}
        }
    }
    unflushed += pending.drain(..).map(|(b, _)| b).sum::<u64>();
    spans.retain(|s| s.end > s.start);
    spans.sort_by_key(|s| (s.end, s.start));
    NodeScan {
        spans,
        flushed,
        unflushed_bytes: unflushed,
        replayed,
    }
}

/// Split a local segment by the node's recovery window and push the
/// pieces (in backward order, matching the walk).
fn push_local(
    path: &mut Vec<Segment>,
    node: usize,
    start: u64,
    end: u64,
    window: Option<(u64, u64)>,
) {
    if end <= start {
        return;
    }
    // Backward order: the piece nearest `end` first.
    let mut cuts = vec![(start, end, SegmentKind::Compute)];
    if let Some((w0, w1)) = window {
        let (w0, w1) = (w0.max(start), w1.min(end));
        if w1 > w0 {
            cuts = Vec::new();
            if end > w1 {
                cuts.push((w1, end, SegmentKind::Compute));
            }
            cuts.push((w0, w1, SegmentKind::Recovery));
            if w0 > start {
                cuts.push((start, w0, SegmentKind::Compute));
            }
        }
    }
    for (s, e, kind) in cuts {
        path.push(Segment {
            node,
            start_ns: s,
            end_ns: e,
            kind,
        });
    }
}

/// Analyze one run: reconstruct wait spans, walk the blame path,
/// attribute log bytes. Pure function of the (deterministic) trace.
pub fn analyze<R>(run: &RunOutput<R>) -> Blame {
    let joins = build_joins(run);
    let scans: Vec<NodeScan> = run.nodes.iter().map(|n| scan_node(n, &joins)).collect();
    let windows: Vec<Option<(u64, u64)>> = run
        .nodes
        .iter()
        .map(|n| match (n.crashed_at, n.recovery_exit) {
            (Some(c), Some(x)) => Some((c.as_nanos(), x.as_nanos())),
            _ => None,
        })
        .collect();

    // Start at the last finisher (smallest id on ties — node order).
    let exec_ns = run.exec_time().as_nanos();
    let mut cur = 0usize;
    for (i, n) in run.nodes.iter().enumerate() {
        if n.finish.as_nanos() > run.nodes[cur].finish.as_nanos() {
            cur = i;
        }
    }

    let mut consumed: Vec<Vec<bool>> = scans.iter().map(|s| vec![false; s.spans.len()]).collect();
    let mut path: Vec<Segment> = Vec::new();
    let mut t = exec_ns;
    let total_spans: usize = scans.iter().map(|s| s.spans.len()).sum();
    for _guard in 0..=total_spans {
        // Latest span on `cur` ending at or before the cursor.
        let spans = &scans[cur].spans;
        let idx = spans.partition_point(|s| s.end <= t);
        if idx == 0 {
            break;
        }
        let s = spans[idx - 1];
        consumed[cur][idx - 1] = true;
        push_local(&mut path, cur, s.end, t, windows[cur]);
        path.push(Segment {
            node: cur,
            start_ns: s.start,
            end_ns: s.end,
            kind: SegmentKind::Wait {
                obj: s.obj,
                causer: s.causer,
            },
        });
        t = s.start;
        cur = s.causer;
    }
    push_local(&mut path, cur, 0, t, windows[cur]);
    path.reverse();

    // Aggregate objects: wait spans (on/off path) and log bytes.
    let mut objects: BTreeMap<BlameObj, ObjectCost> = BTreeMap::new();
    let mut barrier_total: BTreeMap<u32, u64> = BTreeMap::new();
    for (scan, used) in scans.iter().zip(&consumed) {
        for (s, &on_path) in scan.spans.iter().zip(used) {
            let c = objects.entry(s.obj).or_default();
            let dur = s.end - s.start;
            c.total_wait_ns += dur;
            c.waits += 1;
            if on_path {
                c.cp_wait_ns += dur;
            }
            if let BlameObj::Barrier(e) = s.obj {
                *barrier_total.entry(e).or_insert(0) += dur;
            }
        }
        for (obj, &(bytes, recs)) in &scan.flushed {
            let c = objects.entry(*obj).or_default();
            c.log_bytes += bytes;
            c.log_records += recs;
        }
    }

    let mut log_by_class: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (obj, cost) in &objects {
        if cost.log_bytes > 0 {
            *log_by_class.entry(obj.class()).or_insert(0) += cost.log_bytes;
        }
    }

    let barriers = joins
        .stragglers
        .iter()
        .map(|(&epoch, &(straggler, spread_ns))| BarrierRow {
            epoch,
            straggler,
            spread_ns,
            cp_wait_ns: objects
                .get(&BlameObj::Barrier(epoch))
                .map(|c| c.cp_wait_ns)
                .unwrap_or(0),
            total_wait_ns: barrier_total.get(&epoch).copied().unwrap_or(0),
        })
        .collect();

    let recovery = run
        .nodes
        .iter()
        .zip(&windows)
        .zip(&scans)
        .filter_map(|((n, w), scan)| {
            w.map(|(c, x)| RecoveryWindow {
                node: n.node,
                crash_ns: c,
                exit_ns: x,
                replayed: scan.replayed,
                cp_ns: path
                    .iter()
                    .filter(|s| s.node == n.node && s.kind == SegmentKind::Recovery)
                    .map(Segment::dur_ns)
                    .sum(),
            })
        })
        .collect();

    Blame {
        exec_ns,
        critical_path: path,
        objects,
        barriers,
        log_by_class,
        unflushed_bytes: scans.iter().map(|s| s.unflushed_bytes).sum(),
        recovery,
        prefetch: {
            let ts = run.total_stats();
            PrefetchSummary {
                issued: ts.prefetch_issued,
                hits: ts.prefetch_hits,
                wasted: ts.prefetch_wasted,
                home_migrations: ts.home_migrations,
            }
        },
    }
}

/// Render one blame analysis as a deterministic JSON document.
pub fn blame_json(blame: &Blame, label: &str) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str(SCHEMA.to_string()));
    doc.set("label", Json::Str(label.to_string()));
    doc.set("exec_ns", Json::from_u64(blame.exec_ns));

    let mut cp = Json::obj();
    cp.set("segments", Json::from_u64(blame.critical_path.len() as u64));
    cp.set("sum_ns", Json::from_u64(blame.cp_sum_ns()));
    cp.set("compute_ns", Json::from_u64(blame.cp_compute_ns()));
    cp.set("recovery_ns", Json::from_u64(blame.cp_recovery_ns()));
    let by_class = blame.cp_wait_by_class();
    let mut waits = Json::obj();
    for class in ["page", "lock", "barrier", "flush"] {
        waits.set(
            class,
            Json::from_u64(by_class.get(class).copied().unwrap_or(0)),
        );
    }
    cp.set("wait_ns_by_class", waits);
    let mut segs = Vec::new();
    for s in &blame.critical_path {
        let mut j = Json::obj();
        j.set("node", Json::from_u64(s.node as u64));
        j.set("start_ns", Json::from_u64(s.start_ns));
        j.set("end_ns", Json::from_u64(s.end_ns));
        match s.kind {
            SegmentKind::Compute => {
                j.set("kind", Json::Str("compute".into()));
            }
            SegmentKind::Recovery => {
                j.set("kind", Json::Str("recovery".into()));
            }
            SegmentKind::Wait { obj, causer } => {
                j.set("kind", Json::Str("wait".into()));
                j.set("object", Json::Str(obj.key()));
                j.set("causer", Json::from_u64(causer as u64));
            }
        }
        segs.push(j);
    }
    cp.set("path", Json::Arr(segs));
    doc.set("critical_path", cp);

    let mut tops = Vec::new();
    for (obj, cost) in blame.ranked_objects().into_iter().take(TOP_K) {
        if cost.cp_wait_ns == 0 && cost.total_wait_ns == 0 && cost.log_bytes == 0 {
            continue;
        }
        let mut j = Json::obj();
        j.set("object", Json::Str(obj.key()));
        j.set("class", Json::Str(obj.class().to_string()));
        j.set("cp_wait_ns", Json::from_u64(cost.cp_wait_ns));
        j.set("total_wait_ns", Json::from_u64(cost.total_wait_ns));
        j.set("waits", Json::from_u64(cost.waits));
        j.set("log_bytes", Json::from_u64(cost.log_bytes));
        j.set("log_records", Json::from_u64(cost.log_records));
        tops.push(j);
    }
    doc.set("objects", Json::Arr(tops));

    let mut rows: Vec<&BarrierRow> = blame.barriers.iter().collect();
    rows.sort_by(|a, b| {
        (b.total_wait_ns, b.spread_ns)
            .cmp(&(a.total_wait_ns, a.spread_ns))
            .then_with(|| a.epoch.cmp(&b.epoch))
    });
    let mut btab = Vec::new();
    for r in rows.into_iter().take(TOP_K) {
        let mut j = Json::obj();
        j.set("epoch", Json::from_u64(r.epoch as u64));
        j.set("straggler", Json::from_u64(r.straggler as u64));
        j.set("spread_ns", Json::from_u64(r.spread_ns));
        j.set("cp_wait_ns", Json::from_u64(r.cp_wait_ns));
        j.set("total_wait_ns", Json::from_u64(r.total_wait_ns));
        btab.push(j);
    }
    let mut barriers = Json::obj();
    barriers.set("episodes", Json::from_u64(blame.barriers.len() as u64));
    barriers.set("stragglers", Json::Arr(btab));
    doc.set("barriers", barriers);

    let mut log = Json::obj();
    for class in ["page", "lock", "barrier", "meta"] {
        log.set(
            class,
            Json::from_u64(blame.log_by_class.get(class).copied().unwrap_or(0)),
        );
    }
    log.set("flushed_total", Json::from_u64(blame.log_total_bytes()));
    log.set("unflushed", Json::from_u64(blame.unflushed_bytes));
    doc.set("log_bytes", log);

    let mut pf = Json::obj();
    pf.set("issued", Json::from_u64(blame.prefetch.issued));
    pf.set("hits", Json::from_u64(blame.prefetch.hits));
    pf.set("wasted", Json::from_u64(blame.prefetch.wasted));
    pf.set(
        "home_migrations",
        Json::from_u64(blame.prefetch.home_migrations),
    );
    doc.set("prefetch", pf);

    let mut rec = Vec::new();
    for w in &blame.recovery {
        let mut j = Json::obj();
        j.set("node", Json::from_u64(w.node as u64));
        j.set("crash_ns", Json::from_u64(w.crash_ns));
        j.set("exit_ns", Json::from_u64(w.exit_ns));
        j.set("window_ns", Json::from_u64(w.exit_ns - w.crash_ns));
        j.set("replayed", Json::from_u64(w.replayed));
        j.set("cp_ns", Json::from_u64(w.cp_ns));
        rec.push(j);
    }
    doc.set("recovery", Json::Arr(rec));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use ccl_core::{run_program, ClusterSpec, CrashPlan, Protocol};

    fn run(protocol: Protocol) -> RunOutput<u64> {
        let spec = ClusterSpec::new(4, 16)
            .with_page_size(256)
            .with_protocol(protocol);
        run_program(spec, |dsm| {
            let arr = dsm.alloc::<u64>(64);
            for round in 0..4 {
                dsm.acquire(1);
                let v = dsm.read(&arr, 0);
                dsm.write(&arr, 0, v + 1);
                dsm.release(1);
                let me = dsm.me();
                let v = dsm.read(&arr, 8 + me);
                dsm.write(&arr, 8 + me, v + round as u64);
                dsm.barrier();
            }
            dsm.read(&arr, 0)
        })
    }

    #[test]
    fn path_partitions_the_makespan_exactly() {
        for protocol in [Protocol::None, Protocol::Ml, Protocol::Ccl] {
            let out = run(protocol);
            let blame = analyze(&out);
            assert_eq!(
                blame.cp_sum_ns(),
                blame.exec_ns,
                "{protocol:?}: blame path must partition [0, exec_ns]"
            );
            assert_eq!(blame.exec_ns, out.exec_time().as_nanos());
            // Segments are causally ordered: start < end, and each
            // segment's end meets the next segment's start in time.
            for w in blame.critical_path.windows(2) {
                assert!(w[0].end_ns == w[1].start_ns, "path must be gapless");
            }
            for s in &blame.critical_path {
                assert!(s.start_ns < s.end_ns, "no zero-width segments");
            }
        }
    }

    #[test]
    fn log_attribution_sums_to_total_log_bytes() {
        for protocol in [Protocol::None, Protocol::Ml, Protocol::Ccl] {
            let out = run(protocol);
            let blame = analyze(&out);
            assert_eq!(
                blame.log_total_bytes(),
                out.total_stats().log_bytes,
                "{protocol:?}: flushed attribution must equal logged bytes"
            );
        }
        assert_eq!(analyze(&run(Protocol::None)).log_total_bytes(), 0);
    }

    #[test]
    fn contended_lock_is_blamed_with_a_real_holder() {
        let out = run(Protocol::Ccl);
        let blame = analyze(&out);
        let lock = blame
            .objects
            .get(&BlameObj::Lock(1))
            .expect("four nodes fighting over lock 1 must surface it");
        assert!(lock.total_wait_ns > 0, "contention means waiting");
        // At least one lock wait on the path must blame a *different*
        // node (the previous holder), proving the manager-side join.
        let cross = blame.critical_path.iter().any(|s| {
            matches!(
                s.kind,
                SegmentKind::Wait {
                    obj: BlameObj::Lock(1),
                    causer,
                } if causer != s.node
            )
        });
        let off_path = out.nodes.iter().any(|n| {
            n.trace.iter().any(
                |ev| matches!(ev.kind, TraceKind::LockGranted { holder, to, .. } if holder != to),
            )
        });
        assert!(
            cross || !off_path,
            "a contended grant must blame the previous holder"
        );
    }

    #[test]
    fn barrier_rows_name_stragglers_and_json_is_deterministic() {
        let out1 = run(Protocol::Ml);
        let out2 = run(Protocol::Ml);
        let b1 = analyze(&out1);
        let b2 = analyze(&out2);
        assert!(!b1.barriers.is_empty(), "the program barriers every round");
        for row in &b1.barriers {
            assert!(row.straggler < out1.nodes.len());
        }
        let j1 = blame_json(&b1, "tiny/ml").pretty();
        let j2 = blame_json(&b2, "tiny/ml").pretty();
        assert_eq!(j1, j2, "blame_json must be byte-identical across runs");
        let doc = json::parse(&j1).expect("blame_json parses");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            doc.get("critical_path")
                .unwrap()
                .get("sum_ns")
                .unwrap()
                .as_f64(),
            doc.get("exec_ns").unwrap().as_f64()
        );
    }

    #[test]
    fn crash_runs_carry_recovery_windows_on_the_path() {
        let spec = ClusterSpec::new(4, 16)
            .with_page_size(256)
            .with_protocol(Protocol::Ccl)
            .with_crash(CrashPlan::new(1, 2));
        let out = run_program(spec, |dsm| {
            let arr = dsm.alloc::<u64>(64);
            for _ in 0..6 {
                let me = dsm.me();
                let v = dsm.read(&arr, me);
                dsm.write(&arr, me, v + 1);
                dsm.barrier();
            }
            dsm.read(&arr, 0)
        });
        let blame = analyze(&out);
        assert_eq!(blame.cp_sum_ns(), blame.exec_ns);
        assert_eq!(blame.recovery.len(), 1, "one node crashed");
        let w = &blame.recovery[0];
        assert_eq!(w.node, 1);
        assert!(w.exit_ns > w.crash_ns);
        assert_eq!(
            blame.log_total_bytes(),
            out.total_stats().log_bytes,
            "attribution stays exact across a crash"
        );
    }

    #[test]
    fn wait_spans_never_leave_the_run_window() {
        let out = run(Protocol::Ccl);
        let blame = analyze(&out);
        for s in &blame.critical_path {
            assert!(s.end_ns <= blame.exec_ns);
        }
        assert_eq!(blame.critical_path.first().map(|s| s.start_ns), Some(0));
        assert_eq!(
            blame.critical_path.last().map(|s| s.end_ns),
            Some(blame.exec_ns)
        );
    }
}
