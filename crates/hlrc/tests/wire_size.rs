//! Wire-size contract, one test per message variant: the virtual-time
//! charge (`wire_size`) must equal the header plus the *actual* encoded
//! byte length, and the `encoded_len`/`header_len` hooks the engine's
//! debug assertion relies on must agree with the codec.

use std::sync::Arc;

use hlrc::homeless::HMsg;
use hlrc::{Msg, WriteNotice, HEADER_BYTES};
use pagemem::{Encode, IntervalId, PageDiff, PageFrame, Twin, VClock};
use simnet::WireSized;

fn check<M: WireSized + Encode>(m: &M) {
    let body = m.encode_to_vec().len();
    assert_eq!(m.wire_size(), HEADER_BYTES + body, "wire_size mismatch");
    assert_eq!(m.encoded_len(), Some(body), "encoded_len mismatch");
    assert_eq!(m.header_len(), HEADER_BYTES, "header_len mismatch");
}

fn vc() -> VClock {
    let mut v = VClock::new(4);
    v.observe(IntervalId { node: 1, seq: 3 });
    v.observe(IntervalId { node: 2, seq: 1 });
    v
}

fn notices() -> Vec<WriteNotice> {
    vec![
        WriteNotice {
            page: 5,
            interval: IntervalId { node: 1, seq: 3 },
        },
        WriteNotice {
            page: 9,
            interval: IntervalId { node: 2, seq: 1 },
        },
    ]
}

fn diff() -> PageDiff {
    let base = PageFrame::zeroed(256);
    let twin = Twin::of(&base);
    let mut cur = PageFrame::zeroed(256);
    cur.write_u64(8, 0xdead_beef);
    cur.write_u64(128, 77);
    PageDiff::create(3, &twin, &cur)
}

// ---------------------------------------------------------- Msg (HLRC)

#[test]
fn msg_page_request() {
    check(&Msg::PageRequest { page: 7 });
}

#[test]
fn msg_page_reply() {
    check(&Msg::PageReply {
        page: 7,
        data: vec![0xab; 256].into(),
        version: vc(),
    });
}

#[test]
fn msg_diff_flush() {
    check(&Msg::DiffFlush {
        writer: IntervalId { node: 2, seq: 9 },
        diffs: vec![diff()],
    });
}

#[test]
fn msg_diff_ack() {
    check(&Msg::DiffAck {
        writer: IntervalId { node: 2, seq: 9 },
    });
}

#[test]
fn msg_lock_request() {
    check(&Msg::LockRequest { lock: 3, vc: vc() });
}

#[test]
fn msg_lock_grant() {
    check(&Msg::LockGrant {
        lock: 3,
        vc: Arc::new(vc()),
        notices: notices(),
    });
}

#[test]
fn msg_lock_release() {
    check(&Msg::LockRelease {
        lock: 3,
        vc: vc(),
        notices: notices(),
    });
}

#[test]
fn msg_barrier_arrive() {
    check(&Msg::BarrierArrive {
        epoch: 4,
        vc: vc(),
        notices: notices(),
        proposals: vec![(7, 2), (296, 0)],
    });
}

#[test]
fn msg_barrier_release() {
    check(&Msg::BarrierRelease {
        epoch: 4,
        vc: Arc::new(vc()),
        notices: notices().into(),
        migrations: vec![(7, 2)].into(),
    });
}

#[test]
fn msg_page_request_batch() {
    check(&Msg::PageRequestBatch {
        page: 7,
        extras: vec![8, 9, 12],
    });
}

#[test]
fn msg_page_reply_batch() {
    check(&Msg::PageReplyBatch {
        after: 7,
        pages: vec![
            (8, vec![0xab; 256].into(), vc()),
            (9, vec![0xcd; 256].into(), vc()),
        ],
    });
}

#[test]
fn msg_release_history_reply() {
    check(&Msg::ReleaseHistoryReply {
        releases: vec![
            (0, vc(), notices(), vec![]),
            (1, vc(), vec![], vec![(5, 1)]),
        ],
    });
}

#[test]
fn msg_home_migrate() {
    check(&Msg::HomeMigrate {
        page: 296,
        data: vec![0xee; 256].into(),
        version: vc(),
    });
}

#[test]
fn msg_recovery_page_request() {
    check(&Msg::RecoveryPageRequest {
        page: 11,
        required: vc(),
    });
}

#[test]
fn msg_recovery_page_reply() {
    check(&Msg::RecoveryPageReply {
        page: 11,
        advanced: true,
        data: vec![1; 256].into(),
        version: vc(),
    });
}

#[test]
fn msg_logged_diff_request() {
    check(&Msg::LoggedDiffRequest {
        page: 11,
        seqs: vec![0, 2, 5],
    });
}

#[test]
fn msg_logged_diff_reply() {
    check(&Msg::LoggedDiffReply {
        page: 11,
        diffs: vec![(IntervalId { node: 1, seq: 2 }, diff())],
    });
}

// ------------------------------------------------------ HMsg (homeless)

#[test]
fn hmsg_copy_request() {
    check(&HMsg::CopyRequest { page: 7 });
}

#[test]
fn hmsg_copy_reply() {
    check(&HMsg::CopyReply {
        page: 7,
        data: vec![0xcd; 256].into(),
        applied: vc(),
    });
}

#[test]
fn hmsg_diff_request() {
    check(&HMsg::DiffRequest {
        page: 7,
        seqs: vec![1, 4],
    });
}

#[test]
fn hmsg_diff_reply() {
    check(&HMsg::DiffReply {
        page: 7,
        diffs: vec![(IntervalId { node: 1, seq: 4 }, diff())],
    });
}

#[test]
fn hmsg_lock_request() {
    check(&HMsg::LockRequest { lock: 2, vc: vc() });
}

#[test]
fn hmsg_lock_grant() {
    check(&HMsg::LockGrant {
        lock: 2,
        vc: vc(),
        notices: notices(),
    });
}

#[test]
fn hmsg_lock_release() {
    check(&HMsg::LockRelease {
        lock: 2,
        vc: vc(),
        notices: notices(),
    });
}

#[test]
fn hmsg_barrier_arrive() {
    check(&HMsg::BarrierArrive {
        epoch: 1,
        vc: vc(),
        notices: notices(),
    });
}

#[test]
fn hmsg_barrier_release() {
    check(&HMsg::BarrierRelease {
        epoch: 1,
        vc: vc(),
        notices: notices(),
    });
}
