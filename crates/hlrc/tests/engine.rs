//! Engine-level equivalence and telemetry contracts.
//!
//! Both coherence protocols run on the same `simnet::CoherenceProtocol`
//! engine; for any race-free schedule they must compute the same
//! application values, and the engine's trace stream must be
//! time-ordered.

use hlrc::homeless::HomelessNode;
use hlrc::{CoherenceProtocol, DsmConfig, HlrcNode, NoLogging};
use minicheck::{check, Rng};
use simnet::{run_cluster, SimTime};

const PAGE: usize = 256;

/// The operations a schedule needs, implemented by both protocols.
trait Mem {
    fn read(&mut self, addr: usize) -> u64;
    fn write(&mut self, addr: usize, v: u64);
    fn barrier(&mut self);
}

impl Mem for HlrcNode {
    fn read(&mut self, addr: usize) -> u64 {
        self.read_u64(addr)
    }
    fn write(&mut self, addr: usize, v: u64) {
        self.write_u64(addr, v)
    }
    fn barrier(&mut self) {
        HlrcNode::barrier(self)
    }
}

impl Mem for HomelessNode {
    fn read(&mut self, addr: usize) -> u64 {
        self.read_u64(addr)
    }
    fn write(&mut self, addr: usize, v: u64) {
        self.write_u64(addr, v)
    }
    fn barrier(&mut self) {
        HomelessNode::barrier(self)
    }
}

/// One pseudorandom, race-free barrier schedule: `rounds` rounds, each
/// node writing words of its own stripe (word w belongs to node
/// w % nodes) with seed-derived values, then all nodes reading the same
/// seed-chosen sample after the barrier and folding it into a digest.
#[derive(Clone, Copy)]
struct Schedule {
    seed: u64,
    nodes: usize,
    pages: u32,
    rounds: u32,
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Schedule {
    fn run(&self, me: usize, node: &mut dyn Mem) -> u64 {
        let words = self.pages as usize * PAGE / 8;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for round in 0..self.rounds as u64 {
            // Race-free writes: each word has exactly one writer.
            let writes = mix(self.seed ^ round) % 6 + 1;
            for k in 0..writes {
                let w = mix(self.seed ^ (round << 24) ^ (me as u64 * 31) ^ k) as usize % words;
                let w = w - (w % self.nodes) + me; // my stripe
                if w < words {
                    node.write(w * 8, mix(self.seed ^ round ^ w as u64));
                }
            }
            node.barrier();
            // Everyone samples the same seed-chosen words.
            let reads = mix(self.seed ^ round ^ 0xABCD) % 8 + 1;
            for k in 0..reads {
                let w = mix(self.seed ^ (round << 16) ^ (k * 7919)) as usize % words;
                let v = node.read(w * 8);
                digest = (digest ^ v).wrapping_mul(0x0000_0100_0000_01B3);
            }
            node.barrier();
        }
        digest
    }
}

fn run_hlrc(s: Schedule) -> Vec<u64> {
    let cfg = DsmConfig::new(s.nodes, s.pages).with_page_size(PAGE);
    run_cluster(s.nodes, cfg.cost, move |ctx| {
        let mut node = HlrcNode::new(ctx, cfg, Box::new(NoLogging));
        let me = node.inner.me();
        let digest = s.run(me, &mut node);
        node.barrier();
        digest
    })
}

fn run_homeless(s: Schedule) -> Vec<u64> {
    let cfg = DsmConfig::new(s.nodes, s.pages).with_page_size(PAGE);
    run_cluster(s.nodes, cfg.cost, move |ctx| {
        let mut node = HomelessNode::new(ctx, cfg);
        let me = node.me();
        let digest = s.run(me, &mut node);
        node.barrier();
        digest
    })
}

#[test]
fn hlrc_and_homeless_agree_on_random_schedules() {
    check("protocol-equivalence", 12, |rng: &mut Rng| {
        let s = Schedule {
            seed: rng.next_u64(),
            nodes: rng.usize_in(2, 4),
            pages: rng.u32_in(2, 6),
            rounds: rng.u32_in(1, 4),
        };
        let h = run_hlrc(s);
        let l = run_homeless(s);
        assert_eq!(
            h, l,
            "digest divergence between HLRC and homeless (seed {:#x}, \
             {} nodes, {} pages, {} rounds)",
            s.seed, s.nodes, s.pages, s.rounds
        );
        // And every node agrees: the read set is identical everywhere.
        assert!(h.windows(2).all(|w| w[0] == w[1]), "nodes disagree: {h:?}");
    });
}

#[test]
fn hlrc_trace_is_nondecreasing_in_virtual_time() {
    let cfg = DsmConfig::new(3, 3).with_page_size(PAGE);
    let traces = run_cluster(3, cfg.cost, move |ctx| {
        let mut node = HlrcNode::new(ctx, cfg, Box::new(NoLogging));
        if node.inner.me() == 0 {
            node.write_u64(256 + 8, 17); // remote page: fault + fetch + diff
        }
        node.barrier();
        let _ = node.read_u64(256 + 8);
        node.barrier();
        node.ctx().take_trace()
    });
    for (node, trace) in traces.iter().enumerate() {
        assert!(!trace.is_empty(), "node {node} emitted no telemetry");
        let mut last = SimTime::ZERO;
        for ev in trace {
            assert_eq!(ev.node, node, "foreign event in node {node}'s stream");
            assert!(
                ev.at >= last,
                "node {node} trace goes backwards: {ev:?} after {last:?}"
            );
            last = ev.at;
        }
    }
}
