//! End-to-end coherence tests for the HLRC protocol on a simulated
//! cluster: these exercise the actual message exchanges (fetches, diff
//! flushes, notices) across real threads.

use hlrc::{DsmConfig, HlrcNode, NoLogging};
use simnet::{run_cluster, SimTime};

fn spawn<F, R>(cfg: DsmConfig, f: F) -> Vec<R>
where
    F: Fn(HlrcNode) -> R + Send + Sync,
    R: Send,
{
    run_cluster(cfg.n_nodes, cfg.cost, move |ctx| {
        let node = HlrcNode::new(ctx, cfg, Box::new(NoLogging));
        f(node)
    })
}

fn small_cfg(n: usize, pages: u32) -> DsmConfig {
    DsmConfig::new(n, pages).with_page_size(256)
}

#[test]
fn producer_consumer_through_barrier() {
    // Node 0 writes a value into a page homed at node 1; after a
    // barrier, node 1 (reading its home copy) and node 2 (fetching)
    // both see it.
    let cfg = small_cfg(3, 3); // page p is homed at node p
    let got = spawn(cfg, |mut node| {
        if node.inner.me() == 0 {
            node.write_u64(256 + 8, 4242); // page 1, homed at node 1
        }
        node.barrier();
        let v = node.read_u64(256 + 8);
        node.barrier();
        v
    });
    assert_eq!(got, vec![4242, 4242, 4242]);
}

#[test]
fn multiple_writers_merge_at_home() {
    // Two nodes write disjoint words of the same page (homed at a
    // third); after the barrier everyone sees both updates — the
    // multiple-writer protocol in action.
    let cfg = small_cfg(3, 3);
    let base = 2 * 256; // page 2, homed at node 2
    let got = spawn(cfg, move |mut node| {
        match node.inner.me() {
            0 => node.write_u64(base, 11),
            1 => node.write_u64(base + 64, 22),
            _ => {}
        }
        node.barrier();
        let a = node.read_u64(base);
        let b = node.read_u64(base + 64);
        node.barrier();
        (a, b)
    });
    assert!(got.iter().all(|&(a, b)| a == 11 && b == 22));
}

#[test]
fn lock_protected_counter_is_atomic() {
    // Classic mutual-exclusion increment: every node adds its id+1 to a
    // shared counter N times under a lock; total must be exact.
    const ROUNDS: u64 = 5;
    let cfg = small_cfg(4, 4);
    let got = spawn(cfg, move |mut node| {
        for _ in 0..ROUNDS {
            node.acquire(7);
            let v = node.read_u64(0);
            node.write_u64(0, v + node.inner.me() as u64 + 1);
            node.release(7);
        }
        node.barrier();
        let total = node.read_u64(0);
        node.barrier();
        total
    });
    let expect = ROUNDS * (1 + 2 + 3 + 4);
    assert!(got.iter().all(|&t| t == expect), "got {got:?}");
}

#[test]
fn invalidation_forces_refetch_of_new_data() {
    // Node 1 reads a page (cached), node 0 then modifies it across a
    // barrier; node 1's copy must be invalidated and re-fetched.
    let cfg = small_cfg(2, 2);
    let got = spawn(cfg, |mut node| {
        let addr = 0; // page 0, homed at node 0
        if node.inner.me() == 0 {
            node.write_u64(addr, 1);
        }
        node.barrier();
        let first = node.read_u64(addr);
        node.barrier();
        if node.inner.me() == 0 {
            node.write_u64(addr, 2);
        }
        node.barrier();
        let second = node.read_u64(addr);
        node.barrier();
        (first, second, node.inner.ctx.stats.page_fetches)
    });
    assert_eq!((got[0].0, got[0].1), (1, 2));
    assert_eq!((got[1].0, got[1].1), (1, 2));
    // node 1 fetched the page twice (once per read generation)
    assert_eq!(got[1].2, 2);
}

#[test]
fn home_accesses_take_no_fetches() {
    let cfg = small_cfg(2, 2);
    let got = spawn(cfg, |mut node| {
        if node.inner.me() == 0 {
            for i in 0..8 {
                node.write_u64(i * 8, i as u64);
            }
            for i in 0..8 {
                assert_eq!(node.read_u64(i * 8), i as u64);
            }
        }
        node.barrier();
        (
            node.inner.ctx.stats.page_fetches,
            node.inner.ctx.stats.twins_created,
            node.inner.ctx.stats.write_faults,
        )
    });
    let (fetches, twins, wfaults) = got[0];
    assert_eq!(fetches, 0, "home accesses never fetch");
    assert_eq!(twins, 0, "home writes make no twins");
    assert_eq!(wfaults, 1, "one write-detection trap per interval");
}

#[test]
fn diffs_flow_to_home_not_whole_pages() {
    // A remote writer modifying one word sends a diff, not the page.
    let cfg = small_cfg(2, 2);
    let got = spawn(cfg, |mut node| {
        if node.inner.me() == 1 {
            node.write_u64(8, 99); // page 0, homed at node 0
        }
        node.barrier();
        (
            node.inner.ctx.stats.diffs_created,
            node.inner.ctx.stats.diff_bytes,
        )
    });
    assert_eq!(got[1].0, 1);
    assert!(
        got[1].1 < 64,
        "single-word diff should be tiny, got {} bytes",
        got[1].1
    );
    // And the home sees the update.
    let cfg2 = small_cfg(2, 2);
    let vals = spawn(cfg2, |mut node| {
        if node.inner.me() == 1 {
            node.write_u64(8, 99);
        }
        node.barrier();
        node.read_u64(8)
    });
    assert_eq!(vals, vec![99, 99]);
}

#[test]
fn successive_intervals_accumulate_at_home() {
    // A writer updates the same remote page across several barriers;
    // each interval's diff lands at the home in order.
    let cfg = small_cfg(2, 2);
    let got = spawn(cfg, |mut node| {
        for round in 1..=4u64 {
            if node.inner.me() == 1 {
                node.write_u64(16, round * 10);
                node.write_u64(24, round);
            }
            node.barrier();
            let a = node.read_u64(16);
            let b = node.read_u64(24);
            assert_eq!((a, b), (round * 10, round));
            node.barrier();
        }
        node.inner.vc.get(1)
    });
    // Node 1 produced one interval per round.
    assert!(got.iter().all(|&c| c == 4));
}

#[test]
fn clocks_synchronize_at_barriers() {
    // After a barrier, everyone's virtual clock is at least the
    // latest arrival (no node "time travels" past the barrier).
    let cfg = small_cfg(3, 3);
    let got = spawn(cfg, |mut node| {
        if node.inner.me() == 2 {
            // Straggler: burn compute before arriving.
            node.inner.ctx.charge_flops(1_000_000);
        }
        let before = node.inner.ctx.now();
        node.barrier();
        let after = node.inner.ctx.now();
        (before, after)
    });
    let slowest_before: SimTime = got.iter().map(|&(b, _)| b).max().unwrap();
    assert!(
        got.iter().all(|&(_, a)| a >= slowest_before),
        "barrier must not release before the last arrival: {got:?}"
    );
}

#[test]
fn lock_chain_transfers_notices_without_barrier() {
    // P0 writes under the lock, P1 acquires the same lock next and must
    // see the write (notice chain through the lock manager).
    let cfg = small_cfg(2, 2);
    let got = spawn(cfg, |mut node| {
        let addr = 256; // page 1, homed at node 1
        let v = if node.inner.me() == 0 {
            node.acquire(0);
            node.write_u64(addr, 7);
            node.release(0);
            node.barrier();
            0
        } else {
            // The barrier orders the second acquire after P0's release
            // (keeps the test deterministic without relying on timing).
            node.barrier();
            node.acquire(0);
            let v = node.read_u64(addr);
            node.release(0);
            v
        };
        // Final barrier keeps every node alive until all lock traffic
        // (including requests to managers) has been served.
        node.barrier();
        v
    });
    assert_eq!(got[1], 7);
}

#[test]
fn eight_node_stress_mixed_traffic() {
    // All 8 nodes write their own stripe of a shared array (pages homed
    // block-wise), then read a neighbour's stripe each round.
    let cfg = small_cfg(8, 16);
    let got = spawn(cfg, |mut node| {
        let me = node.inner.me();
        let stripe = 2 * 256; // two pages per node
        for round in 0..3u64 {
            for w in 0..(stripe / 8) {
                node.write_u64(me * stripe + w * 8, round * 1000 + me as u64);
            }
            node.barrier();
            let neigh = (me + 1) % 8;
            let v = node.read_u64(neigh * stripe);
            assert_eq!(v, round * 1000 + neigh as u64);
            node.barrier();
        }
        node.inner.ctx.stats.barriers
    });
    assert!(got.iter().all(|&b| b == 6));
}

#[test]
fn contended_lock_queues_grant_in_order() {
    // All nodes pile onto one lock at once; the manager queues and
    // grants one at a time, and every critical section is atomic.
    let cfg = small_cfg(4, 4);
    let got = spawn(cfg, |mut node| {
        node.barrier(); // align the contention burst
        node.acquire(3);
        let v = node.read_u64(0);
        // A tiny compute gap inside the critical section.
        node.inner.ctx.charge_flops(10_000);
        node.write_u64(0, v + 1);
        node.release(3);
        node.barrier();
        let v = node.read_u64(0);
        node.barrier(); // keep the home reachable until everyone has read
        v
    });
    assert!(got.iter().all(|&v| v == 4), "{got:?}");
}

#[test]
fn two_locks_do_not_interfere() {
    let cfg = small_cfg(4, 4);
    let got = spawn(cfg, |mut node| {
        let (lock, addr) = if node.inner.me() % 2 == 0 {
            (10, 0)
        } else {
            (11, 256)
        };
        for _ in 0..4 {
            node.acquire(lock);
            let v = node.read_u64(addr);
            node.write_u64(addr, v + 1);
            node.release(lock);
        }
        node.barrier();
        let a = node.read_u64(0);
        let b = node.read_u64(256);
        node.barrier();
        (a, b)
    });
    assert!(got.iter().all(|&(a, b)| a == 8 && b == 8), "{got:?}");
}

#[test]
fn write_faults_on_read_only_copy_upgrade_in_place() {
    // Read a remote page (ReadOnly copy), then write it: the upgrade
    // must twin the existing copy without a second fetch.
    let cfg = small_cfg(2, 2);
    let got = spawn(cfg, |mut node| {
        if node.inner.me() == 0 {
            node.write_u64(256, 5); // page 1, homed at node 1
        }
        node.barrier();
        if node.inner.me() == 0 {
            let before_fetches = node.inner.ctx.stats.page_fetches;
            let v = node.read_u64(256); // may refetch after invalidation
            let fetches_after_read = node.inner.ctx.stats.page_fetches;
            node.write_u64(256, v + 1); // upgrade: no new fetch
            assert_eq!(node.inner.ctx.stats.page_fetches, fetches_after_read);
            let _ = before_fetches;
        }
        node.barrier();
        let v = node.read_u64(256);
        node.barrier();
        v
    });
    assert!(got.iter().all(|&v| v == 6));
}

#[test]
fn empty_intervals_produce_no_notices() {
    // Barriers without writes must not generate diffs, notices, or
    // invalidations.
    let cfg = small_cfg(3, 3);
    let got = spawn(cfg, |mut node| {
        if node.inner.me() == 0 {
            node.write_u64(0, 1);
        }
        node.barrier();
        let _ = node.read_u64(0); // everyone caches page 0
        node.barrier();
        for _ in 0..5 {
            node.barrier(); // idle barriers
        }
        let fetches_before = node.inner.ctx.stats.page_fetches;
        let v = node.read_u64(0); // still cached: no refetch
        let fetches_after = node.inner.ctx.stats.page_fetches;
        node.barrier();
        (v, fetches_after - fetches_before)
    });
    for (i, &(v, extra_fetches)) in got.iter().enumerate() {
        assert_eq!(v, 1);
        if i != 0 {
            assert_eq!(extra_fetches, 0, "node {i} refetched despite no writes");
        }
    }
}
