//! Property tests for the protocol message codec: any message the
//! protocol can construct must survive the wire bit-for-bit, and its
//! reported wire size must be exact (the traffic/log statistics depend
//! on it).

use std::sync::Arc;

use hlrc::{Msg, WriteNotice, HEADER_BYTES};
use minicheck::{check, Rng};
use pagemem::{Decode, DiffRun, Encode, IntervalId, PageDiff, VClock};
use simnet::WireSized;

const CASES: u64 = 192;

fn arb_interval(rng: &mut Rng) -> IntervalId {
    IntervalId {
        node: rng.u32_in(0, 8),
        seq: rng.u32_in(0, 10_000),
    }
}

fn arb_vclock(rng: &mut Rng) -> VClock {
    let n = rng.usize_in(1, 9);
    let mut c = VClock::new(n);
    for i in 0..n {
        c.set(i as u32, rng.u32_in(0, 10_000));
    }
    c
}

fn arb_notices(rng: &mut Rng) -> Vec<WriteNotice> {
    (0..rng.usize_in(0, 20))
        .map(|_| WriteNotice {
            page: rng.u32_in(0, 1024),
            interval: arb_interval(rng),
        })
        .collect()
}

fn arb_diff(rng: &mut Rng) -> PageDiff {
    let page = rng.u32_in(0, 1024);
    // The decoder enforces the structure `PageDiff::create` guarantees
    // (word-aligned, non-empty word-multiple lengths, in order, no
    // overlap; adjacency allowed), so generate runs by walking forward.
    let mut runs = Vec::new();
    let mut word = 0u32; // next free word index
    for _ in 0..rng.usize_in(0, 8) {
        word += rng.u32_in(0, 16); // gap before the run (0 = adjacent)
        let words = rng.u32_in(1, 5);
        runs.push(DiffRun {
            offset: word * 4,
            data: rng.bytes(words as usize * 4),
        });
        word += words;
    }
    PageDiff { page, runs }
}

fn arb_migrations(rng: &mut Rng) -> Vec<(u32, u32)> {
    (0..rng.usize_in(0, 5))
        .map(|_| (rng.u32_in(0, 1024), rng.u32_in(0, 8)))
        .collect()
}

fn arb_page_copies(rng: &mut Rng) -> Vec<hlrc::PageCopy> {
    (0..rng.usize_in(0, 8))
        .map(|_| {
            let len = rng.usize_in(0, 256);
            (rng.u32_in(0, 1024), rng.bytes(len).into(), arb_vclock(rng))
        })
        .collect()
}

fn arb_msg(rng: &mut Rng) -> Msg {
    match rng.u32_in(0, 17) {
        0 => Msg::PageRequest {
            page: rng.u32_in(0, 1024),
        },
        1 => {
            let len = rng.usize_in(0, 256);
            Msg::PageReply {
                page: rng.u32_in(0, 1024),
                data: rng.bytes(len).into(),
                version: arb_vclock(rng),
            }
        }
        2 => Msg::DiffFlush {
            writer: arb_interval(rng),
            diffs: (0..rng.usize_in(0, 5)).map(|_| arb_diff(rng)).collect(),
        },
        3 => Msg::DiffAck {
            writer: arb_interval(rng),
        },
        4 => Msg::LockRequest {
            lock: rng.u32_in(0, 64),
            vc: arb_vclock(rng),
        },
        5 => Msg::LockGrant {
            lock: rng.u32_in(0, 64),
            vc: Arc::new(arb_vclock(rng)),
            notices: arb_notices(rng),
        },
        6 => Msg::LockRelease {
            lock: rng.u32_in(0, 64),
            vc: arb_vclock(rng),
            notices: arb_notices(rng),
        },
        7 => Msg::BarrierArrive {
            epoch: rng.u32_in(0, 1000),
            vc: arb_vclock(rng),
            notices: arb_notices(rng),
            proposals: arb_migrations(rng),
        },
        8 => Msg::BarrierRelease {
            epoch: rng.u32_in(0, 1000),
            vc: Arc::new(arb_vclock(rng)),
            notices: arb_notices(rng).into(),
            migrations: arb_migrations(rng).into(),
        },
        9 => Msg::RecoveryPageRequest {
            page: rng.u32_in(0, 1024),
            required: arb_vclock(rng),
        },
        10 => {
            let len = rng.usize_in(0, 256);
            Msg::RecoveryPageReply {
                page: rng.u32_in(0, 1024),
                advanced: rng.bool(),
                data: rng.bytes(len).into(),
                version: arb_vclock(rng),
            }
        }
        11 => Msg::LoggedDiffRequest {
            page: rng.u32_in(0, 1024),
            seqs: (0..rng.usize_in(0, 10))
                .map(|_| rng.u32_in(0, 10_000))
                .collect(),
        },
        12 => Msg::LoggedDiffReply {
            page: rng.u32_in(0, 1024),
            diffs: (0..rng.usize_in(0, 5))
                .map(|_| (arb_interval(rng), arb_diff(rng)))
                .collect(),
        },
        13 => Msg::ReleaseHistoryRequest,
        14 => Msg::ReleaseHistoryReply {
            releases: (0..rng.usize_in(0, 4))
                .map(|e| {
                    (
                        e as u32,
                        arb_vclock(rng),
                        arb_notices(rng),
                        arb_migrations(rng),
                    )
                })
                .collect(),
        },
        15 => Msg::PageRequestBatch {
            page: rng.u32_in(0, 1024),
            extras: (0..rng.usize_in(0, 8))
                .map(|_| rng.u32_in(0, 1024))
                .collect(),
        },
        16 => Msg::PageReplyBatch {
            after: rng.u32_in(0, 1024),
            pages: arb_page_copies(rng),
        },
        _ => {
            let len = rng.usize_in(0, 256);
            Msg::HomeMigrate {
                page: rng.u32_in(0, 1024),
                data: rng.bytes(len).into(),
                version: arb_vclock(rng),
            }
        }
    }
}

#[test]
fn every_message_roundtrips() {
    check("every_message_roundtrips", CASES, |rng| {
        let msg = arb_msg(rng);
        let bytes = msg.encode_to_vec();
        let back = Msg::decode_from_slice(&bytes).unwrap();
        assert_eq!(&back, &msg);
        assert_eq!(msg.wire_size(), HEADER_BYTES + bytes.len());
    });
}

#[test]
fn truncated_messages_never_panic() {
    check("truncated_messages_never_panic", CASES, |rng| {
        let msg = arb_msg(rng);
        let cut = rng.usize_in(0, 64);
        let bytes = msg.encode_to_vec();
        let end = bytes.len().saturating_sub(cut).max(1).min(bytes.len());
        // Decoding any prefix must return an error or a value, never panic.
        let _ = Msg::decode_from_slice(&bytes[..end]);
    });
}

#[test]
fn corrupted_tag_is_rejected() {
    check("corrupted_tag_is_rejected", CASES, |rng| {
        let msg = arb_msg(rng);
        let tag = rng.u32_in(18, 256) as u8;
        let mut bytes = msg.encode_to_vec();
        bytes[0] = tag;
        assert!(Msg::decode_from_slice(&bytes).is_err());
    });
}
