//! Property tests for the protocol message codec: any message the
//! protocol can construct must survive the wire bit-for-bit, and its
//! reported wire size must be exact (the traffic/log statistics depend
//! on it).

use hlrc::{Msg, WriteNotice, HEADER_BYTES};
use pagemem::{Decode, DiffRun, Encode, IntervalId, PageDiff, VClock};
use proptest::prelude::*;
use simnet::WireSized;

fn arb_interval() -> impl Strategy<Value = IntervalId> {
    (0u32..8, 0u32..10_000).prop_map(|(node, seq)| IntervalId { node, seq })
}

fn arb_vclock() -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0u32..10_000, 1..9).prop_map(|v| {
        let mut c = VClock::new(v.len());
        for (i, x) in v.into_iter().enumerate() {
            c.set(i as u32, x);
        }
        c
    })
}

fn arb_notices() -> impl Strategy<Value = Vec<WriteNotice>> {
    proptest::collection::vec(
        (0u32..1024, arb_interval()).prop_map(|(page, interval)| WriteNotice { page, interval }),
        0..20,
    )
}

fn arb_diff() -> impl Strategy<Value = PageDiff> {
    (
        0u32..1024,
        proptest::collection::vec(
            ((0u32..64), proptest::collection::vec(any::<u8>(), 4..17)),
            0..8,
        ),
    )
        .prop_map(|(page, raw)| PageDiff {
            page,
            runs: raw
                .into_iter()
                .map(|(w, mut data)| {
                    data.truncate(data.len() & !3); // word multiple
                    DiffRun {
                        offset: w * 4,
                        data,
                    }
                })
                .filter(|r| !r.data.is_empty())
                .collect(),
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (0u32..1024).prop_map(|page| Msg::PageRequest { page }),
        (0u32..1024, proptest::collection::vec(any::<u8>(), 0..256), arb_vclock()).prop_map(
            |(page, data, version)| Msg::PageReply {
                page,
                data,
                version
            }
        ),
        (arb_interval(), proptest::collection::vec(arb_diff(), 0..5))
            .prop_map(|(writer, diffs)| Msg::DiffFlush { writer, diffs }),
        arb_interval().prop_map(|writer| Msg::DiffAck { writer }),
        (0u32..64, arb_vclock()).prop_map(|(lock, vc)| Msg::LockRequest { lock, vc }),
        (0u32..64, arb_vclock(), arb_notices())
            .prop_map(|(lock, vc, notices)| Msg::LockGrant { lock, vc, notices }),
        (0u32..64, arb_vclock(), arb_notices())
            .prop_map(|(lock, vc, notices)| Msg::LockRelease { lock, vc, notices }),
        (0u32..1000, arb_vclock(), arb_notices())
            .prop_map(|(epoch, vc, notices)| Msg::BarrierArrive { epoch, vc, notices }),
        (0u32..1000, arb_vclock(), arb_notices())
            .prop_map(|(epoch, vc, notices)| Msg::BarrierRelease { epoch, vc, notices }),
        (0u32..1024, arb_vclock())
            .prop_map(|(page, required)| Msg::RecoveryPageRequest { page, required }),
        (
            0u32..1024,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..256),
            arb_vclock()
        )
            .prop_map(|(page, advanced, data, version)| Msg::RecoveryPageReply {
                page,
                advanced,
                data,
                version
            }),
        (0u32..1024, proptest::collection::vec(0u32..10_000, 0..10))
            .prop_map(|(page, seqs)| Msg::LoggedDiffRequest { page, seqs }),
        (
            0u32..1024,
            proptest::collection::vec((arb_interval(), arb_diff()), 0..5)
        )
            .prop_map(|(page, diffs)| Msg::LoggedDiffReply { page, diffs }),
    ]
}

proptest! {
    #[test]
    fn every_message_roundtrips(msg in arb_msg()) {
        let bytes = msg.encode_to_vec();
        let back = Msg::decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(msg.wire_size(), HEADER_BYTES + bytes.len());
    }

    #[test]
    fn truncated_messages_never_panic(msg in arb_msg(), cut in 0usize..64) {
        let bytes = msg.encode_to_vec();
        let end = bytes.len().saturating_sub(cut).max(1).min(bytes.len());
        // Decoding any prefix must return an error or a value, never panic.
        let _ = Msg::decode_from_slice(&bytes[..end]);
    }

    #[test]
    fn corrupted_tag_is_rejected(msg in arb_msg(), tag in 13u8..255) {
        let mut bytes = msg.encode_to_vec();
        bytes[0] = tag;
        prop_assert!(Msg::decode_from_slice(&bytes).is_err());
    }
}
