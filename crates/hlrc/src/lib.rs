//! # hlrc — home-based lazy release consistency
//!
//! The coherence protocol of home-based software DSM (Zhou et al.,
//! OSDI'96), as used by the paper's modified TreadMarks:
//!
//! * every shared page has a fixed **home node** collecting updates
//!   from all writers;
//! * writers make **twins** on the first write of an interval and flush
//!   word-granular **diffs** to the home at each release/barrier;
//! * **write-invalidation notices** piggyback on lock grants and
//!   barrier releases; a miss costs one round trip to the home;
//! * locks have static managers; node 0 manages the barrier.
//!
//! The driver is parameterized by a [`FaultTolerance`] implementation —
//! the hook interface through which the `ftlog` crate plugs in the
//! paper's ML and CCL logging/recovery protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fault_tolerance;
pub mod homeless;
mod msg;
mod node;
mod page_table;
mod sync;

pub use config::{DsmConfig, HomePolicy};
pub use fault_tolerance::{FaultTolerance, NoLogging, RecoveryStep, SyncKind};
pub use homeless::{HMsg, HomelessNode};
pub use msg::{
    kind_label, EpochRelease, HomeMigration, Msg, PageCopy, WriteNotice, HEADER_BYTES, MSG_KINDS,
};
pub use node::{HlrcNode, NodeInner, PrefetchState};
pub use page_table::{PageEntry, PageTable};
pub use simnet::CoherenceProtocol;
pub use sync::{BarrierMgr, LockState, LockTable, PendingAcquire};
