//! The fault-tolerance hook interface.
//!
//! The HLRC protocol driver is written against this trait so that the
//! three protocols the paper compares — no logging, traditional message
//! logging (ML), and coherence-centric logging (CCL) — plug into the
//! *same* coherence code, differing only in what they record, when they
//! flush, and how they drive recovery. Implementations live in the
//! `ftlog` crate; [`NoLogging`] (the paper's "None" baseline) lives here.

use pagemem::{IntervalId, PageDiff, PageId, VClock};
use simnet::{Envelope, SimDuration};

use crate::msg::{Msg, WriteNotice};
use crate::node::NodeInner;

/// Which synchronization operation produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// A lock acquire (carrying the lock id).
    Acquire(u32),
    /// A lock release (carrying the lock id).
    Release(u32),
    /// A barrier episode (carrying the epoch).
    Barrier(u32),
}

/// Outcome of a replayed synchronization step during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStep {
    /// The step was reconstructed from the log; execution may proceed.
    Replayed,
    /// The log is exhausted: the pre-crash state has been reached and
    /// the node must resume live protocol operation.
    LogExhausted,
}

/// Hooks the coherence protocol invokes on its fault-tolerance layer.
///
/// Failure-free hooks default to no-ops; recovery hooks default to
/// "not recovering". All byte accounting uses the real encoded sizes of
/// the objects involved, so log-size results are measurements, not
/// estimates.
#[allow(unused_variables)]
pub trait FaultTolerance: Send {
    /// Protocol name for reports ("none", "ml", "ccl", ...).
    fn name(&self) -> &'static str;

    /// Whether the home node must twin (and later diff) its *own* writes
    /// to home pages. CCL needs this: a peer reconstructing a remote
    /// copy from the home's checkpoint base patches it with logged
    /// diffs, and the home's in-place writes would otherwise be
    /// unreconstructible. ML replays fetched page contents verbatim and
    /// does not need it.
    fn needs_home_write_twins(&self) -> bool {
        false
    }

    /// Whether home-write diffs reach stable storage from the very
    /// first interval (multi-failure mode). The reconstruction base of
    /// a home page then stays pinned at the checkpoint image — it is
    /// never promoted at a remote fetch — so "base + logged diffs" can
    /// rebuild *any* state a recovering peer may request, even after
    /// the home itself crashed, replayed, and lost its volatile diff
    /// cache. Under the single-failure model the cheaper volatile
    /// scheme (promote the base at first fetch, keep later diffs in
    /// memory) is safe, so this defaults to off.
    fn logs_home_diffs_durably(&self) -> bool {
        false
    }

    // ---- failure-free logging ----

    /// An incoming coherence message relevant to replay was received:
    /// page replies, diff flushes, lock grants, barrier releases.
    fn on_incoming(&mut self, inner: &mut NodeInner, msg: &Msg) {}

    /// Write-invalidation notices were accepted at an acquire or barrier
    /// together with the piggybacked timestamp.
    fn on_notices(
        &mut self,
        inner: &mut NodeInner,
        kind: SyncKind,
        notices: &[WriteNotice],
        vc: &VClock,
    ) {
    }

    /// This (home) node applied a writer's flushed diffs to its home
    /// copies — the "record of incoming updates" event of the paper.
    fn on_updates_applied(&mut self, inner: &mut NodeInner, writer: IntervalId, pages: &[PageId]) {}

    /// This node created `diffs` at the end of interval `interval`.
    fn on_diffs_created(
        &mut self,
        inner: &mut NodeInner,
        interval: IntervalId,
        diffs: &[PageDiff],
    ) {
    }

    /// Diffs of this node's *own writes to its own home pages* (only
    /// produced when [`FaultTolerance::needs_home_write_twins`] is
    /// true). Under the single-failure model these are needed only by a
    /// *peer's* recovery — and then this node is alive — so they are
    /// retained in volatile memory, never flushed: CCL's log keeps its
    /// coherence-centric economy.
    fn on_home_diffs(&mut self, inner: &mut NodeInner, interval: IntervalId, diffs: &[PageDiff]) {}

    /// Stable-storage flush charged *before* the node sends its
    /// end-of-interval messages (ML flushes its volatile log here, fully
    /// on the critical path).
    fn flush_before_send(&mut self, inner: &mut NodeInner) -> SimDuration {
        SimDuration::ZERO
    }

    /// Stable-storage flush issued *right after* the diffs are sent
    /// (CCL flushes here). Returns the disk time and whether it may be
    /// overlapped with the diff-ack round trip.
    fn flush_after_send(&mut self, inner: &mut NodeInner) -> (SimDuration, bool) {
        (SimDuration::ZERO, true)
    }

    /// Write-ahead gate before the home acknowledges an applied diff
    /// flush. The ack releases the writer's only other copy of the
    /// diff, so a protocol whose log is the *sole* recovery source for
    /// the update (ML) must make the staged record durable first — a
    /// crash tearing the final flush then only ever loses records no
    /// peer acted on. CCL skips this: the writer's own stable log
    /// keeps the diff, and recovery refetches it from there.
    fn flush_before_ack(&mut self, inner: &mut NodeInner) -> SimDuration {
        SimDuration::ZERO
    }

    /// A checkpoint is being taken: persist whatever the protocol needs
    /// and truncate obsolete logs.
    fn on_checkpoint(&mut self, inner: &mut NodeInner) {}

    // ---- crash recovery ----

    /// Transition into recovery after a crash: rebuild replay state from
    /// stable storage. Called once, right after the volatile state was
    /// reset to the last checkpoint image.
    fn begin_recovery(&mut self, inner: &mut NodeInner) {}

    /// Application state restored from the last checkpoint, if any
    /// (consumed once by the program runner after a crash).
    fn restored_app_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Currently replaying from the log?
    fn in_recovery(&self) -> bool {
        false
    }

    /// Replay one lock acquire from the log.
    fn recovery_acquire(&mut self, inner: &mut NodeInner, lock: u32) -> RecoveryStep {
        RecoveryStep::LogExhausted
    }

    /// Replay one barrier episode from the log.
    fn recovery_barrier(&mut self, inner: &mut NodeInner, epoch: u32) -> RecoveryStep {
        RecoveryStep::LogExhausted
    }

    /// Service a page fault taken while replaying. Returns
    /// [`RecoveryStep::LogExhausted`] if the log ran out, in which case
    /// the driver leaves recovery and fetches live.
    fn recovery_fault(&mut self, inner: &mut NodeInner, page: PageId, write: bool) -> RecoveryStep {
        unreachable!("page fault in recovery without a recovery protocol")
    }

    /// Last step of recovery, run right before the node goes live and
    /// the traffic deferred during replay is serviced. A protocol whose
    /// salvage scan found the log damaged repairs its home copies here
    /// (CCL reconciles the barrier manager's release history against
    /// its home versions and refetches the lost updates from the
    /// writers' stable logs) — after this returns, served pages must be
    /// current.
    fn finish_recovery(&mut self, inner: &mut NodeInner) {}

    /// Serve a surviving peer's request for logged diffs (the recovering
    /// node reconstructs remote copies from writers' stable logs).
    fn serve_logged_diffs(&mut self, inner: &mut NodeInner, env: &Envelope<Msg>) {
        // Without logs there is nothing to serve; reply empty so the
        // requester can fail loudly.
        if let Msg::LoggedDiffRequest { page, .. } = &env.payload {
            let done = inner.ctx.service_time(env);
            let _ = inner.ctx.send_from(
                done,
                env.src,
                Msg::LoggedDiffReply {
                    page: *page,
                    diffs: Vec::new(),
                },
            );
        }
    }
}

/// The paper's "None" baseline: no logging, no recovery support —
/// a failure means re-execution from the initial state.
#[derive(Debug, Default)]
pub struct NoLogging;

impl FaultTolerance for NoLogging {
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_logging_defaults() {
        let ft = NoLogging;
        assert_eq!(ft.name(), "none");
        assert!(!ft.in_recovery());
    }
}
