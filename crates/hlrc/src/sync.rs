//! Synchronization-manager state: locks and the global barrier.
//!
//! Each lock has a statically assigned manager node (TreadMarks style);
//! the barrier manager is node 0. Managers service requests inside
//! their asynchronous message handler.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use pagemem::VClock;
use simnet::{NodeId, SimTime};

use crate::msg::{EpochRelease, HomeMigration, WriteNotice};

/// A queued lock request.
#[derive(Debug, Clone)]
pub struct PendingAcquire {
    /// Requesting node.
    pub node: NodeId,
    /// Requester's vector clock (for notice filtering at grant time).
    pub vc: VClock,
    /// Virtual arrival time of the request at the manager.
    pub arrive: SimTime,
}

/// Manager-side state of one lock.
#[derive(Debug)]
pub struct LockState {
    /// Currently granted to someone?
    pub held: bool,
    /// Virtual time at which the last release was processed.
    pub last_release: SimTime,
    /// The lock's timestamp: joined clocks of every releaser so far.
    pub vc: VClock,
    /// Notices carried along the lock's release chain.
    pub notices: Vec<WriteNotice>,
    /// FIFO of waiting acquirers.
    pub queue: VecDeque<PendingAcquire>,
    /// The most recent grantee, if any grant has happened — the node a
    /// later acquirer's wait is blamed on (`TraceKind::LockGranted`'s
    /// `holder`).
    pub last_granted: Option<NodeId>,
}

impl LockState {
    fn new(n_nodes: usize) -> LockState {
        LockState {
            held: false,
            last_release: SimTime::ZERO,
            vc: VClock::new(n_nodes),
            notices: Vec::new(),
            queue: VecDeque::new(),
            last_granted: None,
        }
    }

    /// Record that the manager granted this lock to `to`, returning the
    /// previous grantee for blame (`to` itself on a fresh, uncontended
    /// lock: self-blame encodes "nobody made you wait").
    pub fn record_grant(&mut self, to: NodeId) -> NodeId {
        let holder = self.last_granted.unwrap_or(to);
        self.last_granted = Some(to);
        holder
    }

    /// Notices the acquirer (with clock `vc`) has not yet seen.
    pub fn notices_for(&self, vc: &VClock) -> Vec<WriteNotice> {
        self.notices
            .iter()
            .filter(|n| !vc.covers(n.interval))
            .copied()
            .collect()
    }

    /// Record a release: merge the releaser's clock and fresh notices.
    pub fn record_release(&mut self, vc: &VClock, notices: &[WriteNotice], at: SimTime) {
        self.vc.join(vc);
        for n in notices {
            if !self.notices.contains(n) {
                self.notices.push(*n);
            }
        }
        self.held = false;
        self.last_release = self.last_release.max(at);
    }
}

/// The set of locks this node manages (created lazily).
#[derive(Debug)]
pub struct LockTable {
    locks: HashMap<u32, LockState>,
    n_nodes: usize,
}

impl LockTable {
    /// Empty table for an `n_nodes` cluster.
    pub fn new(n_nodes: usize) -> LockTable {
        LockTable {
            locks: HashMap::new(),
            n_nodes,
        }
    }

    /// State of `lock`, created free on first touch.
    pub fn state_mut(&mut self, lock: u32) -> &mut LockState {
        let n = self.n_nodes;
        self.locks.entry(lock).or_insert_with(|| LockState::new(n))
    }

    /// Drop all state (crash of the manager wipes volatile memory).
    pub fn clear(&mut self) {
        self.locks.clear();
    }
}

/// Barrier-manager state for the current episode.
#[derive(Debug)]
pub struct BarrierMgr {
    n_nodes: usize,
    /// Which nodes have arrived this episode.
    arrived: Vec<bool>,
    arrived_count: usize,
    /// Latest virtual arrival time across all arrivals.
    pub latest_arrival: SimTime,
    /// Earliest virtual arrival time this episode (for the
    /// first-to-last arrival spread in `TraceKind::BarrierReleased`).
    pub earliest_arrival: SimTime,
    /// The node whose arrival set `latest_arrival` — the straggler the
    /// other nodes' barrier wait is blamed on. Ties go to the later
    /// arrival call; arrivals are consumed in deterministic virtual-time
    /// order, so the choice is reproducible.
    pub straggler: NodeId,
    /// Join of all arrivals' clocks.
    pub merged_vc: VClock,
    /// Union of all arrivals' notices.
    pub merged_notices: Vec<WriteNotice>,
    /// Union of all arrivals' home-migration proposals. Conflicting
    /// proposals for one page resolve to the lowest proposed home, so
    /// the decided set is independent of arrival order.
    pub merged_proposals: Vec<HomeMigration>,
    /// Snapshot of every completed episode's release, by epoch. A node
    /// re-executing after a degraded recovery (no usable log)
    /// re-arrives at epochs the cluster already finished; the manager
    /// answers those from this history instead of gathering. (A map,
    /// not a dense vector: a recovering manager replays barriers
    /// without re-recording them, leaving gaps.) `Arc`-shared so the
    /// history and every broadcast release alias one snapshot.
    released: HashMap<u32, SharedRelease>,
}

/// One completed episode's release, `Arc`-shared between the manager's
/// history and every broadcast envelope: merged clock, merged notices,
/// committed home migrations.
type SharedRelease = (Arc<VClock>, Arc<[WriteNotice]>, Arc<[HomeMigration]>);

impl BarrierMgr {
    /// Fresh manager state for an `n`-node cluster.
    pub fn new(n_nodes: usize) -> BarrierMgr {
        BarrierMgr {
            n_nodes,
            arrived: vec![false; n_nodes],
            arrived_count: 0,
            latest_arrival: SimTime::ZERO,
            earliest_arrival: SimTime::ZERO,
            straggler: 0,
            merged_vc: VClock::new(n_nodes),
            merged_notices: Vec::new(),
            merged_proposals: Vec::new(),
            released: HashMap::new(),
        }
    }

    /// Record a completed episode's release so stale re-arrivals can be
    /// answered later. Called by the manager right before `reset`.
    pub fn record_released(
        &mut self,
        epoch: u32,
        vc: Arc<VClock>,
        notices: Arc<[WriteNotice]>,
        migrations: Arc<[HomeMigration]>,
    ) {
        self.released.insert(epoch, (vc, notices, migrations));
    }

    /// The stored release for `epoch`, if that episode already
    /// completed (a stale re-arrival must be re-released, not
    /// gathered). Cloning the returned `Arc`s into a re-sent
    /// [`crate::Msg::BarrierRelease`] is free.
    #[allow(clippy::type_complexity)]
    pub fn past_release(
        &self,
        epoch: u32,
    ) -> Option<(&Arc<VClock>, &Arc<[WriteNotice]>, &Arc<[HomeMigration]>)> {
        self.released.get(&epoch).map(|(vc, n, m)| (vc, n, m))
    }

    /// Every retained release in ascending epoch order, for a
    /// [`crate::Msg::ReleaseHistoryReply`]. A recovering home replays
    /// this history to find updates its damaged log lost.
    pub fn release_history(&self) -> Vec<EpochRelease> {
        let mut v: Vec<_> = self
            .released
            .iter()
            .map(|(e, (vc, n, m))| (*e, (**vc).clone(), n.to_vec(), m.to_vec()))
            .collect();
        v.sort_unstable_by_key(|(e, ..)| *e);
        v
    }

    /// Record one node's arrival. Returns true when everyone is in.
    pub fn arrive(
        &mut self,
        node: NodeId,
        vc: &VClock,
        notices: &[WriteNotice],
        proposals: &[HomeMigration],
        at: SimTime,
    ) -> bool {
        assert!(!self.arrived[node], "node {node} arrived twice at barrier");
        self.arrived[node] = true;
        self.arrived_count += 1;
        if self.arrived_count == 1 {
            self.earliest_arrival = at;
        } else {
            self.earliest_arrival = self.earliest_arrival.min(at);
        }
        if at >= self.latest_arrival {
            self.straggler = node;
        }
        self.latest_arrival = self.latest_arrival.max(at);
        self.merged_vc.join(vc);
        for n in notices {
            if !self.merged_notices.contains(n) {
                self.merged_notices.push(*n);
            }
        }
        for &(page, to) in proposals {
            match self.merged_proposals.iter_mut().find(|(p, _)| *p == page) {
                // Arrival-order independence: ties resolve to the
                // lowest proposed home.
                Some(entry) => entry.1 = entry.1.min(to),
                None => self.merged_proposals.push((page, to)),
            }
        }
        self.arrived_count == self.n_nodes
    }

    /// The decided migration set for this episode: merged proposals,
    /// sorted by page. Every node applies this same list in this same
    /// order, so the cluster-wide mapping stays consistent.
    pub fn decided_migrations(&self) -> Vec<HomeMigration> {
        let mut v = self.merged_proposals.clone();
        v.sort_unstable();
        v
    }

    /// Reset for the next episode.
    pub fn reset(&mut self) {
        self.arrived.iter_mut().for_each(|a| *a = false);
        self.arrived_count = 0;
        self.latest_arrival = SimTime::ZERO;
        self.earliest_arrival = SimTime::ZERO;
        self.straggler = 0;
        self.merged_notices.clear();
        self.merged_proposals.clear();
        // merged_vc persists monotonically across episodes.
    }

    /// How many have arrived so far.
    pub fn arrived_count(&self) -> usize {
        self.arrived_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagemem::IntervalId;

    fn notice(page: u32, node: u32, seq: u32) -> WriteNotice {
        WriteNotice {
            page,
            interval: IntervalId { node, seq },
        }
    }

    #[test]
    fn lock_release_chain_accumulates_notices() {
        let mut t = LockTable::new(4);
        let st = t.state_mut(3);
        let mut vc1 = VClock::new(4);
        vc1.observe(IntervalId { node: 1, seq: 0 });
        st.record_release(&vc1, &[notice(9, 1, 0)], SimTime(100));
        assert!(!st.held);
        assert_eq!(st.last_release, SimTime(100));

        // An acquirer that saw nothing gets the notice.
        let fresh = VClock::new(4);
        assert_eq!(st.notices_for(&fresh), vec![notice(9, 1, 0)]);
        // One that already covers it does not.
        assert!(st.notices_for(&vc1).is_empty());
    }

    #[test]
    fn duplicate_notices_not_stored_twice() {
        let mut t = LockTable::new(2);
        let st = t.state_mut(0);
        let vc = VClock::new(2);
        st.record_release(&vc, &[notice(1, 0, 0), notice(1, 0, 0)], SimTime(1));
        st.record_release(&vc, &[notice(1, 0, 0)], SimTime(2));
        assert_eq!(st.notices.len(), 1);
    }

    #[test]
    fn lock_clear_wipes_state() {
        let mut t = LockTable::new(2);
        t.state_mut(0).held = true;
        t.clear();
        assert!(!t.state_mut(0).held);
    }

    #[test]
    fn barrier_completes_when_all_arrive() {
        let mut b = BarrierMgr::new(3);
        let vc = VClock::new(3);
        assert!(!b.arrive(0, &vc, &[notice(4, 0, 0)], &[], SimTime(10)));
        assert!(!b.arrive(2, &vc, &[], &[], SimTime(30)));
        assert!(b.arrive(
            1,
            &vc,
            &[notice(4, 0, 0), notice(5, 1, 0)],
            &[],
            SimTime(20)
        ));
        assert_eq!(b.latest_arrival, SimTime(30));
        assert_eq!(b.merged_notices.len(), 2);
        assert_eq!(b.arrived_count(), 3);
    }

    #[test]
    fn barrier_reset_clears_arrivals_keeps_vc() {
        let mut b = BarrierMgr::new(2);
        let mut vc = VClock::new(2);
        vc.observe(IntervalId { node: 0, seq: 4 });
        b.arrive(0, &vc, &[], &[], SimTime(5));
        b.arrive(1, &vc, &[notice(0, 0, 4)], &[], SimTime(6));
        b.reset();
        assert_eq!(b.arrived_count(), 0);
        assert!(b.merged_notices.is_empty());
        assert_eq!(b.merged_vc.get(0), 5, "vc is monotone across episodes");
    }

    #[test]
    fn past_releases_are_replayable() {
        let mut b = BarrierMgr::new(2);
        let mut vc = VClock::new(2);
        vc.observe(IntervalId { node: 1, seq: 0 });
        assert!(b.past_release(0).is_none());
        b.record_released(
            0,
            Arc::new(vc.clone()),
            vec![notice(3, 1, 0)].into(),
            vec![(2, 1)].into(),
        );
        let (rvc, rn, rm) = b.past_release(0).expect("epoch 0 released");
        assert_eq!(rvc.get(1), 1);
        assert_eq!(&rn[..], &[notice(3, 1, 0)]);
        assert_eq!(&rm[..], &[(2, 1)]);
        assert!(b.past_release(1).is_none());
    }

    #[test]
    fn migration_proposals_merge_deterministically() {
        let mut b = BarrierMgr::new(3);
        let vc = VClock::new(3);
        // Conflicting first-touch claims for page 4: lowest home wins,
        // regardless of arrival order.
        b.arrive(2, &vc, &[], &[(4, 2), (9, 2)], SimTime(5));
        b.arrive(1, &vc, &[], &[(4, 1)], SimTime(6));
        b.arrive(0, &vc, &[], &[], SimTime(7));
        assert_eq!(b.decided_migrations(), vec![(4, 1), (9, 2)]);
        b.reset();
        assert!(b.decided_migrations().is_empty());
    }

    #[test]
    fn grant_blames_the_previous_grantee() {
        let mut t = LockTable::new(4);
        let st = t.state_mut(7);
        // Fresh lock: nobody to blame but yourself.
        assert_eq!(st.record_grant(2), 2);
        // Next grant is blamed on the node that held it.
        assert_eq!(st.record_grant(3), 2);
        assert_eq!(st.record_grant(3), 3, "re-acquire blames self");
    }

    #[test]
    fn barrier_tracks_straggler_and_spread() {
        let mut b = BarrierMgr::new(3);
        let vc = VClock::new(3);
        b.arrive(1, &vc, &[], &[], SimTime(40));
        b.arrive(0, &vc, &[], &[], SimTime(10));
        b.arrive(2, &vc, &[], &[], SimTime(40)); // tie: later arrival wins
        assert_eq!(b.straggler, 2);
        assert_eq!(b.earliest_arrival, SimTime(10));
        assert_eq!(b.latest_arrival, SimTime(40));
        b.reset();
        assert_eq!(b.straggler, 0);
        assert_eq!(b.earliest_arrival, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut b = BarrierMgr::new(2);
        let vc = VClock::new(2);
        b.arrive(0, &vc, &[], &[], SimTime(1));
        b.arrive(0, &vc, &[], &[], SimTime(2));
    }
}
