//! The HLRC protocol driver: one instance runs on each cluster node.
//!
//! [`NodeInner`] holds the node's protocol state (page table, vector
//! clock, manager roles); [`HlrcNode`] couples it with a pluggable
//! [`FaultTolerance`] implementation and drives the home-based lazy
//! release consistency protocol of Zhou et al. (OSDI'96), which the
//! paper's modified TreadMarks implements:
//!
//! * shared pages have fixed homes; writers collect modifications via
//!   twins and flush diffs to the home at each release/barrier;
//! * write-invalidation notices piggyback on lock grants and barrier
//!   releases; remote copies are invalidated on receipt;
//! * a page fault on an invalid copy is served by a single round trip
//!   to the home.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use pagemem::Encode;
use pagemem::{
    Access, BufferPool, Fault, IntervalId, PageDiff, PageId, PageState, SharedBytes, Twin, VClock,
};
use simnet::{CoherenceProtocol, Envelope, NodeCtx, NodeId, SimDuration, SimTime, TraceKind};

use crate::config::{DsmConfig, HomePolicy};
use crate::fault_tolerance::{FaultTolerance, RecoveryStep, SyncKind};
use crate::msg::{HomeMigration, Msg, PageCopy, WriteNotice};
use crate::page_table::PageTable;
use crate::sync::{BarrierMgr, LockTable, PendingAcquire};

/// Deterministic fetch-prediction state. Every input is a virtual-time
/// protocol event (fault page ids, invalidation notices), so prediction
/// is a pure function of the deterministic execution and `detcheck`'s
/// bit-reproducibility proof covers prefetch-enabled runs.
#[derive(Debug, Default)]
pub struct PrefetchState {
    /// Page of the previous demand fault.
    last_fault: Option<PageId>,
    /// Candidate stride between the last two demand faults, in pages.
    stride: i64,
    /// Two consecutive faults agreed on `stride` (two-miss confirmation
    /// before any stride prediction is issued).
    confirmed: bool,
    /// Pages invalidated by the most recent notice batch that
    /// invalidated anything: the write-notice sets already carried by
    /// lock grants and barrier releases are a free predictor of what
    /// will fault next (the invalidated copies are what this node was
    /// actively reading).
    recent_invalidated: BTreeSet<PageId>,
    /// Trailing prefetch batches not yet arrived, keyed by the demand
    /// page whose request issued them: `(demand page, sync_events at
    /// issue, predicted pages)`. The stamp gates the asynchronous
    /// install — extras are only as fresh as the acquire they were
    /// requested under, so a batch that crosses a synchronization
    /// operation is dropped, never installed stale.
    in_flight: Vec<(PageId, u64, Vec<PageId>)>,
    /// The page a demand fetch is currently blocked on, if any. An
    /// in-flight batch must never install this page mid-wait: the
    /// demand [`Msg::PageReply`] is the logged record that satisfies
    /// the fault, and letting the batch win the race would leave that
    /// record dangling in the message log — replay would consume the
    /// batch for this fault and then misattribute the reply record to
    /// the next one.
    demand: Option<PageId>,
}

impl PrefetchState {
    /// Record a demand fault at `page`, updating stride detection.
    fn note_fault(&mut self, page: PageId) {
        if let Some(prev) = self.last_fault {
            let s = i64::from(page) - i64::from(prev);
            if s != 0 && s == self.stride {
                self.confirmed = true;
            } else {
                self.stride = s;
                self.confirmed = false;
            }
        }
        self.last_fault = Some(page);
    }

    /// A confirmed stride, if any.
    fn stride(&self) -> Option<i64> {
        (self.confirmed && self.stride != 0).then_some(self.stride)
    }

    /// Is `page` predicted by a batch still in flight?
    fn in_flight(&self, page: PageId) -> bool {
        self.in_flight.iter().any(|(_, _, ps)| ps.contains(&page))
    }

    /// Remove and return the in-flight entry trailing demand page
    /// `after`, if any.
    fn take_in_flight(&mut self, after: PageId) -> Option<(u64, Vec<PageId>)> {
        let i = self.in_flight.iter().position(|(a, _, _)| *a == after)?;
        let (_, stamp, pages) = self.in_flight.remove(i);
        Some((stamp, pages))
    }
}

/// Protocol state of one DSM node, independent of the fault-tolerance
/// layer (which receives `&mut NodeInner` in its hooks).
pub struct NodeInner {
    /// The node's machine: clock, network endpoint, disk, stats.
    pub ctx: NodeCtx<Msg>,
    /// Cluster configuration.
    pub cfg: DsmConfig,
    /// This node's view of every shared page.
    pub pages: PageTable,
    /// Intervals whose updates are visible here.
    pub vc: VClock,
    /// Sequence number of this node's next interval.
    pub next_interval: u32,
    /// Write notices known since the last barrier (own and learned).
    pub history: Vec<WriteNotice>,
    /// The merged clock of the last completed barrier.
    pub last_barrier_vc: VClock,
    /// Locks this node manages.
    pub locks: LockTable,
    /// Barrier-manager state (node 0 only).
    pub barrier_mgr: Option<BarrierMgr>,
    /// For locks currently held: the lock's clock at grant time
    /// (release sends only notices the manager cannot already know).
    /// Holds the grant message's `Arc` directly — no copy.
    pub lock_grant_vcs: HashMap<u32, Arc<VClock>>,
    /// Free list recycling page frames (twins, fetched copies) and
    /// diff-run buffers across intervals. Purely physical: no reported
    /// metric observes it.
    pub pool: BufferPool,
    /// This node's next barrier episode.
    pub barrier_epoch: u32,
    /// Completed synchronization operations (failure injection hooks
    /// count these).
    pub sync_events: u64,
    /// Deterministic fetch-prediction state (see [`PrefetchState`]).
    pub prefetch: PrefetchState,
    /// Home-side diff bytes per `(page, writer)` since the last
    /// migration window — the profile that drives adaptive home
    /// migration. Only maintained when `cfg.adaptive_migration` is on.
    pub diff_traffic: BTreeMap<PageId, BTreeMap<u32, u64>>,
    /// Pages this node is adopting at the current barrier: the release
    /// named them but their [`Msg::HomeMigrate`] has not arrived yet.
    /// Page requests for them are stalled and re-serviced after the
    /// adoption completes.
    pending_migrations: BTreeSet<PageId>,
    /// Requests stalled on `pending_migrations`, in arrival order.
    stalled_requests: Vec<Envelope<Msg>>,
    /// The next barrier is a migration window (set by the cluster
    /// driver at checkpoint barriers); consumed at barrier arrival.
    pub migration_window: bool,
}

impl NodeInner {
    /// Build the protocol state for the node owning `ctx`.
    pub fn new(ctx: NodeCtx<Msg>, cfg: DsmConfig) -> NodeInner {
        let me = ctx.id();
        let n = cfg.n_nodes;
        assert_eq!(ctx.n_nodes(), n, "cluster size mismatch");
        NodeInner {
            pages: PageTable::new(&cfg, me),
            vc: VClock::new(n),
            next_interval: 0,
            history: Vec::new(),
            last_barrier_vc: VClock::new(n),
            locks: LockTable::new(n),
            barrier_mgr: (me == cfg.barrier_manager()).then(|| BarrierMgr::new(n)),
            lock_grant_vcs: HashMap::new(),
            pool: BufferPool::new(cfg.layout.page_size()),
            barrier_epoch: 0,
            sync_events: 0,
            prefetch: PrefetchState::default(),
            diff_traffic: BTreeMap::new(),
            pending_migrations: BTreeSet::new(),
            stalled_requests: Vec::new(),
            migration_window: false,
            cfg,
            ctx,
        }
    }

    /// Is `page` mid-adoption (mapping announced, data not yet here)?
    pub fn pending_migration(&self, page: PageId) -> bool {
        self.pending_migrations.contains(&page)
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.ctx.id()
    }

    /// The interval id this node's *current* (open) interval will get.
    pub fn current_interval(&self) -> IntervalId {
        IntervalId {
            node: self.me() as u32,
            seq: self.next_interval,
        }
    }

    /// During replay, close the current interval locally: the diffs it
    /// originally flushed are already part of the surviving homes'
    /// state, so only the bookkeeping (interval number, notices, twins)
    /// advances. Recovery protocols call this when they find the next
    /// synchronization record in the log.
    pub fn replay_close_interval(&mut self) {
        let dirty = self.pages.dirty_pages();
        if dirty.is_empty() {
            return;
        }
        let iv = self.current_interval();
        self.next_interval += 1;
        self.vc.observe(iv);
        let me = self.me();
        for p in dirty {
            self.history.push(WriteNotice {
                page: p,
                interval: iv,
            });
            let e = self.pages.entry_mut(p);
            e.dirty = false;
            if e.home == me {
                e.version.as_mut().expect("home version").observe(iv);
                e.twin = None;
            } else {
                e.twin = None;
                e.state = PageState::ReadOnly;
            }
        }
    }
}

/// A DSM node: HLRC coherence plus a pluggable fault-tolerance layer.
pub struct HlrcNode {
    /// Protocol state.
    pub inner: NodeInner,
    /// Logging/recovery protocol (None / ML / CCL).
    pub ft: Box<dyn FaultTolerance>,
}

impl HlrcNode {
    /// Create the node with the given fault-tolerance protocol.
    pub fn new(ctx: NodeCtx<Msg>, cfg: DsmConfig, ft: Box<dyn FaultTolerance>) -> HlrcNode {
        HlrcNode {
            inner: NodeInner::new(ctx, cfg),
            ft,
        }
    }

    // ---------------------------------------------------------------
    // Data access
    // ---------------------------------------------------------------

    /// Make `page` accessible with `access`, running the fault handler
    /// if the protection state requires it. This is the software stand-in
    /// for the mprotect/SIGSEGV trap (see DESIGN.md).
    pub fn ensure_access(&mut self, page: PageId, access: Access) {
        let me_home = self.inner.pages.is_home(page);
        if me_home {
            // Home copies never miss; the first write of an interval
            // takes a cheap write-detection trap to produce a notice.
            if access == Access::Write && !self.inner.pages.entry(page).dirty {
                let trap = self.inner.ctx.cost.cpu.fault_trap;
                self.inner.ctx.charge_overhead(trap);
                self.inner.ctx.stats.write_faults += 1;
                self.inner.ctx.trace(TraceKind::WriteFault { page });
                if self.ft.needs_home_write_twins()
                    && (self.inner.pages.entry(page).remote_fetched
                        || self.ft.logs_home_diffs_durably())
                {
                    // CCL: snapshot the home copy so the end-of-interval
                    // diff of the home's own writes can be logged for
                    // peers' recovery reconstruction. In multi-failure
                    // mode every interval is captured (the base stays at
                    // the checkpoint image); otherwise capture starts at
                    // the first remote fetch.
                    let page_size = self.inner.pages.page_size();
                    self.inner.ctx.charge_copy(page_size);
                    self.inner.ctx.stats.twins_created += 1;
                    let inner = &mut self.inner;
                    let e = inner.pages.entry_mut(page);
                    e.twin = Some(Twin::of_with(
                        e.frame.as_ref().expect("home frame"),
                        &mut inner.pool,
                    ));
                }
                self.inner.pages.entry_mut(page).dirty = true;
            }
            return;
        }
        if self.inner.pages.entry(page).prefetched {
            // First touch of a predicted copy: the fetch round trip this
            // access would have paid was hidden entirely.
            self.inner.pages.entry_mut(page).prefetched = false;
            self.inner.ctx.stats.prefetch_hits += 1;
            self.inner.ctx.trace(TraceKind::PrefetchHit { page });
        }
        let state = self.inner.pages.entry(page).state;
        match state.fault_for(access) {
            None => {}
            Some(fault) => {
                let trap = self.inner.ctx.cost.cpu.fault_trap;
                self.inner.ctx.charge_overhead(trap);
                match fault {
                    Fault::ReadMiss => {
                        self.inner.ctx.stats.read_faults += 1;
                        self.inner.ctx.trace(TraceKind::ReadFault { page });
                    }
                    Fault::WriteMiss | Fault::WriteUpgrade => {
                        self.inner.ctx.stats.write_faults += 1;
                        self.inner.ctx.trace(TraceKind::WriteFault { page });
                    }
                }
                if matches!(fault, Fault::ReadMiss | Fault::WriteMiss) {
                    if self.ft.in_recovery() {
                        let step =
                            self.ft
                                .recovery_fault(&mut self.inner, page, access == Access::Write);
                        if step == RecoveryStep::LogExhausted {
                            self.exit_recovery();
                            self.fetch_page(page);
                        } else if !self.ft.in_recovery() {
                            self.exit_recovery();
                        }
                    } else {
                        self.fetch_page(page);
                    }
                }
                if access == Access::Write {
                    // Upgrade: snapshot a twin and open write collection.
                    let page_size = self.inner.pages.page_size();
                    self.inner.ctx.charge_copy(page_size);
                    self.inner.ctx.stats.twins_created += 1;
                    let inner = &mut self.inner;
                    let e = inner.pages.entry_mut(page);
                    let twin = Twin::of_with(
                        e.frame.as_ref().expect("frame after fetch"),
                        &mut inner.pool,
                    );
                    e.twin = Some(twin);
                    e.dirty = true;
                    e.state = PageState::Writable;
                }
            }
        }
    }

    /// Read access to the frame of `page` (after `ensure_access`).
    pub fn frame(&self, page: PageId) -> &pagemem::PageFrame {
        self.inner.pages.frame(page)
    }

    /// Write access to the frame of `page` (after `ensure_access`).
    pub fn frame_mut(&mut self, page: PageId) -> &mut pagemem::PageFrame {
        debug_assert!(
            self.inner.pages.is_home(page)
                || self.inner.pages.entry(page).state == PageState::Writable,
            "write access without write permission on page {page}"
        );
        self.inner.pages.frame_mut(page)
    }

    /// Convenience scalar accessors (examples and tests; applications
    /// use the typed views in `ccl-core`).
    pub fn read_u64(&mut self, addr: usize) -> u64 {
        let (p, off) = self.locate(addr);
        self.ensure_access(p, Access::Read);
        self.frame(p).read_u64(off)
    }

    /// Write a u64 at byte address `addr` in the shared space.
    pub fn write_u64(&mut self, addr: usize, v: u64) {
        let (p, off) = self.locate(addr);
        self.ensure_access(p, Access::Write);
        self.frame_mut(p).write_u64(off, v);
    }

    /// Read an f64 at byte address `addr`.
    pub fn read_f64(&mut self, addr: usize) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an f64 at byte address `addr`.
    pub fn write_f64(&mut self, addr: usize, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    fn locate(&self, addr: usize) -> (PageId, usize) {
        let l = self.inner.cfg.layout;
        (l.page_of(addr), l.offset_of(addr))
    }

    fn fetch_page(&mut self, page: PageId) {
        if self.inner.cfg.prefetch_depth == 0 {
            self.fetch_page_single(page);
            return;
        }
        self.fetch_page_batched(page);
    }

    /// The legacy stop-and-wait fetch: one page, one round trip.
    /// Byte-exact with the pre-batching protocol (`prefetch_depth: 0`
    /// reproduces historical runs bit for bit).
    fn fetch_page_single(&mut self, page: PageId) {
        let home = self.inner.pages.entry(page).home;
        self.inner.ctx.stats.page_fetches += 1;
        let asked_at = self.inner.ctx.now();
        self.inner
            .ctx
            .send(home, Msg::PageRequest { page })
            .expect("send page request");
        let env = self.wait_for(|m| matches!(m, Msg::PageReply { page: p, .. } if *p == page));
        let page_size = self.inner.pages.page_size();
        self.inner.ctx.charge_copy(page_size);
        let waited = self.inner.ctx.now() - asked_at;
        self.inner
            .ctx
            .metrics
            .fetch_latency_ns
            .record(waited.as_nanos());
        self.inner.ctx.trace(TraceKind::PageFetch {
            page,
            from: home,
            wait_ns: waited.as_nanos(),
        });
        self.ft.on_incoming(&mut self.inner, &env.payload);
        if let Msg::PageReply { data, .. } = env.payload {
            self.inner
                .pages
                .install_copy(page, &data, PageState::ReadOnly, &mut self.inner.pool);
        }
    }

    /// The latency-hiding fetch: the request carries the faulting page
    /// plus up to `prefetch_depth` predicted same-home pages. The home
    /// answers the demand page with an ordinary [`Msg::PageReply`] —
    /// byte-identical stall to the legacy fetch — and ships the
    /// predicted copies in one trailing [`Msg::PageReplyBatch`] that
    /// installs asynchronously at the next inbox drain. A wrong
    /// prediction costs bytes on the wire, never an extra stall.
    fn fetch_page_batched(&mut self, page: PageId) {
        let home = self.inner.pages.entry(page).home;
        self.inner.ctx.stats.page_fetches += 1;
        self.inner.prefetch.note_fault(page);
        // A fault on a page already predicted by an in-flight batch
        // still pays one demand round trip (waiting out the batch could
        // stall longer than a fresh fetch), but issues no new
        // predictions — the in-flight batch already covers the window.
        let extras = if self.inner.prefetch.in_flight(page) {
            Vec::new()
        } else {
            self.prefetch_candidates(page, home)
        };
        let asked_at = self.inner.ctx.now();
        if !extras.is_empty() {
            self.inner.ctx.stats.prefetch_issued += extras.len() as u64;
            self.inner.ctx.trace(TraceKind::PrefetchIssued {
                page,
                count: extras.len() as u32,
            });
            self.inner
                .prefetch
                .in_flight
                .push((page, self.inner.sync_events, extras.clone()));
        }
        self.inner
            .ctx
            .send(home, Msg::PageRequestBatch { page, extras })
            .expect("send page request batch");
        self.inner.prefetch.demand = Some(page);
        let env = self.wait_for(|m| matches!(m, Msg::PageReply { page: p, .. } if *p == page));
        self.inner.prefetch.demand = None;
        let page_size = self.inner.pages.page_size();
        self.inner.ctx.charge_copy(page_size);
        let waited = self.inner.ctx.now() - asked_at;
        self.inner
            .ctx
            .metrics
            .fetch_latency_ns
            .record(waited.as_nanos());
        self.inner.ctx.trace(TraceKind::PageFetch {
            page,
            from: home,
            wait_ns: waited.as_nanos(),
        });
        self.ft.on_incoming(&mut self.inner, &env.payload);
        if let Msg::PageReply { data, .. } = env.payload {
            self.inner
                .pages
                .install_copy(page, &data, PageState::ReadOnly, &mut self.inner.pool);
        }
    }

    /// Install a trailing prefetch batch (see [`Msg::PageReplyBatch`]):
    /// gate on the issue-time synchronization stamp, then install every
    /// carried page that is still invalid, valid-until-invalidated.
    /// Called from the asynchronous service path, so nothing here may
    /// block. Pages that went stale (a sync operation completed since
    /// the request) or valid (demand-fetched while the batch was in
    /// flight) count as wasted predictions.
    fn install_prefetch_batch(&mut self, env: Envelope<Msg>) {
        let Msg::PageReplyBatch { after, pages } = env.payload else {
            unreachable!()
        };
        let stale = match self.inner.prefetch.take_in_flight(after) {
            // A batch from a pre-crash incarnation (the map resets with
            // the node) or one that crossed a synchronization operation
            // can no longer prove its copies fresh enough.
            None => true,
            Some((stamp, _)) => stamp != self.inner.sync_events,
        };
        let mut install: Vec<PageCopy> = Vec::new();
        for (p, data, version) in pages {
            let e = self.inner.pages.entry(p);
            if stale
                || e.state != PageState::Invalid
                || self.inner.pending_migration(p)
                || self.inner.prefetch.demand == Some(p)
            {
                self.inner.ctx.stats.prefetch_wasted += 1;
                self.inner.ctx.trace(TraceKind::PrefetchWasted { page: p });
                continue;
            }
            install.push((p, data, version));
        }
        if install.is_empty() {
            return;
        }
        // Log before installing (write-ahead, like every other incoming
        // that mutates page state) with exactly the installed subset, so
        // ML replay re-installs precisely what live execution did.
        let logged = Msg::PageReplyBatch {
            after,
            pages: install.clone(),
        };
        self.ft.on_incoming(&mut self.inner, &logged);
        for (p, data, _version) in install {
            self.inner
                .pages
                .install_copy(p, &data, PageState::ReadOnly, &mut self.inner.pool);
            self.inner.pages.entry_mut(p).prefetched = true;
        }
    }

    /// Predicted pages worth piggybacking on a fault at `page`, all
    /// homed at `home` and currently invalid here: confirmed-stride
    /// projections first, then pages recently invalidated by write
    /// notices (likely to fault again). Ascending and deduplicated —
    /// a pure function of deterministic protocol state.
    fn prefetch_candidates(&self, page: PageId, home: NodeId) -> Vec<PageId> {
        let depth = self.inner.cfg.prefetch_depth as usize;
        let n_pages = self.inner.pages.len() as i64;
        let mut out: Vec<PageId> = Vec::new();
        let want = |p: PageId, out: &mut Vec<PageId>| {
            if p == page || out.contains(&p) || out.len() >= depth {
                return;
            }
            let e = self.inner.pages.entry(p);
            if e.home == home
                && e.state == PageState::Invalid
                && !self.inner.pending_migration(p)
                && !self.inner.prefetch.in_flight(p)
            {
                out.push(p);
            }
        };
        if let Some(stride) = self.inner.prefetch.stride() {
            let mut p = i64::from(page);
            for _ in 0..depth {
                p += stride;
                if p < 0 || p >= n_pages {
                    break;
                }
                want(p as PageId, &mut out);
            }
        }
        if out.len() < depth {
            for &p in &self.inner.prefetch.recent_invalidated {
                want(p, &mut out);
            }
        }
        out.sort_unstable();
        out
    }

    // ---------------------------------------------------------------
    // Synchronization
    // ---------------------------------------------------------------

    /// Acquire a global lock.
    pub fn acquire(&mut self, lock: u32) {
        self.inner.sync_events += 1;
        if self.ft.in_recovery() {
            match self.ft.recovery_acquire(&mut self.inner, lock) {
                RecoveryStep::Replayed => {
                    self.inner.ctx.stats.lock_acquires += 1;
                    if !self.ft.in_recovery() {
                        self.exit_recovery();
                    }
                    return;
                }
                RecoveryStep::LogExhausted => self.exit_recovery(),
            }
        }
        // LRC: an acquire delimits the current interval.
        self.end_interval();
        let mgr = self.inner.cfg.lock_manager(lock);
        let vc = self.inner.vc.clone();
        let asked_at = self.inner.ctx.now();
        self.inner
            .ctx
            .send(mgr, Msg::LockRequest { lock, vc })
            .expect("send lock request");
        let env = self.wait_for(|m| matches!(m, Msg::LockGrant { lock: l, .. } if *l == lock));
        self.ft.on_incoming(&mut self.inner, &env.payload);
        if let Msg::LockGrant { vc, notices, .. } = env.payload {
            self.apply_sync_notices(SyncKind::Acquire(lock), &notices, &vc);
            self.inner.lock_grant_vcs.insert(lock, vc);
        }
        let waited = self.inner.ctx.now() - asked_at;
        self.inner
            .ctx
            .metrics
            .lock_wait_ns
            .record(waited.as_nanos());
        self.inner.ctx.stats.lock_acquires += 1;
        self.inner.ctx.trace(TraceKind::LockAcquire {
            lock,
            wait_ns: waited.as_nanos(),
        });
    }

    /// Release a global lock.
    pub fn release(&mut self, lock: u32) {
        self.inner.sync_events += 1;
        if self.ft.in_recovery() {
            // Replay: diffs are already at their homes (they were flushed
            // before the crash); only advance the interval bookkeeping.
            self.inner.replay_close_interval();
            return;
        }
        self.end_interval();
        let grant_vc = self
            .inner
            .lock_grant_vcs
            .remove(&lock)
            .unwrap_or_else(|| Arc::new(VClock::new(self.inner.cfg.n_nodes)));
        let notices: Vec<WriteNotice> = self
            .inner
            .history
            .iter()
            .filter(|n| !grant_vc.covers(n.interval))
            .copied()
            .collect();
        let mgr = self.inner.cfg.lock_manager(lock);
        let vc = self.inner.vc.clone();
        self.inner
            .ctx
            .send(mgr, Msg::LockRelease { lock, vc, notices })
            .expect("send lock release");
        self.inner.ctx.trace(TraceKind::LockRelease { lock });
    }

    /// Global barrier across all nodes.
    pub fn barrier(&mut self) {
        self.inner.sync_events += 1;
        let epoch = self.inner.barrier_epoch;
        if self.ft.in_recovery() {
            match self.ft.recovery_barrier(&mut self.inner, epoch) {
                RecoveryStep::Replayed => {
                    self.inner.barrier_epoch += 1;
                    self.inner.ctx.stats.barriers += 1;
                    if !self.ft.in_recovery() {
                        self.exit_recovery();
                    }
                    return;
                }
                RecoveryStep::LogExhausted => self.exit_recovery(),
            }
        }
        self.end_interval();
        self.inner.ctx.trace(TraceKind::BarrierEnter { epoch });
        self.inner.barrier_epoch += 1;
        let notices: Vec<WriteNotice> = self
            .inner
            .history
            .iter()
            .filter(|n| !self.inner.last_barrier_vc.covers(n.interval))
            .copied()
            .collect();
        let me = self.inner.me();
        let proposals = self.migration_proposals(epoch, &notices);
        if me == self.inner.cfg.barrier_manager() {
            let now = self.inner.ctx.now();
            let vc = self.inner.vc.clone();
            let mgr = self.inner.barrier_mgr.as_mut().expect("manager state");
            mgr.arrive(me, &vc, &notices, &proposals, now);
            // Gather the cluster: service traffic until everyone arrived.
            self.service_while(|node| {
                node.inner
                    .barrier_mgr
                    .as_ref()
                    .expect("manager state")
                    .arrived_count()
                    < node.inner.cfg.n_nodes
            });
            let handler = self.inner.ctx.cost.cpu.message_handler;
            let mgr = self.inner.barrier_mgr.as_mut().expect("manager state");
            let release_time = mgr.latest_arrival.max(now) + handler;
            // One shared snapshot: the release history, every broadcast
            // copy, and the manager's own release all alias it.
            let merged_vc = Arc::new(mgr.merged_vc.clone());
            let merged_notices: Arc<[WriteNotice]> = std::mem::take(&mut mgr.merged_notices).into();
            let migrations: Arc<[HomeMigration]> = mgr.decided_migrations().into();
            mgr.record_released(
                epoch,
                Arc::clone(&merged_vc),
                Arc::clone(&merged_notices),
                Arc::clone(&migrations),
            );
            let straggler = mgr.straggler;
            let spread_ns = (mgr.latest_arrival - mgr.earliest_arrival).as_nanos();
            mgr.reset();
            self.inner.ctx.trace(TraceKind::BarrierReleased {
                epoch,
                straggler,
                spread_ns,
            });
            for node in 0..self.inner.cfg.n_nodes {
                if node != me {
                    self.inner
                        .ctx
                        .send_from(
                            release_time,
                            node,
                            Msg::BarrierRelease {
                                epoch,
                                vc: Arc::clone(&merged_vc),
                                notices: Arc::clone(&merged_notices),
                                migrations: Arc::clone(&migrations),
                            },
                        )
                        .expect("send barrier release");
                }
            }
            self.inner.ctx.wait_until(release_time);
            // The manager logs the (self-directed) release like everyone
            // else, so ML replay sees the same record stream.
            let own_release = Msg::BarrierRelease {
                epoch,
                vc: Arc::clone(&merged_vc),
                notices: Arc::clone(&merged_notices),
                migrations: Arc::clone(&migrations),
            };
            self.ft.on_incoming(&mut self.inner, &own_release);
            // Migrations before notices: a new home must own the page
            // before the notice loop decides what to invalidate.
            self.apply_migrations(epoch, &migrations);
            self.apply_sync_notices(SyncKind::Barrier(epoch), &merged_notices, &merged_vc);
        } else {
            let vc = self.inner.vc.clone();
            self.inner
                .ctx
                .send(
                    self.inner.cfg.barrier_manager(),
                    Msg::BarrierArrive {
                        epoch,
                        vc,
                        notices,
                        proposals,
                    },
                )
                .expect("send barrier arrive");
            let env =
                self.wait_for(|m| matches!(m, Msg::BarrierRelease { epoch: e, .. } if *e == epoch));
            self.ft.on_incoming(&mut self.inner, &env.payload);
            if let Msg::BarrierRelease {
                vc,
                notices,
                migrations,
                ..
            } = env.payload
            {
                self.apply_migrations(epoch, &migrations);
                self.apply_sync_notices(SyncKind::Barrier(epoch), &notices, &vc);
            }
        }
        self.inner.last_barrier_vc = self.inner.vc.clone();
        let lb = self.inner.last_barrier_vc.clone();
        self.inner.history.retain(|n| !lb.covers(n.interval));
        self.inner.ctx.stats.barriers += 1;
        self.inner.ctx.trace(TraceKind::BarrierExit { epoch });
    }

    // ---------------------------------------------------------------
    // Interval management
    // ---------------------------------------------------------------

    /// Close the current interval: create diffs for dirtied pages, flush
    /// them to their homes, wait for acks, and run the logging protocol's
    /// flush hooks. No-op (except the ML flush) when nothing was written.
    fn end_interval(&mut self) {
        self.pump();
        // ML flushes its volatile log of incoming messages before the
        // node communicates — fully on the critical path.
        let pre = self.ft.flush_before_send(&mut self.inner);
        if pre > SimDuration::ZERO {
            self.inner.ctx.charge_disk(pre);
        }
        let dirty = self.inner.pages.dirty_pages();
        if dirty.is_empty() {
            return;
        }
        let iv = self.inner.current_interval();
        self.inner.next_interval += 1;
        self.inner.vc.observe(iv);
        let page_size = self.inner.pages.page_size();

        let mut per_home: HashMap<NodeId, Vec<PageDiff>> = HashMap::new();
        let mut all_diffs: Vec<PageDiff> = Vec::new();
        let mut home_diffs: Vec<PageDiff> = Vec::new();
        for &p in &dirty {
            self.inner.history.push(WriteNotice {
                page: p,
                interval: iv,
            });
            let me = self.inner.me();
            let inner = &mut self.inner;
            let e = inner.pages.entry_mut(p);
            e.dirty = false;
            if e.home == me {
                // Home writes update the home copy in place; only the
                // version advances. With a logging protocol that needs
                // it, diff the home's own writes into the log set (but
                // never onto the wire).
                e.version.as_mut().expect("home version").observe(iv);
                if let Some(twin) = e.twin.take() {
                    let frame = e.frame.as_ref().expect("home frame");
                    let diff = PageDiff::create_in(p, &twin, frame, &mut inner.pool);
                    inner.pool.recycle_frame(twin.into_frame());
                    self.inner.ctx.charge_copy(2 * page_size);
                    if !diff.is_empty() {
                        home_diffs.push(diff);
                    }
                }
                continue;
            }
            let twin = e.twin.take().expect("dirty non-home page without twin");
            e.state = PageState::ReadOnly;
            let home = e.home;
            let frame = e.frame.as_ref().expect("dirty page without frame");
            let diff = PageDiff::create_in(p, &twin, frame, &mut inner.pool);
            inner.pool.recycle_frame(twin.into_frame());
            // Word-compare of page against twin plus encoding.
            self.inner.ctx.charge_copy(2 * page_size);
            self.inner.ctx.stats.diffs_created += 1;
            self.inner.ctx.stats.diff_bytes += diff.encoded_size() as u64;
            self.inner
                .ctx
                .metrics
                .diff_bytes
                .record(diff.encoded_size() as u64);
            if diff.is_empty() {
                continue; // silent write (same values): nothing to flush
            }
            per_home.entry(home).or_default().push(diff.clone());
            all_diffs.push(diff);
        }
        self.ft.on_diffs_created(&mut self.inner, iv, &all_diffs);
        if !home_diffs.is_empty() {
            self.ft.on_home_diffs(&mut self.inner, iv, &home_diffs);
        }

        let n_flushes = per_home.len();
        // Flush in home order: the iteration feeds sends and trace
        // events, so it must not inherit HashMap iteration order.
        let mut per_home: Vec<_> = per_home.into_iter().collect();
        per_home.sort_unstable_by_key(|(home, _)| *home);
        for (home, diffs) in per_home {
            let bytes: u64 = diffs.iter().map(|d| d.encoded_size() as u64).sum();
            self.inner
                .ctx
                .send(home, Msg::DiffFlush { writer: iv, diffs })
                .expect("send diff flush");
            self.inner
                .ctx
                .trace(TraceKind::DiffFlush { to: home, bytes });
        }
        // CCL issues its log flush here so the disk access proceeds in
        // parallel with the diff round-trips.
        let (post, overlappable) = self.ft.flush_after_send(&mut self.inner);
        let t0 = self.inner.ctx.now();
        let mut pending = n_flushes;
        // Acks are absorbed in virtual arrival order, so the last one is
        // the slowest home — the node the whole ack wait is blamed on.
        let mut slowest_home: Option<NodeId> = None;
        while pending > 0 {
            let env = self.wait_for(|m| matches!(m, Msg::DiffAck { writer } if *writer == iv));
            slowest_home = Some(env.src);
            pending -= 1;
        }
        let waited = self.inner.ctx.now() - t0;
        if let Some(home) = slowest_home {
            self.inner.ctx.trace(TraceKind::FlushAckWait {
                home,
                wait_ns: waited.as_nanos(),
            });
        }
        if post > SimDuration::ZERO {
            if overlappable {
                let hidden = post.as_nanos().min(waited.as_nanos());
                self.inner.ctx.stats.disk_time_overlapped += SimDuration(hidden);
                let residual = post.saturating_sub(waited);
                if residual > SimDuration::ZERO {
                    self.inner.ctx.charge_disk(residual);
                }
            } else {
                self.inner.ctx.charge_disk(post);
            }
        }
    }

    /// Process incoming notices at an acquire/barrier: invalidate named
    /// remote copies, extend the notice history, merge the clock.
    fn apply_sync_notices(&mut self, kind: SyncKind, notices: &[WriteNotice], vc_in: &VClock) {
        let me = self.inner.me() as u32;
        // Freshness is judged against the clock as it stood *before*
        // this batch: several notices share one interval (one per page
        // written in it), and observing the interval at the first one
        // must not mask its siblings.
        let vc_before = self.inner.vc.clone();
        let mut fresh: Vec<WriteNotice> = Vec::new();
        let mut invalidated: BTreeSet<PageId> = BTreeSet::new();
        for n in notices {
            if vc_before.covers(n.interval) || fresh.contains(n) {
                continue;
            }
            fresh.push(*n);
            self.inner.vc.observe(n.interval);
            self.inner.history.push(*n);
            if n.interval.node != me && !self.inner.pages.is_home(n.page) {
                debug_assert!(
                    self.inner.pages.entry(n.page).twin.is_none(),
                    "invalidation of a page with an open twin: intervals \
                     must be delimited before notices are applied"
                );
                if self.inner.pages.entry(n.page).prefetched {
                    // Predicted copy invalidated before its first use:
                    // the prediction bought nothing but bytes.
                    self.inner.ctx.stats.prefetch_wasted += 1;
                    self.inner
                        .ctx
                        .trace(TraceKind::PrefetchWasted { page: n.page });
                }
                self.inner.pages.invalidate(n.page, &mut self.inner.pool);
                invalidated.insert(n.page);
            }
        }
        if !invalidated.is_empty() {
            // The freshest invalidation set replaces the previous one as
            // the notice-driven refetch predictor.
            self.inner.prefetch.recent_invalidated = invalidated;
        }
        self.inner.vc.join(vc_in);
        if !fresh.is_empty() {
            self.inner.ctx.trace(TraceKind::NoticesApplied {
                count: fresh.len() as u32,
            });
        }
        let vc = self.inner.vc.clone();
        self.ft.on_notices(&mut self.inner, kind, &fresh, &vc);
    }

    // ---------------------------------------------------------------
    // Home migration
    // ---------------------------------------------------------------

    /// Home-migration proposals this node piggybacks on its barrier
    /// arrival. Two deterministic sources:
    ///
    /// * **First touch** (epoch 0, [`HomePolicy::FirstTouch`]): every
    ///   page this node wrote in the first epoch but does not own —
    ///   the initial touch pattern, committed at the first barrier,
    ///   decides ownership instead of the static block layout.
    /// * **Adaptive** (migration windows, `cfg.adaptive_migration`):
    ///   a home page whose diff traffic since the last window is
    ///   dominated by one remote writer (strict majority of bytes)
    ///   is proposed to move to that writer.
    ///
    /// Pages migrate at most once (`migrated` blocks re-proposals), so
    /// adaptive placement cannot ping-pong.
    fn migration_proposals(&mut self, epoch: u32, notices: &[WriteNotice]) -> Vec<HomeMigration> {
        let me = self.inner.me() as u32;
        let mut out: Vec<HomeMigration> = Vec::new();
        if epoch == 0 && self.inner.cfg.home_policy == HomePolicy::FirstTouch {
            for n in notices {
                if n.interval.node != me {
                    continue;
                }
                let e = self.inner.pages.entry(n.page);
                if e.home as u32 != me && !e.migrated && !out.iter().any(|&(p, _)| p == n.page) {
                    out.push((n.page, me));
                }
            }
        }
        let window = std::mem::take(&mut self.inner.migration_window);
        if window && self.inner.cfg.adaptive_migration {
            let traffic = std::mem::take(&mut self.inner.diff_traffic);
            for (page, writers) in traffic {
                let e = self.inner.pages.entry(page);
                if e.home as u32 != me || e.migrated {
                    continue;
                }
                let total: u64 = writers.values().sum();
                // Strictly-greater wins, so BTreeMap order breaks byte
                // ties toward the lowest writer id — deterministic.
                let mut best_w = u32::MAX;
                let mut best_b = 0u64;
                for (&w, &b) in &writers {
                    if b > best_b {
                        best_b = b;
                        best_w = w;
                    }
                }
                if best_w != u32::MAX && best_w != me && best_b * 2 > total {
                    out.push((page, best_w));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Apply a barrier's committed migration list. Every node walks the
    /// *same sorted list in the same order*, so the cross-node handshake
    /// (old home sends [`Msg::HomeMigrate`], new home adopts) cannot
    /// deadlock: sends are non-blocking, adoptions are the only blocking
    /// entries, and by induction on the list index the first entry any
    /// node blocks on has already had its `HomeMigrate` dispatched.
    fn apply_migrations(&mut self, epoch: u32, migrations: &[HomeMigration]) {
        if migrations.is_empty() {
            return;
        }
        let me = self.inner.me();
        // Pass 1: reserve every page this node is adopting, so a racing
        // request stalls (see `service`) instead of being answered by a
        // home role that is mid-handover.
        for &(page, to) in migrations {
            if to as usize == me && self.inner.pages.entry(page).home != me {
                self.inner.pending_migrations.insert(page);
            }
        }
        for &(page, to) in migrations {
            let to = to as usize;
            let home = self.inner.pages.entry(page).home;
            if home == to {
                // Already applied — a replayed or re-delivered release
                // after a crash that preserved the post-migration
                // mapping. Idempotent skip.
                self.inner.pending_migrations.remove(&page);
                continue;
            }
            if to == me {
                // Adopt. In-migrations arrive in deterministic but
                // list-order-unrelated order, so absorb whichever
                // `HomeMigrate` comes until *this* page is in.
                while self.inner.pending_migration(page) {
                    let env = self.wait_for(|m| matches!(m, Msg::HomeMigrate { .. }));
                    self.adopt_migrated(env);
                }
                if epoch == 0 {
                    // First-touch adoption: pre-checkpoint truth is the
                    // zero-initialized page, not the transfer image.
                    self.inner.pages.zero_base(page);
                }
            } else if home == me {
                let page_size = self.inner.pages.page_size();
                let e = self.inner.pages.entry(page);
                let data = SharedBytes::copy_of(e.frame.as_ref().expect("home frame").bytes());
                let version = e.version.clone().expect("home version");
                self.inner.ctx.charge_copy(page_size);
                self.inner
                    .ctx
                    .send(
                        to,
                        Msg::HomeMigrate {
                            page,
                            data,
                            version,
                        },
                    )
                    .expect("send home migrate");
                self.inner.pages.demote_home(page, to);
                self.inner.ctx.stats.home_migrations += 1;
                self.inner
                    .ctx
                    .trace(TraceKind::HomeMigrated { page, from: me, to });
            } else {
                self.inner.pages.note_migrated(page, to);
            }
        }
        debug_assert!(
            self.inner.pending_migrations.is_empty(),
            "unadopted migrations left at node {me}"
        );
        self.drain_stalled();
    }

    /// Absorb one [`Msg::HomeMigrate`]: log it (ML replays adoptions
    /// from these records), install the transferred home copy, and
    /// clear the page's reservation.
    fn adopt_migrated(&mut self, env: Envelope<Msg>) {
        self.ft.on_incoming(&mut self.inner, &env.payload);
        let Msg::HomeMigrate {
            page,
            data,
            version,
        } = env.payload
        else {
            unreachable!()
        };
        debug_assert!(
            self.inner.pending_migrations.contains(&page),
            "unsolicited home migrate for page {page}"
        );
        self.inner.ctx.charge_copy(data.len());
        self.inner.pages.adopt_home(page, &data, version);
        self.inner.pending_migrations.remove(&page);
    }

    /// Re-service the requests stalled on a now-completed adoption, in
    /// arrival order, timed from "now" (their arrival is in the past).
    fn drain_stalled(&mut self) {
        if self.inner.stalled_requests.is_empty() {
            return;
        }
        let stalled = std::mem::take(&mut self.inner.stalled_requests);
        for env in stalled {
            self.service(env, true);
        }
    }
}

impl NodeInner {
    /// Answer a [`Msg::RecoveryPageRequest`] for a page homed here,
    /// finishing service at `done`.
    ///
    /// `mid_replay` says whether this home is itself replaying its log:
    /// then it must not hand out its live frame (which may still be
    /// behind `required`, missing intervals the requester already
    /// replayed) and serves the checkpoint base as "advanced" instead,
    /// making the requester reconstruct the page from the writers'
    /// stable logs — correct at any replay point. Callable both from
    /// the live service loop and from a recovering node's own fetch
    /// waits (concurrently recovering nodes must keep serving each
    /// other or they deadlock).
    pub fn serve_recovery_page(
        &mut self,
        env: &Envelope<Msg>,
        done: SimTime,
        mid_replay: bool,
        home_write_twins: bool,
        stable_base: bool,
    ) {
        let Msg::RecoveryPageRequest { page, required } = &env.payload else {
            return;
        };
        let page = *page;
        debug_assert!(self.pages.is_home(page));
        // Inspect the open-interval state *before* the fetch
        // bookkeeping: a first fetch landing mid-interval promotes the
        // live frame (open writes included) into the base and twins
        // it, and neither of those images may be handed to a replaying
        // peer as the state at `version`.
        let (was_dirty, had_twin) = {
            let e = self.pages.entry(page);
            (e.dirty, e.twin.is_some())
        };
        self.pages
            .note_remote_fetch(page, home_write_twins, stable_base);
        let e = self.pages.entry(page);
        let version = e.version.clone().expect("home version");
        // The live frame equals the state named by `version` only while
        // no interval is open on the page: open-interval words are in
        // the frame but in no version a replaying peer can require, and
        // how many of them exist depends on real scheduling (the
        // request is serviced at whichever blocking point this node
        // happens to reach). Serving them would leak a survivor's
        // in-progress writes into the peer's replay. A dirty page is
        // served from its interval-open twin — exactly the state at
        // `version` — and without one the stable-base path below makes
        // the peer reconstruct from logged diffs instead.
        let (advanced, data, version) =
            if !mid_replay && version.dominated_by(required) && (!was_dirty || had_twin) {
                let image = if was_dirty {
                    e.twin.as_ref().expect("interval-open twin").frame()
                } else {
                    e.frame.as_ref().expect("home frame")
                };
                (false, SharedBytes::copy_of(image.bytes()), version)
            } else {
                (
                    true,
                    SharedBytes::copy_of(e.base.as_ref().expect("home base").bytes()),
                    e.base_version.clone().expect("base version"),
                )
            };
        let copy_cost = self.ctx.cost.cpu.copy(data.len());
        self.ctx
            .send_from(
                done + copy_cost,
                env.src,
                Msg::RecoveryPageReply {
                    page,
                    advanced,
                    data,
                    version,
                },
            )
            .expect("send recovery page reply");
    }

    /// Answer a [`Msg::ReleaseHistoryRequest`] from the barrier
    /// manager's retained per-epoch releases, finishing service at
    /// `done`. A freshly crashed manager answers with an empty history
    /// (its map was wiped with the rest of volatile memory), which the
    /// requester treats as "nothing to repair" — best effort, exactly
    /// like the single-failure assumption everywhere else.
    pub fn serve_release_history(&mut self, env: &Envelope<Msg>, done: SimTime) {
        debug_assert_eq!(self.me(), self.cfg.barrier_manager());
        let releases = self
            .barrier_mgr
            .as_ref()
            .map(|m| m.release_history())
            .unwrap_or_default();
        let reply = Msg::ReleaseHistoryReply { releases };
        let copy_cost = self.ctx.cost.cpu.copy(reply.encoded_size());
        self.ctx
            .send_from(done + copy_cost, env.src, reply)
            .expect("send release history reply");
    }
}

/// The engine runs the HLRC node: the pump, the reply-while-blocked
/// loop, and the crash/resume lifecycle come from
/// [`CoherenceProtocol`]; this impl supplies only message service and
/// the recovery deferral predicate.
impl CoherenceProtocol<Msg> for HlrcNode {
    fn ctx(&mut self) -> &mut NodeCtx<Msg> {
        &mut self.inner.ctx
    }

    /// True while replaying from the log after a crash: serving a peer
    /// from a half-restored memory image would hand out corrupt data.
    fn deferring(&self) -> bool {
        self.ft.in_recovery()
    }

    /// Recovery-class requests are exempt from deferral: they are
    /// answered from stable state (the base image and the stable log),
    /// never from the half-restored frames, so a replaying node can
    /// still serve them. Without this, two nodes recovering at once
    /// would defer each other's requests and deadlock.
    fn must_defer(&self, payload: &Msg) -> bool {
        self.ft.in_recovery()
            && !matches!(
                payload,
                Msg::RecoveryPageRequest { .. }
                    | Msg::LoggedDiffRequest { .. }
                    | Msg::ReleaseHistoryRequest
            )
    }

    /// Service one asynchronous protocol message. `deferred` marks
    /// messages replayed after recovery, whose service time is "now"
    /// rather than their (long past) arrival time.
    fn service(&mut self, env: Envelope<Msg>, deferred: bool) {
        // Traffic touching a page whose adoption this node has announced
        // but not completed must wait: the old copy is stale and the new
        // home has nothing to serve yet. Stalled envelopes are
        // re-serviced right after the adoption (see `drain_stalled`).
        let stall = match &env.payload {
            Msg::PageRequest { page } => self.inner.pending_migration(*page),
            Msg::PageRequestBatch { page, extras } => {
                self.inner.pending_migration(*page)
                    || extras.iter().any(|p| self.inner.pending_migration(*p))
            }
            Msg::DiffFlush { diffs, .. } => {
                diffs.iter().any(|d| self.inner.pending_migration(d.page))
            }
            _ => false,
        };
        if stall {
            self.inner.stalled_requests.push(env);
            return;
        }
        let handler = self.inner.ctx.cost.cpu.message_handler;
        let done = self.inner.ctx.async_service_base(&env, deferred) + handler;
        // DiffFlush is handled by value (not through the shared match on
        // `&env.payload`) so the run buffers of every applied diff can be
        // recycled into the pool instead of freed.
        if matches!(env.payload, Msg::DiffFlush { .. }) {
            self.ft.on_incoming(&mut self.inner, &env.payload);
            let src = env.src;
            let Msg::DiffFlush { writer, diffs } = env.payload else {
                unreachable!()
            };
            if self.inner.cfg.adaptive_migration {
                // Per-(page, writer) byte profile driving adaptive home
                // migration at the next migration window.
                for d in &diffs {
                    *self
                        .inner
                        .diff_traffic
                        .entry(d.page)
                        .or_default()
                        .entry(writer.node)
                        .or_default() += d.encoded_size() as u64;
                }
            }
            let payload: usize = diffs.iter().map(|d| d.encoded_size()).sum();
            let copy_cost = self.inner.ctx.cost.cpu.copy(payload);
            let mut pages = Vec::with_capacity(diffs.len());
            for d in diffs {
                self.inner.pages.apply_home_diff(&d, writer);
                pages.push(d.page);
                self.inner.pool.recycle_diff(d);
            }
            self.ft.on_updates_applied(&mut self.inner, writer, &pages);
            // Write-ahead gate: the ack tells the writer it may discard
            // its diff, so a protocol whose log is the only remaining
            // copy must persist the staged record first (see
            // [`FaultTolerance::flush_before_ack`]).
            let wal = self.ft.flush_before_ack(&mut self.inner);
            if wal > SimDuration::ZERO {
                self.inner.ctx.charge_disk(wal);
            }
            self.inner
                .ctx
                .send_from(done + copy_cost + wal, src, Msg::DiffAck { writer })
                .expect("send diff ack");
            return;
        }
        match &env.payload {
            Msg::PageRequest { page } => {
                let page = *page;
                debug_assert!(self.inner.pages.is_home(page), "page request at non-home");
                self.inner.pages.note_remote_fetch(
                    page,
                    self.ft.needs_home_write_twins(),
                    self.ft.logs_home_diffs_durably(),
                );
                let e = self.inner.pages.entry(page);
                let data = SharedBytes::copy_of(e.frame.as_ref().expect("home frame").bytes());
                let version = e.version.clone().expect("home version");
                let copy_cost = self.inner.ctx.cost.cpu.copy(data.len());
                self.inner
                    .ctx
                    .send_from(
                        done + copy_cost,
                        env.src,
                        Msg::PageReply {
                            page,
                            data,
                            version,
                        },
                    )
                    .expect("send page reply");
            }
            Msg::PageRequestBatch { page, extras } => {
                let page = *page;
                let extras = extras.clone();
                let copy_of = |inner: &mut NodeInner, p: PageId| -> PageCopy {
                    debug_assert!(inner.pages.is_home(p), "batch page request at non-home");
                    let e = inner.pages.entry(p);
                    let data = SharedBytes::copy_of(e.frame.as_ref().expect("home frame").bytes());
                    let version = e.version.clone().expect("home version");
                    (p, data, version)
                };
                // The demand page first, as an ordinary reply with the
                // exact single-fetch timing: the requester's stall never
                // grows with the prediction depth.
                self.inner.pages.note_remote_fetch(
                    page,
                    self.ft.needs_home_write_twins(),
                    self.ft.logs_home_diffs_durably(),
                );
                let (_, data, version) = copy_of(&mut self.inner, page);
                let demand_cost = self.inner.ctx.cost.cpu.copy(data.len());
                self.inner
                    .ctx
                    .send_from(
                        done + demand_cost,
                        env.src,
                        Msg::PageReply {
                            page,
                            data,
                            version,
                        },
                    )
                    .expect("send page reply");
                // Predicted extras trail in one batch, copied by the
                // communication processor after the demand reply is on
                // the wire.
                if !extras.is_empty() {
                    let mut copies: Vec<PageCopy> = Vec::with_capacity(extras.len());
                    let mut total = 0usize;
                    for p in extras {
                        self.inner.pages.note_remote_fetch(
                            p,
                            self.ft.needs_home_write_twins(),
                            self.ft.logs_home_diffs_durably(),
                        );
                        let copy = copy_of(&mut self.inner, p);
                        total += copy.1.len();
                        copies.push(copy);
                    }
                    let extras_cost = self.inner.ctx.cost.cpu.copy(total);
                    self.inner
                        .ctx
                        .send_from(
                            done + demand_cost + extras_cost,
                            env.src,
                            Msg::PageReplyBatch {
                                after: page,
                                pages: copies,
                            },
                        )
                        .expect("send page reply batch");
                }
            }
            Msg::PageReplyBatch { .. } => self.install_prefetch_batch(env),
            Msg::HomeMigrate { .. } => {
                // An in-migration serviced outside `apply_migrations`'
                // own receive loop (it was absorbed while waiting for a
                // different pending page's envelope — `wait_for` matches
                // any `HomeMigrate`, so this arm only fires for pages
                // still reserved).
                debug_assert!(
                    matches!(
                        &env.payload,
                        Msg::HomeMigrate { page, .. } if self.inner.pending_migration(*page)
                    ),
                    "home migrate outside an adoption window"
                );
                self.adopt_migrated(env);
            }
            Msg::LockRequest { lock, vc } => {
                let lock = *lock;
                debug_assert_eq!(
                    self.inner.cfg.lock_manager(lock),
                    self.inner.me(),
                    "lock request at non-manager"
                );
                let st = self.inner.locks.state_mut(lock);
                if st.held {
                    st.queue.push_back(PendingAcquire {
                        node: env.src,
                        vc: vc.clone(),
                        arrive: env.arrive_at,
                    });
                } else {
                    st.held = true;
                    let grant_at = done.max(st.last_release + handler);
                    let notices = st.notices_for(vc);
                    let lvc = Arc::new(st.vc.clone());
                    let holder = st.record_grant(env.src);
                    self.inner.ctx.trace(TraceKind::LockGranted {
                        lock,
                        to: env.src,
                        holder,
                    });
                    self.inner
                        .ctx
                        .send_from(
                            grant_at,
                            env.src,
                            Msg::LockGrant {
                                lock,
                                vc: lvc,
                                notices,
                            },
                        )
                        .expect("send lock grant");
                }
            }
            Msg::LockRelease { lock, vc, notices } => {
                let lock = *lock;
                let st = self.inner.locks.state_mut(lock);
                st.record_release(vc, notices, env.arrive_at);
                if let Some(next) = st.queue.pop_front() {
                    st.held = true;
                    let grant_at = done.max(next.arrive + handler);
                    let out_notices = st.notices_for(&next.vc);
                    let lvc = Arc::new(st.vc.clone());
                    let holder = st.record_grant(next.node);
                    self.inner.ctx.trace(TraceKind::LockGranted {
                        lock,
                        to: next.node,
                        holder,
                    });
                    self.inner
                        .ctx
                        .send_from(
                            grant_at,
                            next.node,
                            Msg::LockGrant {
                                lock,
                                vc: lvc,
                                notices: out_notices,
                            },
                        )
                        .expect("send queued lock grant");
                }
            }
            Msg::BarrierArrive {
                epoch,
                vc,
                notices,
                proposals,
            } => {
                debug_assert_eq!(
                    self.inner.me(),
                    self.inner.cfg.barrier_manager(),
                    "barrier arrive at non-manager"
                );
                // A node re-executing after a degraded recovery arrives
                // at epochs the cluster already completed: answer from
                // the release history instead of gathering.
                let past = self
                    .inner
                    .barrier_mgr
                    .as_ref()
                    .expect("barrier manager state")
                    .past_release(*epoch)
                    .map(|(rvc, rn, rm)| (Arc::clone(rvc), Arc::clone(rn), Arc::clone(rm)));
                if let Some((rvc, rnotices, rmigrations)) = past {
                    self.inner
                        .ctx
                        .send_from(
                            done,
                            env.src,
                            Msg::BarrierRelease {
                                epoch: *epoch,
                                vc: rvc,
                                notices: rnotices,
                                migrations: rmigrations,
                            },
                        )
                        .expect("re-send barrier release");
                    return;
                }
                // If the manager is already inside barrier(), its own
                // epoch counter has advanced past the arrivals' epoch.
                debug_assert!(
                    *epoch == self.inner.barrier_epoch || *epoch + 1 == self.inner.barrier_epoch,
                    "barrier epoch skew: arrival {} vs manager {}",
                    epoch,
                    self.inner.barrier_epoch
                );
                let at = env.arrive_at;
                self.inner
                    .barrier_mgr
                    .as_mut()
                    .expect("barrier manager state")
                    .arrive(env.src, vc, notices, proposals, at);
            }
            Msg::RecoveryPageRequest { .. } => {
                let mid_replay = self.ft.in_recovery();
                let twins = self.ft.needs_home_write_twins();
                let stable = self.ft.logs_home_diffs_durably();
                self.inner
                    .serve_recovery_page(&env, done, mid_replay, twins, stable);
            }
            Msg::LoggedDiffRequest { .. } => {
                self.ft.serve_logged_diffs(&mut self.inner, &env);
            }
            Msg::ReleaseHistoryRequest => {
                self.inner.serve_release_history(&env, done);
            }
            other => unreachable!(
                "unexpected asynchronous message {} at node {}",
                other.kind(),
                self.inner.me()
            ),
        }
    }
}

impl HlrcNode {
    // ---------------------------------------------------------------
    // Crash / recovery entry
    // ---------------------------------------------------------------

    /// Simulate a crash of this node: volatile state (page frames,
    /// clocks, manager tables) reverts to the last checkpoint image;
    /// stable storage survives. The fault-tolerance layer then prepares
    /// replay. The caller restarts the application program.
    pub fn crash_and_reset(&mut self) {
        let n = self.inner.cfg.n_nodes;
        self.inner.ctx.mark_crashed();
        self.inner.ctx.recovery_exit = None;
        self.inner.pages.reset_to_base();
        self.inner.vc = VClock::new(n);
        self.inner.next_interval = 0;
        self.inner.history.clear();
        self.inner.last_barrier_vc = VClock::new(n);
        self.inner.locks.clear();
        if let Some(mgr) = self.inner.barrier_mgr.as_mut() {
            *mgr = BarrierMgr::new(n);
        }
        self.inner.lock_grant_vcs.clear();
        self.inner.barrier_epoch = 0;
        self.inner.sync_events = 0;
        self.inner.prefetch = PrefetchState::default();
        self.inner.diff_traffic.clear();
        self.inner.pending_migrations.clear();
        self.inner.stalled_requests.clear();
        self.inner.migration_window = false;
        self.ft.begin_recovery(&mut self.inner);
        if !self.ft.in_recovery() {
            // Nothing to replay — no protocol log, an empty log, or a
            // failed log device (degraded recovery). Live re-execution
            // starts right away, so recovery formally ends here; without
            // this stamp `recovery_exit` would never be set.
            self.exit_recovery();
        }
    }

    /// Leave recovery: give the fault-tolerance layer its last word
    /// (home-copy repair from surviving logs, see
    /// [`FaultTolerance::finish_recovery`]) and only then go live and
    /// service the traffic deferred during replay — survivors must
    /// never be handed a page the repair pass was about to fix.
    fn exit_recovery(&mut self) {
        self.ft.finish_recovery(&mut self.inner);
        self.resume_live();
    }

    /// Total encoded bytes of a message (diagnostics helper).
    pub fn msg_bytes(msg: &Msg) -> usize {
        msg.encoded_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::run_cluster;

    /// A logger stub that wants home-write twins (like CCL) but logs
    /// nothing; enough to exercise the recovery-page serving paths.
    struct TwinningStub;

    impl FaultTolerance for TwinningStub {
        fn name(&self) -> &'static str {
            "twinning-stub"
        }
        fn needs_home_write_twins(&self) -> bool {
            true
        }
    }

    /// A recovery fetch serviced while the home has an *open* interval
    /// on the page must return the last committed state (the
    /// interval-open twin), never the live frame: the open-interval
    /// words are in no version the replaying peer can have required,
    /// and their extent depends on real scheduling. Pre-fix, the home
    /// served the live frame whenever its version was dominated by
    /// `required`, leaking the in-progress write below (0xA2) into the
    /// peer's replay.
    #[test]
    fn recovery_fetch_of_a_dirty_home_page_serves_the_committed_state() {
        let cfg = DsmConfig::new(2, 4).with_page_size(256);
        let out = run_cluster(2, cfg.cost, move |ctx| {
            let me = ctx.id();
            let mut node = HlrcNode::new(ctx, cfg, Box::new(TwinningStub));
            if me == 0 {
                // Commit 0xA1 on the locally-homed page 0, then let
                // node 1 install a copy (its fetch is serviced inside
                // the barrier gather loops).
                node.write_u64(8, 0xA1);
                node.barrier();
                node.barrier();
                // Open a new interval on the page: the first write
                // snapshots the committed state into the twin.
                node.write_u64(8, 0xA2);
                // Signal node 1 that the interval is open, then serve
                // its recovery fetch while still mid-interval.
                node.inner
                    .ctx
                    .send(
                        1,
                        Msg::DiffAck {
                            writer: IntervalId { node: 0, seq: 0 },
                        },
                    )
                    .expect("send go signal");
                let env = node.wait_for(|m| matches!(m, Msg::RecoveryPageRequest { .. }));
                let done = node.inner.ctx.service_time(&env);
                node.inner
                    .serve_recovery_page(&env, done, false, true, false);
                node.barrier();
                (false, 0)
            } else {
                node.barrier();
                let committed = node.read_u64(8);
                node.barrier();
                let required = node.inner.vc.clone();
                node.wait_for(|m| matches!(m, Msg::DiffAck { .. }));
                node.inner
                    .ctx
                    .send(0, Msg::RecoveryPageRequest { page: 0, required })
                    .expect("send recovery fetch");
                let env = node.wait_for(|m| matches!(m, Msg::RecoveryPageReply { .. }));
                let Msg::RecoveryPageReply { advanced, data, .. } = env.payload else {
                    unreachable!()
                };
                let word = u64::from_le_bytes(data[8..16].try_into().unwrap());
                node.barrier();
                assert_eq!(committed, 0xA1);
                (advanced, word)
            }
        });
        let (advanced, word) = out[1];
        assert!(!advanced, "the home never closed the open interval");
        assert_eq!(
            word, 0xA1,
            "recovery fetch leaked the home's open-interval write"
        );
    }
}
