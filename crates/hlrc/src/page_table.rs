//! Per-node page table: the DSM's view of every shared page.

use pagemem::{BufferPool, PageDiff, PageFrame, PageId, PageState, Twin, VClock};
use simnet::NodeId;

use crate::config::DsmConfig;

/// One shared page as seen by one node.
#[derive(Debug, Clone)]
pub struct PageEntry {
    /// The page's home node (static).
    pub home: NodeId,
    /// Local protection state. Home copies are born `ReadOnly` (write
    /// detection re-armed each interval) and are never invalidated.
    pub state: PageState,
    /// Local frame, if a copy exists. Home copies always exist.
    pub frame: Option<PageFrame>,
    /// Twin taken at the first write of the current interval (non-home).
    pub twin: Option<Twin>,
    /// Home-copy version: per-writer count of applied intervals.
    /// `Some` only at the home node.
    pub version: Option<VClock>,
    /// Last checkpointed home copy (initially all zeros); the base from
    /// which recovery reconstructs when the live copy has advanced.
    /// `Some` only at the home node.
    pub base: Option<PageFrame>,
    /// Version of `base`.
    pub base_version: Option<VClock>,
    /// Written during the current interval?
    pub dirty: bool,
    /// Home-side: has any remote node ever fetched this page? Only such
    /// pages can need recovery reconstruction, so only they pay the
    /// home-write twin/diff cost under CCL.
    pub remote_fetched: bool,
    /// Non-home side: was a copy ever installed here? Recovery prefetch
    /// restores only pages the (deterministically replayed) execution
    /// actually caches.
    pub was_cached: bool,
    /// Non-home side: this copy arrived as a prefetch prediction and has
    /// not been touched yet. Cleared (and counted as a hit) on first
    /// access; a prefetched copy invalidated while still flagged was a
    /// wasted prediction.
    pub prefetched: bool,
    /// This page's home moved at a barrier (first-touch or adaptive
    /// migration). A migrated page never migrates again (ping-pong
    /// damping), and a post-crash re-execution of the allocation phase
    /// must not clobber the migrated mapping.
    pub migrated: bool,
}

/// The full table for one node.
#[derive(Debug)]
pub struct PageTable {
    entries: Vec<PageEntry>,
    page_size: usize,
    me: NodeId,
    n_nodes: usize,
}

impl PageTable {
    /// Build the table for node `me`: home pages get zeroed frames and
    /// zeroed version clocks; remote pages start `Invalid` with no frame.
    pub fn new(cfg: &DsmConfig, me: NodeId) -> PageTable {
        let page_size = cfg.layout.page_size();
        let entries = (0..cfg.n_pages)
            .map(|p| {
                let home = cfg.home_of(p);
                if home == me {
                    PageEntry {
                        home,
                        state: PageState::ReadOnly,
                        frame: Some(PageFrame::zeroed(page_size)),
                        twin: None,
                        version: Some(VClock::new(cfg.n_nodes)),
                        base: Some(PageFrame::zeroed(page_size)),
                        base_version: Some(VClock::new(cfg.n_nodes)),
                        dirty: false,
                        remote_fetched: false,
                        was_cached: false,
                        prefetched: false,
                        migrated: false,
                    }
                } else {
                    PageEntry {
                        home,
                        state: PageState::Invalid,
                        frame: None,
                        twin: None,
                        version: None,
                        base: None,
                        base_version: None,
                        dirty: false,
                        remote_fetched: false,
                        was_cached: false,
                        prefetched: false,
                        migrated: false,
                    }
                }
            })
            .collect();
        PageTable {
            entries,
            page_size,
            me,
            n_nodes: cfg.n_nodes,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is `page` homed at this node?
    pub fn is_home(&self, page: PageId) -> bool {
        self.entries[page as usize].home == self.me
    }

    /// Shared view of an entry.
    pub fn entry(&self, page: PageId) -> &PageEntry {
        &self.entries[page as usize]
    }

    /// Mutable view of an entry.
    pub fn entry_mut(&mut self, page: PageId) -> &mut PageEntry {
        &mut self.entries[page as usize]
    }

    /// The local frame of `page`.
    ///
    /// # Panics
    /// Panics if no local copy exists (protocol bug: access without
    /// `ensure_access`).
    pub fn frame(&self, page: PageId) -> &PageFrame {
        self.entries[page as usize]
            .frame
            .as_ref()
            .expect("access to page without a local copy")
    }

    /// Mutable local frame of `page`.
    pub fn frame_mut(&mut self, page: PageId) -> &mut PageFrame {
        self.entries[page as usize]
            .frame
            .as_mut()
            .expect("write to page without a local copy")
    }

    /// Pages dirtied in the current interval.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dirty)
            .map(|(p, _)| p as PageId)
            .collect()
    }

    /// Install a fetched copy of a non-home page, drawing the frame
    /// from `pool` (install/invalidate churn recycles one backing
    /// store instead of allocating per miss).
    pub fn install_copy(
        &mut self,
        page: PageId,
        data: &[u8],
        state: PageState,
        pool: &mut BufferPool,
    ) {
        let frame = pool.frame_from_bytes(data);
        let e = &mut self.entries[page as usize];
        debug_assert_ne!(e.home, self.me, "installing a copy of a home page");
        e.frame = Some(frame);
        e.state = state;
        e.was_cached = true;
        e.prefetched = false;
    }

    /// Drop the local copy of a non-home page (write-invalidation),
    /// recycling its frame and twin into `pool`.
    pub fn invalidate(&mut self, page: PageId, pool: &mut BufferPool) {
        let e = &mut self.entries[page as usize];
        debug_assert_ne!(e.home, self.me, "invalidating a home page");
        if let Some(frame) = e.frame.take() {
            pool.recycle_frame(frame);
        }
        if let Some(twin) = e.twin.take() {
            pool.recycle_frame(twin.into_frame());
        }
        e.state = PageState::Invalid;
        e.dirty = false;
        e.prefetched = false;
    }

    /// Apply a writer's diff to the home copy, bumping its version.
    ///
    /// The decoder already rejects structurally malformed diffs; the
    /// checked apply additionally catches runs that extend past this
    /// node's page size (undetectable without the page), so a corrupt
    /// flush or log record fails with a diagnosis instead of a slice
    /// panic deep in the copy loop.
    pub fn apply_home_diff(&mut self, diff: &PageDiff, writer: pagemem::IntervalId) {
        let e = &mut self.entries[diff.page as usize];
        debug_assert_eq!(e.home, self.me, "diff flushed to a non-home node");
        diff.apply_checked(e.frame.as_mut().expect("home frame missing"))
            .expect("diff does not fit the home page");
        e.version
            .as_mut()
            .expect("home version missing")
            .observe(writer);
    }

    /// Reset all volatile state to the post-checkpoint image: home copies
    /// revert to their checkpoint base, remote copies are dropped.
    /// Stable storage (the disk) is *not* touched — that is the point.
    pub fn reset_to_base(&mut self) {
        for e in &mut self.entries {
            e.twin = None;
            e.dirty = false;
            e.remote_fetched = false;
            e.was_cached = false;
            e.prefetched = false;
            if e.home == self.me {
                let base = e.base.as_ref().expect("home base missing").clone();
                e.frame = Some(base);
                e.version = e.base_version.clone();
                e.state = PageState::ReadOnly;
            } else {
                e.frame = None;
                e.state = PageState::Invalid;
            }
        }
    }

    /// Promote current home copies to be the new checkpoint base
    /// (called when a checkpoint is taken).
    pub fn promote_base(&mut self) {
        for e in &mut self.entries {
            if e.home == self.me {
                e.base = e.frame.clone();
                e.base_version = e.version.clone();
            }
        }
    }

    /// Reassign `page`'s home (explicit data distribution, as the
    /// paper-era applications do). Must be called identically on every
    /// node before the page is first accessed; idempotent, so a
    /// post-crash re-execution of the allocation phase is harmless.
    pub fn set_home(&mut self, page: PageId, home: NodeId) {
        let n = self.n_nodes;
        let e = &mut self.entries[page as usize];
        // A migrated mapping outranks the static assignment: a crashed
        // node re-executing its allocation phase must keep routing to
        // the migrated home, not the allocation-time one.
        if e.home == home || e.migrated {
            return;
        }
        e.home = home;
        if home == self.me {
            e.state = PageState::ReadOnly;
            e.frame = Some(PageFrame::zeroed(self.page_size));
            e.version = Some(VClock::new(n));
            e.base = Some(PageFrame::zeroed(self.page_size));
            e.base_version = Some(VClock::new(n));
        } else {
            e.state = PageState::Invalid;
            e.frame = None;
            e.version = None;
            e.base = None;
            e.base_version = None;
        }
        e.twin = None;
        e.dirty = false;
        e.remote_fetched = false;
        e.was_cached = false;
        e.prefetched = false;
    }

    /// Old home's side of a barrier-committed migration: hand the home
    /// role to `to`, keeping the final home copy as an ordinary cached
    /// read-only replica (it stays valid until a later writer's notice
    /// invalidates it).
    pub fn demote_home(&mut self, page: PageId, to: NodeId) {
        let e = &mut self.entries[page as usize];
        debug_assert_eq!(e.home, self.me, "demoting a page not homed here");
        debug_assert_ne!(to, self.me);
        e.home = to;
        e.migrated = true;
        e.version = None;
        e.base = None;
        e.base_version = None;
        e.twin = None;
        e.dirty = false;
        e.remote_fetched = false;
        e.prefetched = false;
        // The retained frame is now a plain cached copy.
        e.state = PageState::ReadOnly;
        e.was_cached = e.frame.is_some();
    }

    /// New home's side of a migration: adopt the transferred home copy
    /// and version. The checkpoint base is reset to the adopted image
    /// with a distinct `base_version`, so the checkpoint taken at this
    /// same barrier force-includes the page even if nobody writes it in
    /// between.
    pub fn adopt_home(&mut self, page: PageId, data: &[u8], version: VClock) {
        let n = self.n_nodes;
        let e = &mut self.entries[page as usize];
        debug_assert_ne!(e.home, self.me, "adopting a page already homed here");
        e.home = self.me;
        e.migrated = true;
        e.frame = Some(PageFrame::from_bytes(data));
        e.base = Some(PageFrame::from_bytes(data));
        e.version = Some(version);
        e.base_version = Some(VClock::new(n));
        e.state = PageState::ReadOnly;
        e.twin = None;
        e.dirty = false;
        e.remote_fetched = false;
        e.was_cached = false;
        e.prefetched = false;
    }

    /// First-touch (epoch-0) adoption: the page's pre-checkpoint truth
    /// is the all-zero initial state, not the transferred image — a
    /// crash before the first checkpoint must re-execute from state
    /// zero, exactly as if this node had been the home all along.
    pub fn zero_base(&mut self, page: PageId) {
        let n = self.n_nodes;
        let size = self.page_size;
        let e = &mut self.entries[page as usize];
        debug_assert_eq!(e.home, self.me, "zeroing the base of a non-home page");
        e.base = Some(PageFrame::zeroed(size));
        e.base_version = Some(VClock::new(n));
    }

    /// Bystander's side of a migration: update the mapping only. A
    /// cached copy, if any, stays valid — the contents did not change,
    /// only the page's owner.
    pub fn note_migrated(&mut self, page: PageId, to: NodeId) {
        let e = &mut self.entries[page as usize];
        debug_assert_ne!(e.home, self.me);
        debug_assert_ne!(to, self.me);
        e.home = to;
        e.migrated = true;
    }

    /// Mark a home page as remotely fetched, promoting its current
    /// contents to be the reconstruction base if this is the first
    /// fetch and `track_home_writes` (CCL) is on: from here on the
    /// home's own writes are captured as diffs, so "base + logged
    /// diffs" can rebuild any later state of the page.
    ///
    /// With `stable_base` (multi-failure CCL) the base is *not*
    /// promoted: home writes are twinned and logged from the first
    /// interval, so the checkpoint image already reconstructs every
    /// state — and, unlike the promoted base, it survives the home's
    /// own crash (a re-promotion after `reset_to_base` would pin the
    /// base at a late state that an earlier-replaying peer cannot
    /// unwind).
    pub fn note_remote_fetch(&mut self, page: PageId, track_home_writes: bool, stable_base: bool) {
        let e = &mut self.entries[page as usize];
        debug_assert_eq!(e.home, self.me);
        if e.remote_fetched {
            return;
        }
        e.remote_fetched = true;
        if track_home_writes && !stable_base {
            e.base = e.frame.clone();
            e.base_version = e.version.clone();
            if e.dirty && e.twin.is_none() {
                // Mid-interval promotion: capture only the writes that
                // follow it (the earlier ones are in the base).
                e.twin = Some(Twin::of(e.frame.as_ref().expect("home frame")));
            }
        }
    }

    /// Iterate all entries with their page ids.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &PageEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(p, e)| (p as PageId, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagemem::IntervalId;

    fn cfg() -> DsmConfig {
        DsmConfig::new(2, 4).with_page_size(64)
    }

    #[test]
    fn home_pages_are_resident_remote_invalid() {
        let t = PageTable::new(&cfg(), 0);
        assert!(t.is_home(0) && t.is_home(1));
        assert!(!t.is_home(2) && !t.is_home(3));
        assert_eq!(t.entry(0).state, PageState::ReadOnly);
        assert!(t.entry(0).frame.is_some());
        assert_eq!(t.entry(2).state, PageState::Invalid);
        assert!(t.entry(2).frame.is_none());
    }

    #[test]
    fn install_and_invalidate_remote_copy() {
        let mut t = PageTable::new(&cfg(), 0);
        let mut pool = BufferPool::new(64);
        t.install_copy(2, &[7u8; 64], PageState::ReadOnly, &mut pool);
        assert_eq!(t.frame(2).bytes()[0], 7);
        t.invalidate(2, &mut pool);
        assert_eq!(t.entry(2).state, PageState::Invalid);
        assert!(t.entry(2).frame.is_none());
        // The dropped frame went back to the pool and is reused whole.
        assert_eq!(pool.idle_frames(), 1);
        t.install_copy(3, &[9u8; 64], PageState::ReadOnly, &mut pool);
        assert_eq!(pool.idle_frames(), 0);
        assert_eq!(t.frame(3).bytes()[63], 9);
    }

    #[test]
    fn apply_home_diff_bumps_version() {
        let mut t = PageTable::new(&cfg(), 0);
        let base = PageFrame::zeroed(64);
        let twin = Twin::of(&base);
        let mut m = base.clone();
        m.write_u64(0, 5);
        let d = PageDiff::create(1, &twin, &m);
        let iv = IntervalId { node: 1, seq: 0 };
        t.apply_home_diff(&d, iv);
        assert_eq!(t.frame(1).read_u64(0), 5);
        assert!(t.entry(1).version.as_ref().unwrap().covers(iv));
    }

    #[test]
    fn reset_to_base_restores_checkpoint_image() {
        let mut t = PageTable::new(&cfg(), 0);
        t.frame_mut(0).write_u64(0, 99);
        t.install_copy(2, &[1u8; 64], PageState::ReadOnly, &mut BufferPool::new(64));
        t.reset_to_base();
        assert_eq!(t.frame(0).read_u64(0), 0, "home copy back to base");
        assert!(t.entry(2).frame.is_none(), "remote copies dropped");
    }

    #[test]
    fn promote_base_captures_current_state() {
        let mut t = PageTable::new(&cfg(), 0);
        t.frame_mut(0).write_u64(0, 42);
        t.promote_base();
        t.frame_mut(0).write_u64(0, 77);
        t.reset_to_base();
        assert_eq!(t.frame(0).read_u64(0), 42);
    }

    #[test]
    fn migration_moves_the_home_role_and_pins_the_mapping() {
        // Node 0 demotes page 1 to node 1; node 1 adopts it.
        let mut old = PageTable::new(&cfg(), 0);
        let mut new = PageTable::new(&cfg(), 1);
        old.frame_mut(1).write_u64(0, 7);
        let data: Vec<u8> = old.frame(1).bytes().to_vec();
        let mut v = VClock::new(2);
        v.set(0, 3);

        old.demote_home(1, 1);
        assert!(!old.is_home(1));
        assert!(old.entry(1).migrated);
        // Old home keeps a readable cached copy...
        assert_eq!(old.frame(1).read_u64(0), 7);
        assert_eq!(old.entry(1).state, PageState::ReadOnly);
        // ...but no home-side metadata.
        assert!(old.entry(1).version.is_none() && old.entry(1).base.is_none());

        new.adopt_home(1, &data, v.clone());
        assert!(new.is_home(1));
        assert_eq!(new.frame(1).read_u64(0), 7);
        assert_eq!(new.entry(1).version, Some(v));
        // Distinct base version => the next checkpoint force-includes it.
        assert_ne!(new.entry(1).base_version, new.entry(1).version);

        // set_home (re-executed allocation) cannot clobber a migration.
        old.set_home(1, 0);
        assert!(!old.is_home(1));

        // A bystander just updates its mapping.
        let cfg4 = DsmConfig::new(4, 8).with_page_size(64);
        let mut bys = PageTable::new(&cfg4, 3);
        bys.note_migrated(0, 1);
        assert_eq!(bys.entry(0).home, 1);
        assert!(bys.entry(0).migrated);
    }

    #[test]
    fn dirty_tracking() {
        let mut t = PageTable::new(&cfg(), 0);
        assert!(t.dirty_pages().is_empty());
        t.entry_mut(0).dirty = true;
        t.entry_mut(3).dirty = true;
        assert_eq!(t.dirty_pages(), vec![0, 3]);
    }
}
