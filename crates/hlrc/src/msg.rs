//! Protocol messages.
//!
//! Every cross-node interaction of the DSM — coherence, synchronization,
//! and crash recovery — is one of these messages. They carry a real
//! binary encoding (see [`pagemem::codec`]) so that the traffic and log
//! byte counts the experiments report are the bytes a socket
//! implementation would move. `wire_size` adds the UDP/IP-era header
//! overhead per message.

use std::sync::Arc;

use pagemem::{
    ByteReader, ByteWriter, CodecError, Decode, Encode, IntervalId, PageDiff, PageId, SharedBytes,
    VClock,
};
use simnet::WireSized;

/// Per-message header overhead on the wire (UDP/IP + DSM header).
pub const HEADER_BYTES: usize = 32;

/// Number of distinct [`Msg`] variants (wire tags `0..MSG_KINDS`).
/// Per-variant traffic counters are indexed by the wire tag.
pub const MSG_KINDS: usize = 18;

/// Short label for a [`Msg`] wire tag, for traffic tables.
pub fn kind_label(ordinal: usize) -> &'static str {
    const LABELS: [&str; MSG_KINDS] = [
        "PageRequest",
        "PageReply",
        "DiffFlush",
        "DiffAck",
        "LockRequest",
        "LockGrant",
        "LockRelease",
        "BarrierArrive",
        "BarrierRelease",
        "RecoveryPageRequest",
        "RecoveryPageReply",
        "LoggedDiffRequest",
        "LoggedDiffReply",
        "ReleaseHistoryRequest",
        "ReleaseHistoryReply",
        "PageRequestBatch",
        "PageReplyBatch",
        "HomeMigrate",
    ];
    LABELS.get(ordinal).copied().unwrap_or("?")
}

/// A home reassignment decided at a barrier: `(page, new_home)`.
pub type HomeMigration = (PageId, u32);

/// One page copy inside a [`Msg::PageReplyBatch`].
pub type PageCopy = (PageId, SharedBytes, VClock);

/// One retained barrier release: `(epoch, merged clock, merged notices,
/// home migrations committed at that release)`.
pub type EpochRelease = (u32, VClock, Vec<WriteNotice>, Vec<HomeMigration>);

/// A write-invalidation notice: "`interval.node` modified `page` during
/// `interval`". Piggybacked on lock grants and barrier releases; the
/// receiver invalidates its non-home copy of `page`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteNotice {
    /// The modified page.
    pub page: PageId,
    /// The writer's interval in which the modification happened.
    pub interval: IntervalId,
}

impl Encode for WriteNotice {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.page);
        self.interval.encode(w);
    }

    fn encoded_size(&self) -> usize {
        4 + 8
    }
}

impl Decode for WriteNotice {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(WriteNotice {
            page: r.get_u32()?,
            interval: IntervalId::decode(r)?,
        })
    }
}

fn encode_notices(w: &mut ByteWriter, notices: &[WriteNotice]) {
    w.put_u32(notices.len() as u32);
    for n in notices {
        n.encode(w);
    }
}

fn decode_notices(r: &mut ByteReader<'_>) -> Result<Vec<WriteNotice>, CodecError> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(WriteNotice::decode(r)?);
    }
    Ok(v)
}

fn encode_migrations(w: &mut ByteWriter, migrations: &[HomeMigration]) {
    w.put_u32(migrations.len() as u32);
    for (page, to) in migrations {
        w.put_u32(*page);
        w.put_u32(*to);
    }
}

fn decode_migrations(r: &mut ByteReader<'_>) -> Result<Vec<HomeMigration>, CodecError> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let page = r.get_u32()?;
        let to = r.get_u32()?;
        v.push((page, to));
    }
    Ok(v)
}

fn migrations_size(m: &[HomeMigration]) -> usize {
    4 + 8 * m.len()
}

fn encode_diffs(w: &mut ByteWriter, diffs: &[PageDiff]) {
    w.put_u32(diffs.len() as u32);
    for d in diffs {
        d.encode(w);
    }
}

fn decode_diffs(r: &mut ByteReader<'_>) -> Result<Vec<PageDiff>, CodecError> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(PageDiff::decode(r)?);
    }
    Ok(v)
}

/// One DSM protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Fetch an up-to-date copy of `page` from its home (read/write miss).
    PageRequest {
        /// Requested page.
        page: PageId,
    },
    /// Home's reply: the current home copy and its version timestamp.
    PageReply {
        /// The page.
        page: PageId,
        /// Full page contents (refcount-shared: envelope duplicates and
        /// log appends reuse this allocation; wire accounting uses the
        /// logical length).
        data: SharedBytes,
        /// Home-copy version (per-writer applied interval counts).
        version: VClock,
    },
    /// Writer flushes the diffs of its just-ended interval to one home.
    DiffFlush {
        /// The writer's interval that produced these diffs.
        writer: IntervalId,
        /// Diffs for pages homed at the destination.
        diffs: Vec<PageDiff>,
    },
    /// Home acknowledges application of a [`Msg::DiffFlush`].
    DiffAck {
        /// Echo of the flushed interval.
        writer: IntervalId,
    },
    /// Ask the lock manager for ownership of `lock`.
    LockRequest {
        /// The lock.
        lock: u32,
        /// Acquirer's vector clock (lets the manager filter notices).
        vc: VClock,
    },
    /// Manager grants `lock`, piggybacking the notices the acquirer lacks.
    LockGrant {
        /// The lock.
        lock: u32,
        /// The lock's release timestamp (acquirer joins with it).
        /// `Arc`: the receiver only reads it, and keeps it in its
        /// grant table without copying.
        vc: Arc<VClock>,
        /// Write-invalidation notices the acquirer has not yet seen.
        notices: Vec<WriteNotice>,
    },
    /// Releaser returns `lock` to its manager with its fresh notices.
    LockRelease {
        /// The lock.
        lock: u32,
        /// Releaser's vector clock at release.
        vc: VClock,
        /// Notices the manager's record of this lock does not yet cover.
        notices: Vec<WriteNotice>,
    },
    /// Arrive at the global barrier.
    BarrierArrive {
        /// Barrier episode number.
        epoch: u32,
        /// Arriving node's vector clock.
        vc: VClock,
        /// Notices the arriving node generated/learned since last barrier.
        notices: Vec<WriteNotice>,
        /// Home-migration proposals `(page, new_home)` this node wants
        /// committed at this barrier (first-touch claims and adaptive
        /// traffic-driven handoffs). The manager merges and rebroadcasts
        /// the decided set on the release.
        proposals: Vec<HomeMigration>,
    },
    /// Barrier manager releases everyone with the merged notices.
    /// The clock and notice set are broadcast to every node and only
    /// read by receivers, so both are `Arc`-shared: an n-way fan-out
    /// is n refcount bumps, not n deep copies.
    BarrierRelease {
        /// Barrier episode number.
        epoch: u32,
        /// Join of all arrivals' clocks.
        vc: Arc<VClock>,
        /// Union of all notices from this episode.
        notices: Arc<[WriteNotice]>,
        /// Home migrations committed at this episode, sorted by page.
        /// Every node applies the same list in the same order, so the
        /// page-to-home mapping stays cluster-consistent.
        migrations: Arc<[HomeMigration]>,
    },
    /// Recovery: fetch `page` if the home copy has not advanced past
    /// `required`; otherwise the home returns its checkpoint base copy.
    RecoveryPageRequest {
        /// Requested page.
        page: PageId,
        /// The vector timestamp the replayed interval must observe.
        required: VClock,
    },
    /// Reply to [`Msg::RecoveryPageRequest`].
    RecoveryPageReply {
        /// The page.
        page: PageId,
        /// True if the home copy had advanced and `data` is the
        /// checkpoint base copy that must be patched with logged diffs.
        advanced: bool,
        /// Page contents (current home copy, or checkpoint base).
        data: SharedBytes,
        /// Version of `data`.
        version: VClock,
    },
    /// Recovery: ask a surviving writer for its logged diffs of `page`
    /// from the given interval sequence numbers.
    LoggedDiffRequest {
        /// The page being reconstructed.
        page: PageId,
        /// Interval sequence numbers in the writer's numbering.
        seqs: Vec<u32>,
    },
    /// Reply to [`Msg::LoggedDiffRequest`]: the logged diffs, tagged by
    /// interval, in the writer's interval order.
    LoggedDiffReply {
        /// The page.
        page: PageId,
        /// (interval, diff) pairs found in the writer's stable log.
        diffs: Vec<(IntervalId, PageDiff)>,
    },
    /// Recovery: ask the barrier manager for its retained episode
    /// releases. A node whose log came back damaged (torn tail, bit
    /// rot, dead device) reconciles this history against its home-copy
    /// versions to learn which applied updates its log lost, then
    /// refetches those diffs from the writers' stable logs.
    ReleaseHistoryRequest,
    /// Reply to [`Msg::ReleaseHistoryRequest`]: every retained episode
    /// release, in ascending epoch order. Within one release the notice
    /// order is the manager's merge order, which respects causality —
    /// replaying it is a valid re-application order.
    ReleaseHistoryReply {
        /// (epoch, merged clock, merged notices, migrations) per
        /// completed episode.
        releases: Vec<EpochRelease>,
    },
    /// Fetch up-to-date copies of several pages homed at one node with a
    /// single request: the faulting page (answered with an ordinary
    /// [`Msg::PageReply`], so the demand stall never grows with the
    /// prediction depth) plus any prefetch candidates predicted from the
    /// access history (answered with a trailing [`Msg::PageReplyBatch`]).
    PageRequestBatch {
        /// The faulting page the requester is blocked on.
        page: PageId,
        /// Predicted same-home pages, sorted ascending.
        extras: Vec<PageId>,
    },
    /// Home's trailing reply to a [`Msg::PageRequestBatch`] with
    /// predicted extras: their copies and versions, in request order.
    /// Installed asynchronously whenever the requester next drains its
    /// inbox — a misprediction costs bytes on the wire, never a stall.
    PageReplyBatch {
        /// The demand page of the request this batch trails (matches the
        /// batch to the requester's in-flight prediction stamp).
        after: PageId,
        /// `(page, contents, version)` per predicted page.
        pages: Vec<PageCopy>,
    },
    /// Old home hands a page's home role to the new home decided at a
    /// barrier: the current home copy and its version move over; the old
    /// home keeps a read-only cached copy.
    HomeMigrate {
        /// The migrating page.
        page: PageId,
        /// Home copy at the migration barrier.
        data: SharedBytes,
        /// Its version (per-writer applied interval counts).
        version: VClock,
    },
}

impl Msg {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::PageRequest { .. } => "PageRequest",
            Msg::PageReply { .. } => "PageReply",
            Msg::DiffFlush { .. } => "DiffFlush",
            Msg::DiffAck { .. } => "DiffAck",
            Msg::LockRequest { .. } => "LockRequest",
            Msg::LockGrant { .. } => "LockGrant",
            Msg::LockRelease { .. } => "LockRelease",
            Msg::BarrierArrive { .. } => "BarrierArrive",
            Msg::BarrierRelease { .. } => "BarrierRelease",
            Msg::RecoveryPageRequest { .. } => "RecoveryPageRequest",
            Msg::RecoveryPageReply { .. } => "RecoveryPageReply",
            Msg::LoggedDiffRequest { .. } => "LoggedDiffRequest",
            Msg::LoggedDiffReply { .. } => "LoggedDiffReply",
            Msg::ReleaseHistoryRequest => "ReleaseHistoryRequest",
            Msg::ReleaseHistoryReply { .. } => "ReleaseHistoryReply",
            Msg::PageRequestBatch { .. } => "PageRequestBatch",
            Msg::PageReplyBatch { .. } => "PageReplyBatch",
            Msg::HomeMigrate { .. } => "HomeMigrate",
        }
    }

    /// The wire tag, used to index per-variant traffic counters.
    pub fn ordinal(&self) -> usize {
        match self {
            Msg::PageRequest { .. } => 0,
            Msg::PageReply { .. } => 1,
            Msg::DiffFlush { .. } => 2,
            Msg::DiffAck { .. } => 3,
            Msg::LockRequest { .. } => 4,
            Msg::LockGrant { .. } => 5,
            Msg::LockRelease { .. } => 6,
            Msg::BarrierArrive { .. } => 7,
            Msg::BarrierRelease { .. } => 8,
            Msg::RecoveryPageRequest { .. } => 9,
            Msg::RecoveryPageReply { .. } => 10,
            Msg::LoggedDiffRequest { .. } => 11,
            Msg::LoggedDiffReply { .. } => 12,
            Msg::ReleaseHistoryRequest => 13,
            Msg::ReleaseHistoryReply { .. } => 14,
            Msg::PageRequestBatch { .. } => 15,
            Msg::PageReplyBatch { .. } => 16,
            Msg::HomeMigrate { .. } => 17,
        }
    }
}

impl Encode for Msg {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Msg::PageRequest { page } => {
                w.put_u8(0);
                w.put_u32(*page);
            }
            Msg::PageReply {
                page,
                data,
                version,
            } => {
                w.put_u8(1);
                w.put_u32(*page);
                w.put_bytes(data);
                version.encode(w);
            }
            Msg::DiffFlush { writer, diffs } => {
                w.put_u8(2);
                writer.encode(w);
                encode_diffs(w, diffs);
            }
            Msg::DiffAck { writer } => {
                w.put_u8(3);
                writer.encode(w);
            }
            Msg::LockRequest { lock, vc } => {
                w.put_u8(4);
                w.put_u32(*lock);
                vc.encode(w);
            }
            Msg::LockGrant { lock, vc, notices } => {
                w.put_u8(5);
                w.put_u32(*lock);
                vc.encode(w);
                encode_notices(w, notices);
            }
            Msg::LockRelease { lock, vc, notices } => {
                w.put_u8(6);
                w.put_u32(*lock);
                vc.encode(w);
                encode_notices(w, notices);
            }
            Msg::BarrierArrive {
                epoch,
                vc,
                notices,
                proposals,
            } => {
                w.put_u8(7);
                w.put_u32(*epoch);
                vc.encode(w);
                encode_notices(w, notices);
                encode_migrations(w, proposals);
            }
            Msg::BarrierRelease {
                epoch,
                vc,
                notices,
                migrations,
            } => {
                w.put_u8(8);
                w.put_u32(*epoch);
                vc.encode(w);
                encode_notices(w, notices);
                encode_migrations(w, migrations);
            }
            Msg::RecoveryPageRequest { page, required } => {
                w.put_u8(9);
                w.put_u32(*page);
                required.encode(w);
            }
            Msg::RecoveryPageReply {
                page,
                advanced,
                data,
                version,
            } => {
                w.put_u8(10);
                w.put_u32(*page);
                w.put_u8(u8::from(*advanced));
                w.put_bytes(data);
                version.encode(w);
            }
            Msg::LoggedDiffRequest { page, seqs } => {
                w.put_u8(11);
                w.put_u32(*page);
                w.put_u32(seqs.len() as u32);
                for s in seqs {
                    w.put_u32(*s);
                }
            }
            Msg::LoggedDiffReply { page, diffs } => {
                w.put_u8(12);
                w.put_u32(*page);
                w.put_u32(diffs.len() as u32);
                for (iv, d) in diffs {
                    iv.encode(w);
                    d.encode(w);
                }
            }
            Msg::ReleaseHistoryRequest => {
                w.put_u8(13);
            }
            Msg::ReleaseHistoryReply { releases } => {
                w.put_u8(14);
                w.put_u32(releases.len() as u32);
                for (epoch, vc, notices, migrations) in releases {
                    w.put_u32(*epoch);
                    vc.encode(w);
                    encode_notices(w, notices);
                    encode_migrations(w, migrations);
                }
            }
            Msg::PageRequestBatch { page, extras } => {
                w.put_u8(15);
                w.put_u32(*page);
                w.put_u32(extras.len() as u32);
                for p in extras {
                    w.put_u32(*p);
                }
            }
            Msg::PageReplyBatch { after, pages } => {
                w.put_u8(16);
                w.put_u32(*after);
                w.put_u32(pages.len() as u32);
                for (page, data, version) in pages {
                    w.put_u32(*page);
                    w.put_bytes(data);
                    version.encode(w);
                }
            }
            Msg::HomeMigrate {
                page,
                data,
                version,
            } => {
                w.put_u8(17);
                w.put_u32(*page);
                w.put_bytes(data);
                version.encode(w);
            }
        }
    }

    /// Direct arithmetic mirror of [`Encode::encode`]. `wire_size` is
    /// consulted on *every* send and receive for traffic accounting, so
    /// sizing must not cost an encode; the per-variant wire-size tests
    /// pin this arithmetic to the actual encoding.
    fn encoded_size(&self) -> usize {
        fn notices(n: &[WriteNotice]) -> usize {
            4 + 12 * n.len()
        }
        fn diffs(d: &[PageDiff]) -> usize {
            4 + d.iter().map(Encode::encoded_size).sum::<usize>()
        }
        match self {
            Msg::PageRequest { .. } => 1 + 4,
            Msg::PageReply { data, version, .. } => 1 + 4 + 4 + data.len() + version.encoded_size(),
            Msg::DiffFlush { diffs: d, .. } => 1 + 8 + diffs(d),
            Msg::DiffAck { .. } => 1 + 8,
            Msg::LockRequest { vc, .. } => 1 + 4 + vc.encoded_size(),
            Msg::LockGrant { vc, notices: n, .. } => 1 + 4 + vc.encoded_size() + notices(n),
            Msg::LockRelease { vc, notices: n, .. } => 1 + 4 + vc.encoded_size() + notices(n),
            Msg::BarrierArrive {
                vc,
                notices: n,
                proposals,
                ..
            } => 1 + 4 + vc.encoded_size() + notices(n) + migrations_size(proposals),
            Msg::BarrierRelease {
                vc,
                notices: n,
                migrations,
                ..
            } => 1 + 4 + vc.encoded_size() + notices(n) + migrations_size(migrations),
            Msg::RecoveryPageRequest { required, .. } => 1 + 4 + required.encoded_size(),
            Msg::RecoveryPageReply { data, version, .. } => {
                1 + 4 + 1 + 4 + data.len() + version.encoded_size()
            }
            Msg::LoggedDiffRequest { seqs, .. } => 1 + 4 + 4 + 4 * seqs.len(),
            Msg::LoggedDiffReply { diffs, .. } => {
                1 + 4
                    + 4
                    + diffs
                        .iter()
                        .map(|(_, d)| 8 + d.encoded_size())
                        .sum::<usize>()
            }
            Msg::ReleaseHistoryRequest => 1,
            Msg::ReleaseHistoryReply { releases } => {
                1 + 4
                    + releases
                        .iter()
                        .map(|(_, vc, n, m)| {
                            4 + vc.encoded_size() + notices(n) + migrations_size(m)
                        })
                        .sum::<usize>()
            }
            Msg::PageRequestBatch { extras, .. } => 1 + 4 + 4 + 4 * extras.len(),
            Msg::PageReplyBatch { pages, .. } => {
                1 + 4
                    + 4
                    + pages
                        .iter()
                        .map(|(_, data, version)| 4 + 4 + data.len() + version.encoded_size())
                        .sum::<usize>()
            }
            Msg::HomeMigrate { data, version, .. } => {
                1 + 4 + 4 + data.len() + version.encoded_size()
            }
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => Msg::PageRequest { page: r.get_u32()? },
            1 => Msg::PageReply {
                page: r.get_u32()?,
                data: r.get_bytes()?.into(),
                version: VClock::decode(r)?,
            },
            2 => Msg::DiffFlush {
                writer: IntervalId::decode(r)?,
                diffs: decode_diffs(r)?,
            },
            3 => Msg::DiffAck {
                writer: IntervalId::decode(r)?,
            },
            4 => Msg::LockRequest {
                lock: r.get_u32()?,
                vc: VClock::decode(r)?,
            },
            5 => Msg::LockGrant {
                lock: r.get_u32()?,
                vc: Arc::new(VClock::decode(r)?),
                notices: decode_notices(r)?,
            },
            6 => Msg::LockRelease {
                lock: r.get_u32()?,
                vc: VClock::decode(r)?,
                notices: decode_notices(r)?,
            },
            7 => Msg::BarrierArrive {
                epoch: r.get_u32()?,
                vc: VClock::decode(r)?,
                notices: decode_notices(r)?,
                proposals: decode_migrations(r)?,
            },
            8 => Msg::BarrierRelease {
                epoch: r.get_u32()?,
                vc: Arc::new(VClock::decode(r)?),
                notices: decode_notices(r)?.into(),
                migrations: decode_migrations(r)?.into(),
            },
            9 => Msg::RecoveryPageRequest {
                page: r.get_u32()?,
                required: VClock::decode(r)?,
            },
            10 => Msg::RecoveryPageReply {
                page: r.get_u32()?,
                advanced: r.get_u8()? != 0,
                data: r.get_bytes()?.into(),
                version: VClock::decode(r)?,
            },
            11 => {
                let page = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut seqs = Vec::with_capacity(n);
                for _ in 0..n {
                    seqs.push(r.get_u32()?);
                }
                Msg::LoggedDiffRequest { page, seqs }
            }
            12 => {
                let page = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut diffs = Vec::with_capacity(n);
                for _ in 0..n {
                    let iv = IntervalId::decode(r)?;
                    let d = PageDiff::decode(r)?;
                    diffs.push((iv, d));
                }
                Msg::LoggedDiffReply { page, diffs }
            }
            13 => Msg::ReleaseHistoryRequest,
            14 => {
                let n = r.get_u32()? as usize;
                let mut releases = Vec::with_capacity(n);
                for _ in 0..n {
                    let epoch = r.get_u32()?;
                    let vc = VClock::decode(r)?;
                    let notices = decode_notices(r)?;
                    releases.push((epoch, vc, notices, decode_migrations(r)?));
                }
                Msg::ReleaseHistoryReply { releases }
            }
            15 => {
                let page = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut extras = Vec::with_capacity(n);
                for _ in 0..n {
                    extras.push(r.get_u32()?);
                }
                Msg::PageRequestBatch { page, extras }
            }
            16 => {
                let after = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    let page = r.get_u32()?;
                    let data: SharedBytes = r.get_bytes()?.into();
                    let version = VClock::decode(r)?;
                    pages.push((page, data, version));
                }
                Msg::PageReplyBatch { after, pages }
            }
            17 => Msg::HomeMigrate {
                page: r.get_u32()?,
                data: r.get_bytes()?.into(),
                version: VClock::decode(r)?,
            },
            t => {
                return Err(CodecError::BadTag {
                    context: "Msg",
                    tag: t,
                })
            }
        })
    }
}

impl WireSized for Msg {
    fn wire_size(&self) -> usize {
        HEADER_BYTES + self.encoded_size()
    }

    fn encoded_len(&self) -> Option<usize> {
        Some(self.encoded_size())
    }

    fn header_len(&self) -> usize {
        HEADER_BYTES
    }

    fn msg_label(&self) -> &'static str {
        self.kind()
    }

    fn kind_ordinal(&self) -> usize {
        self.ordinal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagemem::{PageFrame, Twin};

    fn sample_diff() -> PageDiff {
        let base = PageFrame::zeroed(64);
        let twin = Twin::of(&base);
        let mut m = base.clone();
        m.write_u64(8, 42);
        PageDiff::create(5, &twin, &m)
    }

    fn roundtrip(m: Msg) {
        let bytes = m.encode_to_vec();
        let back = Msg::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(m.encoded_size(), bytes.len(), "direct size drifted");
        assert_eq!(m.wire_size(), HEADER_BYTES + bytes.len());
    }

    #[test]
    fn all_variants_roundtrip() {
        let vc = {
            let mut v = VClock::new(4);
            v.set(2, 9);
            v
        };
        let iv = IntervalId { node: 1, seq: 3 };
        let notice = WriteNotice {
            page: 7,
            interval: iv,
        };
        roundtrip(Msg::PageRequest { page: 3 });
        roundtrip(Msg::PageReply {
            page: 3,
            data: vec![1; 64].into(),
            version: vc.clone(),
        });
        roundtrip(Msg::DiffFlush {
            writer: iv,
            diffs: vec![sample_diff()],
        });
        roundtrip(Msg::DiffAck { writer: iv });
        roundtrip(Msg::LockRequest {
            lock: 2,
            vc: vc.clone(),
        });
        roundtrip(Msg::LockGrant {
            lock: 2,
            vc: Arc::new(vc.clone()),
            notices: vec![notice],
        });
        roundtrip(Msg::LockRelease {
            lock: 2,
            vc: vc.clone(),
            notices: vec![notice, notice],
        });
        roundtrip(Msg::BarrierArrive {
            epoch: 4,
            vc: vc.clone(),
            notices: vec![],
            proposals: vec![(7, 2)],
        });
        roundtrip(Msg::BarrierRelease {
            epoch: 4,
            vc: Arc::new(vc.clone()),
            notices: vec![notice].into(),
            migrations: vec![(7, 2), (9, 0)].into(),
        });
        roundtrip(Msg::RecoveryPageRequest {
            page: 9,
            required: vc.clone(),
        });
        roundtrip(Msg::RecoveryPageReply {
            page: 9,
            advanced: true,
            data: vec![2; 64].into(),
            version: vc.clone(),
        });
        roundtrip(Msg::LoggedDiffRequest {
            page: 9,
            seqs: vec![1, 2, 3],
        });
        roundtrip(Msg::LoggedDiffReply {
            page: 9,
            diffs: vec![(iv, sample_diff())],
        });
        roundtrip(Msg::ReleaseHistoryRequest);
        roundtrip(Msg::ReleaseHistoryReply {
            releases: vec![
                (0, vc.clone(), vec![notice], vec![]),
                (1, vc.clone(), vec![], vec![(3, 1)]),
            ],
        });
        roundtrip(Msg::PageRequestBatch {
            page: 3,
            extras: vec![4, 9],
        });
        roundtrip(Msg::PageReplyBatch {
            after: 3,
            pages: vec![
                (4, vec![1; 64].into(), vc.clone()),
                (9, vec![2; 64].into(), vc.clone()),
            ],
        });
        roundtrip(Msg::HomeMigrate {
            page: 11,
            data: vec![5; 64].into(),
            version: vc.clone(),
        });
    }

    #[test]
    fn batch_of_one_matches_single_fetch_payload_shape() {
        // A batch of one page carries the same page bytes as the single
        // reply; the envelope difference is a few bytes of list framing.
        let vc = VClock::new(4);
        let single = Msg::PageReply {
            page: 3,
            data: vec![0; 4096].into(),
            version: vc.clone(),
        };
        let batch = Msg::PageReplyBatch {
            after: 3,
            pages: vec![(3, vec![0; 4096].into(), vc)],
        };
        assert!(batch.wire_size() >= single.wire_size());
        assert!(batch.wire_size() <= single.wire_size() + 12);
    }

    #[test]
    fn ordinals_match_wire_tags_and_labels() {
        let vc = VClock::new(2);
        let msgs = [
            Msg::PageRequest { page: 0 },
            Msg::PageRequestBatch {
                page: 0,
                extras: vec![1],
            },
            Msg::PageReplyBatch {
                after: 0,
                pages: vec![],
            },
            Msg::HomeMigrate {
                page: 0,
                data: vec![0; 8].into(),
                version: vc,
            },
        ];
        for m in msgs {
            let bytes = m.encode_to_vec();
            assert_eq!(m.ordinal(), bytes[0] as usize, "ordinal is the wire tag");
            assert_eq!(kind_label(m.ordinal()), m.kind());
        }
        assert_eq!(kind_label(MSG_KINDS), "?");
    }

    #[test]
    fn bad_tag_rejected() {
        let e = Msg::decode_from_slice(&[99]).unwrap_err();
        assert!(matches!(e, CodecError::BadTag { tag: 99, .. }));
    }

    #[test]
    fn page_reply_dominates_small_messages() {
        // The wire-size asymmetry ML-vs-CCL log sizes hinge on: a full
        // page reply is much bigger than the diff that produced it.
        let big = Msg::PageReply {
            page: 0,
            data: vec![0; 4096].into(),
            version: VClock::new(8),
        };
        let small = Msg::DiffFlush {
            writer: IntervalId { node: 0, seq: 0 },
            diffs: vec![sample_diff()],
        };
        assert!(big.wire_size() > 10 * small.wire_size());
    }

    #[test]
    fn kinds_are_distinct() {
        assert_eq!(Msg::PageRequest { page: 0 }.kind(), "PageRequest");
        assert_eq!(
            Msg::DiffAck {
                writer: IntervalId { node: 0, seq: 0 }
            }
            .kind(),
            "DiffAck"
        );
    }
}
